//! End-to-end determinism: identical seeds must produce byte-identical
//! artifacts across whole experiment runs — the property EXPERIMENTS.md
//! relies on for reproducibility.

use smrp_repro::experiments::{fig7, fig8, Effort};
use smrp_repro::net::waxman::WaxmanConfig;
use smrp_repro::proto::{ProtoSession, RecoveryStrategy, TreeProtocol};
use smrp_repro::sim::SimTime;

#[test]
fn figure7_runs_are_byte_identical() {
    let a = fig7::run(Effort::Quick).to_csv().render();
    let b = fig7::run(Effort::Quick).to_csv().render();
    assert_eq!(a, b);
}

#[test]
fn figure8_runs_are_byte_identical() {
    let a = fig8::run(Effort::Quick).to_csv().render();
    let b = fig8::run(Effort::Quick).to_csv().render();
    assert_eq!(a, b);
}

#[test]
fn protocol_simulations_are_replayable() {
    let graph = WaxmanConfig::new(50)
        .alpha(0.25)
        .seed(5)
        .generate()
        .unwrap()
        .into_graph();
    let ids: Vec<_> = graph.node_ids().collect();
    let members: Vec<_> = ids.iter().copied().skip(2).step_by(5).take(8).collect();
    let session = ProtoSession::build(&graph, ids[0], &members, TreeProtocol::Spf).unwrap();
    let link = session.tree().links(&graph)[0];
    let scenario = smrp_repro::net::FailureScenario::link(link);

    let run = || {
        session.run_failure(
            &scenario,
            RecoveryStrategy::LocalDetour,
            SimTime::from_ms(100.0),
            SimTime::from_ms(2000.0),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.restorations.len(), b.restorations.len());
    for ((ma, la), (mb, lb)) in a.restorations.iter().zip(&b.restorations) {
        assert_eq!(ma, mb);
        assert_eq!(la.map(SimTime::as_ms), lb.map(SimTime::as_ms));
    }
    assert_eq!(a.messages_delivered, b.messages_delivered);
    assert_eq!(a.messages_dropped, b.messages_dropped);
}
