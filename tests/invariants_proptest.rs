//! Property-based invariants across the workspace.
//!
//! Random topologies and random operation sequences must never break the
//! tree bookkeeping (`N_R`, `SHR`, prune discipline), the shortest-path
//! optimality guarantees, or the local-vs-global recovery ordering.

use proptest::prelude::*;

use smrp_repro::core::recovery::{self, DetourKind};
use smrp_repro::core::{SmrpConfig, SmrpSession};
use smrp_repro::net::dijkstra::{self, Constraints};
use smrp_repro::net::kpaths::k_shortest_paths;
use smrp_repro::net::waxman::WaxmanConfig;
use smrp_repro::net::{FailureScenario, Graph, NodeId};

fn waxman(seed: u64, nodes: usize) -> Graph {
    WaxmanConfig::new(nodes)
        .alpha(0.3)
        .seed(seed)
        .generate()
        .expect("valid generator settings")
        .into_graph()
}

/// A joint (join/leave) operation script over member candidates.
#[derive(Debug, Clone)]
enum Op {
    Join(usize),
    Leave(usize),
    Reshape,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..20).prop_map(Op::Join),
        (0usize..20).prop_map(Op::Leave),
        Just(Op::Reshape),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_invariants_survive_random_membership_churn(
        seed in 0u64..500,
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let graph = waxman(seed, 24);
        let ids: Vec<NodeId> = graph.node_ids().collect();
        let source = ids[0];
        let candidates = &ids[1..21.min(ids.len())];
        let mut sess = SmrpSession::new(&graph, source, SmrpConfig::default()).unwrap();

        for op in ops {
            match op {
                Op::Join(i) => {
                    let n = candidates[i % candidates.len()];
                    if !sess.tree().is_member(n) {
                        sess.join(n).unwrap();
                    }
                }
                Op::Leave(i) => {
                    let n = candidates[i % candidates.len()];
                    if sess.tree().is_member(n) {
                        sess.leave(n).unwrap();
                    }
                }
                Op::Reshape => {
                    sess.reshape_sweep();
                }
            }
            // Every invariant — parent/child consistency, acyclicity,
            // pruning discipline, N_R recounts and the Eq. 1 == Eq. 2
            // SHR cross-check — must hold after every operation.
            sess.tree().validate(&graph).unwrap();
        }
    }

    #[test]
    fn dijkstra_is_no_longer_than_any_k_path(
        seed in 0u64..500,
        src_i in 0usize..24,
        dst_i in 0usize..24,
    ) {
        let graph = waxman(seed.wrapping_add(1000), 24);
        let src = NodeId::new(src_i % graph.node_count());
        let dst = NodeId::new(dst_i % graph.node_count());
        prop_assume!(src != dst);
        let best = dijkstra::shortest_path(&graph, src, dst);
        let alts = k_shortest_paths(&graph, src, dst, 4);
        match best {
            Some(best) => {
                prop_assert!(!alts.is_empty());
                for alt in &alts {
                    prop_assert!(best.delay(&graph) <= alt.delay(&graph) + 1e-9);
                }
                // Yen's first path IS the shortest path.
                prop_assert!((alts[0].delay(&graph) - best.delay(&graph)).abs() < 1e-9);
            }
            None => prop_assert!(alts.is_empty()),
        }
    }

    #[test]
    fn local_detour_never_exceeds_global(
        seed in 0u64..300,
        member_i in 0usize..8,
    ) {
        let graph = waxman(seed.wrapping_add(5000), 30);
        let ids: Vec<NodeId> = graph.node_ids().collect();
        let source = ids[0];
        let members: Vec<NodeId> = ids.iter().copied().skip(2).step_by(3).take(8).collect();
        let mut sess = SmrpSession::new(&graph, source, SmrpConfig::default()).unwrap();
        for &m in &members {
            sess.join(m).unwrap();
        }
        let member = members[member_i % members.len()];
        let Some(link) = recovery::worst_case_failure_for(&graph, sess.tree(), member) else {
            return Ok(());
        };
        let scenario = FailureScenario::link(link);
        let local = recovery::recover(&graph, sess.tree(), &scenario, member, DetourKind::Local);
        let global = recovery::recover(&graph, sess.tree(), &scenario, member, DetourKind::Global);
        if let (Ok(l), Ok(g)) = (local, global) {
            prop_assert!(l.recovery_distance() <= g.recovery_distance() + 1e-9);
            // Both restoration paths are valid simple paths avoiding the cut.
            prop_assert!(l.restoration_path().validate(&graph).is_ok());
            prop_assert!(g.restoration_path().validate(&graph).is_ok());
            prop_assert!(!l.restoration_path().links(&graph).contains(&link));
        }
    }

    #[test]
    fn constrained_dijkstra_respects_failures(
        seed in 0u64..300,
        link_i in 0usize..60,
    ) {
        let graph = waxman(seed.wrapping_add(9000), 24);
        prop_assume!(graph.link_count() > 0);
        let link = smrp_repro::net::LinkId::new(link_i % graph.link_count());
        let scenario = FailureScenario::link(link);
        let (a, b) = graph.link(link).endpoints();
        if let Some(p) = dijkstra::shortest_path_constrained(
            &graph,
            a,
            b,
            Constraints::avoiding_failures(&scenario),
        ) {
            prop_assert!(!p.links(&graph).contains(&link));
            prop_assert!(p.validate(&graph).is_ok());
            // The detour cannot beat the direct (failed) link... unless a
            // parallel shorter route existed, which `add_link` forbids for
            // the same endpoints; so strictly longer or equal via others.
            prop_assert!(p.delay(&graph) > 0.0);
        }
    }

    #[test]
    fn shr_decreases_or_holds_after_reshaping(
        seed in 0u64..200,
    ) {
        let graph = waxman(seed.wrapping_add(12_000), 30);
        let ids: Vec<NodeId> = graph.node_ids().collect();
        let source = ids[0];
        let members: Vec<NodeId> = ids.iter().copied().skip(1).step_by(3).take(9).collect();
        let mut sess = SmrpSession::new(
            &graph,
            source,
            SmrpConfig { auto_reshape: false, ..SmrpConfig::default() },
        )
        .unwrap();
        for &m in &members {
            sess.join(m).unwrap();
        }
        let total_before: u64 = members.iter().map(|&m| u64::from(sess.tree().shr(m))).sum();
        sess.reshape_until_stable(6);
        sess.tree().validate(&graph).unwrap();
        let total_after: u64 = members.iter().map(|&m| u64::from(sess.tree().shr(m))).sum();
        // Reshaping switches only to strictly-lower adjusted SHR mergers,
        // so the aggregate sharing must not increase.
        prop_assert!(
            total_after <= total_before,
            "sharing grew from {total_before} to {total_after}"
        );
    }
}
