//! The paper's headline claims, checked end-to-end at reduced sample
//! sizes (paper-scale runs live in the experiment binaries/benches).

use smrp_repro::experiments::{fig7, fig8, Effort};

#[test]
fn figure7_local_detours_are_shorter() {
    let r = fig7::run(Effort::Quick);
    // "most points are below the line y = x".
    assert!(
        r.below_diagonal > 0.5,
        "only {:.0}% of points below the diagonal",
        r.below_diagonal * 100.0
    );
    // "the length of the recovery path via local detour is reduced by an
    // average of 33%" — the shape, not the exact constant: a double-digit
    // mean reduction.
    assert!(
        r.mean_reduction > 0.10,
        "mean reduction only {:.1}%",
        r.mean_reduction * 100.0
    );
}

#[test]
fn figure8_improvement_with_moderate_penalty() {
    let r = fig8::run(Effort::Quick);
    let headline = r.headline();
    // "a fairly large improvement ... with a moderate amount of overhead":
    // the recovery-distance improvement must exceed the delay penalty at
    // the paper's headline configuration.
    assert!(
        headline.rd_rel.mean > headline.delay_rel.mean,
        "improvement {:.1}% did not exceed the delay penalty {:.1}%",
        headline.rd_rel.mean * 100.0,
        headline.delay_rel.mean * 100.0
    );
    // "The performance improvement increases ... with the parameter
    // D_thresh": last point at least as good as the first.
    let first = &r.points[0];
    let last = r.points.last().unwrap();
    assert!(last.rd_rel.mean >= first.rd_rel.mean - 0.05);
    // Penalties ordered too: a looser bound cannot cost less delay.
    assert!(last.delay_rel.mean >= first.delay_rel.mean - 0.02);
}

#[test]
fn headline_ordering_is_robust_across_seeds() {
    // Guard against seed cherry-picking: for several independent base
    // seeds, the qualitative Figure 8 ordering must hold — SMRP improves
    // recovery distance and the improvement beats the delay penalty.
    use smrp_repro::experiments::measure::{measure_scenario, smrp_config};
    use smrp_repro::experiments::scenario::ScenarioConfig;
    use smrp_repro::metrics::Stats;

    for seed in [1u64, 0xDEAD, 0xFEED_BEEF, 42_424_242] {
        let cfg = ScenarioConfig {
            nodes: 80,
            group_size: 20,
            base_seed: seed,
            ..ScenarioConfig::default()
        };
        let mut rd = Stats::new();
        let mut delay = Stats::new();
        for scenario in cfg.scenarios(4, 2).unwrap() {
            let out = measure_scenario(&scenario, smrp_config(0.3)).unwrap();
            if let Some(v) = out.mean_rd_relative() {
                rd.push(v);
            }
            if let Some(v) = out.mean_delay_relative() {
                delay.push(v);
            }
        }
        assert!(
            rd.mean() > 0.0,
            "seed {seed:#x}: no recovery improvement ({:.3})",
            rd.mean()
        );
        assert!(
            rd.mean() > delay.mean() * 0.8,
            "seed {seed:#x}: improvement {:.3} dwarfed by penalty {:.3}",
            rd.mean(),
            delay.mean()
        );
    }
}

#[test]
fn d_thresh_zero_degenerates_to_spf_delays() {
    // With D_thresh = 0, SMRP may only pick paths as short as SPF's, so the
    // delay penalty must be ~zero (ties on delay can still pick different
    // but equally long paths).
    use smrp_repro::experiments::measure::{measure_scenario, smrp_config};
    use smrp_repro::experiments::scenario::ScenarioConfig;

    let cfg = ScenarioConfig {
        nodes: 50,
        group_size: 10,
        ..ScenarioConfig::default()
    };
    for scenario in cfg.scenarios(2, 2).unwrap() {
        let out = measure_scenario(&scenario, smrp_config(0.0)).unwrap();
        let penalty = out.mean_delay_relative().unwrap_or(0.0);
        assert!(
            penalty.abs() < 1e-6,
            "D_thresh = 0 produced a {:.4}% delay penalty",
            penalty * 100.0
        );
    }
}
