//! Serialization round-trips for the data-structure types (C-SERDE).
//!
//! Graphs, trees, failure scenarios and statistics all derive
//! `Serialize`/`Deserialize` so experiment state can be archived; these
//! tests pin the round-trip behavior.

use smrp_repro::core::{MulticastTree, SmrpConfig, SmrpSession};
use smrp_repro::metrics::{ConfidenceInterval, Stats};
use smrp_repro::net::waxman::WaxmanConfig;
use smrp_repro::net::{FailureScenario, Graph};

fn sample_graph() -> Graph {
    WaxmanConfig::new(30)
        .alpha(0.3)
        .seed(77)
        .generate()
        .expect("valid settings")
        .into_graph()
}

#[test]
fn graph_round_trips_through_json() {
    let g = sample_graph();
    let text = serde_json::to_string(&g).unwrap();
    let back: Graph = serde_json::from_str(&text).unwrap();
    assert_eq!(back.node_count(), g.node_count());
    assert_eq!(back.link_count(), g.link_count());
    for l in g.link_ids() {
        assert_eq!(back.link(l).endpoints(), g.link(l).endpoints());
        assert_eq!(back.link(l).delay(), g.link(l).delay());
        assert_eq!(back.link(l).cost(), g.link(l).cost());
    }
    for n in g.node_ids() {
        assert_eq!(back.position(n), g.position(n));
        assert_eq!(back.degree(n), g.degree(n));
    }
}

#[test]
fn tree_round_trips_and_still_validates() {
    let g = sample_graph();
    let source = g.node_ids().next().unwrap();
    let mut sess = SmrpSession::new(&g, source, SmrpConfig::default()).unwrap();
    for m in g.node_ids().skip(3).step_by(4).take(6) {
        sess.join(m).unwrap();
    }
    let tree = sess.tree();
    let text = serde_json::to_string(tree).unwrap();
    let back: MulticastTree = serde_json::from_str(&text).unwrap();
    assert_eq!(back, *tree);
    back.validate(&g).unwrap();
    assert_eq!(back.member_count(), tree.member_count());
    for m in tree.members() {
        assert_eq!(back.shr(m), tree.shr(m));
    }
}

#[test]
fn failure_scenario_round_trips() {
    let g = sample_graph();
    let mut s = FailureScenario::none();
    s.fail_link(g.link_ids().next().unwrap());
    s.fail_node(g.node_ids().nth(3).unwrap());
    let text = serde_json::to_string(&s).unwrap();
    let back: FailureScenario = serde_json::from_str(&text).unwrap();
    assert_eq!(back, s);
}

#[test]
fn stats_and_ci_round_trip() {
    let stats: Stats = (0..40).map(|i| (i % 9) as f64).collect();
    let text = serde_json::to_string(&stats).unwrap();
    let back: Stats = serde_json::from_str(&text).unwrap();
    assert_eq!(back, stats);

    let ci = ConfidenceInterval::from_stats(&stats);
    let text = serde_json::to_string(&ci).unwrap();
    let back: ConfidenceInterval = serde_json::from_str(&text).unwrap();
    assert_eq!(back, ci);
}
