//! Cross-crate integration: topology generation → tree construction →
//! failure → recovery → protocol simulation, all through the public API.

use smrp_repro::core::recovery::{self, DetourKind};
use smrp_repro::core::{SmrpConfig, SmrpSession, SpfSession};
use smrp_repro::net::waxman::WaxmanConfig;
use smrp_repro::net::{FailureScenario, NodeId};
use smrp_repro::proto::{ProtoSession, RecoveryStrategy, TreeProtocol};
use smrp_repro::sim::SimTime;

fn topology(seed: u64) -> smrp_repro::net::Graph {
    WaxmanConfig::new(60)
        .alpha(0.25)
        .seed(seed)
        .generate()
        .expect("valid generator settings")
        .into_graph()
}

fn pick_members(graph: &smrp_repro::net::Graph, count: usize) -> (NodeId, Vec<NodeId>) {
    let ids: Vec<_> = graph.node_ids().collect();
    (
        ids[0],
        ids.iter().copied().skip(3).step_by(4).take(count).collect(),
    )
}

#[test]
fn full_pipeline_smrp_vs_spf() {
    let graph = topology(1);
    let (source, members) = pick_members(&graph, 10);

    let mut smrp = SmrpSession::new(&graph, source, SmrpConfig::default()).unwrap();
    let mut spf = SpfSession::new(&graph, source).unwrap();
    for &m in &members {
        smrp.join(m).unwrap();
        spf.join(m).unwrap();
    }
    smrp.tree().validate(&graph).unwrap();
    spf.tree().validate(&graph).unwrap();

    // Both trees serve the same members.
    assert_eq!(smrp.tree().member_count(), spf.tree().member_count());

    // SPF delays are optimal; SMRP trades delay away, bounded-ish.
    for &m in &members {
        let spf_delay = spf.tree().delay_to(&graph, m).unwrap();
        let smrp_delay = smrp.tree().delay_to(&graph, m).unwrap();
        assert!(smrp_delay + 1e-9 >= spf_delay);
    }
}

#[test]
fn recovery_after_every_single_tree_link_failure() {
    let graph = topology(2);
    let (source, members) = pick_members(&graph, 8);
    let mut smrp = SmrpSession::new(&graph, source, SmrpConfig::default()).unwrap();
    for &m in &members {
        smrp.join(m).unwrap();
    }
    let tree = smrp.tree();

    for link in tree.links(&graph) {
        let scenario = FailureScenario::link(link);
        for member in recovery::affected_members(&graph, tree, &scenario) {
            let local = recovery::recover(&graph, tree, &scenario, member, DetourKind::Local);
            let global = recovery::recover(&graph, tree, &scenario, member, DetourKind::Global);
            match (local, global) {
                (Ok(l), Ok(g)) => {
                    // The local detour is never longer than the global one.
                    assert!(
                        l.recovery_distance() <= g.recovery_distance() + 1e-9,
                        "link {link:?} member {member}: local {} > global {}",
                        l.recovery_distance(),
                        g.recovery_distance()
                    );
                    // Restoration paths avoid the failed link.
                    assert!(!l.restoration_path().links(&graph).contains(&link));
                    assert!(!g.restoration_path().links(&graph).contains(&link));
                    // Both attach to nodes still connected to the source.
                    let surviving = recovery::surviving_connected(&graph, tree, &scenario);
                    assert!(surviving.contains(&l.attach()));
                    assert!(surviving.contains(&g.attach()));
                }
                (Err(e1), Err(e2)) => {
                    // Either both fail (isolated member) or neither.
                    assert_eq!(format!("{e1:?}"), format!("{e2:?}"));
                }
                (l, g) => panic!("asymmetric recovery outcome: {l:?} vs {g:?}"),
            }
        }
    }
}

#[test]
fn protocol_simulation_matches_algorithmic_affectedness() {
    let graph = topology(3);
    let (source, members) = pick_members(&graph, 6);
    let session = ProtoSession::build(
        &graph,
        source,
        &members,
        TreeProtocol::Smrp(SmrpConfig::default()),
    )
    .unwrap();

    let member = members[0];
    let Some(link) = recovery::worst_case_failure_for(&graph, session.tree(), member) else {
        panic!("member has a worst-case link");
    };
    let scenario = FailureScenario::link(link);
    let report = session.run_failure(
        &scenario,
        RecoveryStrategy::LocalDetour,
        SimTime::from_ms(150.0),
        SimTime::from_ms(4000.0),
    );
    let affected = recovery::affected_members(&graph, session.tree(), &scenario);
    assert_eq!(report.restorations.len(), affected.len());
    // Everyone the algorithm says is recoverable must actually restore in
    // the message-level simulation.
    for (m, latency) in &report.restorations {
        let fragment_recoverable = report.restorations.iter().any(|_| true);
        let _ = fragment_recoverable;
        assert!(
            latency.is_some(),
            "member {m} did not restore at protocol level"
        );
    }
    // And the unaffected members were indeed never cut off.
    for m in &report.unaffected {
        assert!(!affected.contains(m));
    }
}

#[test]
fn leave_everything_returns_to_bare_source() {
    let graph = topology(4);
    let (source, members) = pick_members(&graph, 10);
    let mut smrp = SmrpSession::new(&graph, source, SmrpConfig::default()).unwrap();
    for &m in &members {
        smrp.join(m).unwrap();
    }
    for &m in &members {
        smrp.leave(m).unwrap();
        smrp.tree().validate(&graph).unwrap();
    }
    assert_eq!(smrp.tree().member_count(), 0);
    assert_eq!(smrp.tree().links(&graph).len(), 0);
    assert_eq!(smrp.tree().on_tree_nodes().count(), 1);
}

#[test]
fn rejoin_after_leave_is_clean() {
    let graph = topology(5);
    let (source, members) = pick_members(&graph, 6);
    let mut smrp = SmrpSession::new(&graph, source, SmrpConfig::default()).unwrap();
    for &m in &members {
        smrp.join(m).unwrap();
    }
    let m = members[2];
    smrp.leave(m).unwrap();
    let out = smrp.join(m).unwrap();
    assert_eq!(out.member, m);
    smrp.tree().validate(&graph).unwrap();
    assert!(smrp.tree().is_member(m));
}
