//! Golden-trace dump determinism.
//!
//! `faultlab --dump-trace <dir>` must emit byte-identical files no matter
//! how many worker threads generate them, and the committed golden files
//! under `crates/smrpd/tests/golden/` must stay in lockstep with the
//! generator — otherwise the daemon's conformance CI would assert against
//! stale sim digests.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use smrp_faultlab::{dump_traces, golden_scenarios, GoldenTrace};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "smrp-trace-{}-{}-{tag}",
        std::process::id(),
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-"),
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn read_all(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        out.insert(
            path.file_name().unwrap().to_string_lossy().into_owned(),
            fs::read(&path).unwrap(),
        );
    }
    out
}

#[test]
fn dump_is_byte_identical_across_jobs_1_and_8() {
    let d1 = scratch_dir("jobs1");
    let d8 = scratch_dir("jobs8");
    let p1 = dump_traces(&d1, 1).unwrap();
    let p8 = dump_traces(&d8, 8).unwrap();
    assert_eq!(p1.len(), p8.len());
    assert!(!p1.is_empty());

    let f1 = read_all(&d1);
    let f8 = read_all(&d8);
    assert_eq!(
        f1.keys().collect::<Vec<_>>(),
        f8.keys().collect::<Vec<_>>(),
        "same file set"
    );
    for (name, bytes) in &f1 {
        assert_eq!(bytes, &f8[name], "{name} differs between --jobs 1 and 8");
    }
    let _ = fs::remove_dir_all(&d1);
    let _ = fs::remove_dir_all(&d8);
}

#[test]
fn committed_golden_files_match_the_generator() {
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../smrpd/tests/golden");
    for trace in golden_scenarios() {
        let path = golden_dir.join(format!("{}.json", trace.name));
        let committed = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing committed golden trace {} — regenerate with \
                 `cargo run --bin faultlab -- --dump-trace crates/smrpd/tests/golden` ({e})",
                path.display()
            )
        });
        assert_eq!(
            committed,
            trace.to_json(),
            "{}.json drifted from the generator — regenerate with \
             `cargo run --bin faultlab -- --dump-trace crates/smrpd/tests/golden`",
            trace.name
        );
        // And the committed digest really is the digest of the committed
        // expected state (the file was not hand-edited).
        let parsed = GoldenTrace::from_json(&committed).unwrap();
        assert_eq!(parsed.expected.digest(), parsed.expected_digest);
    }
}
