//! Campaign-level differential test: timer wheel vs reference heap.
//!
//! `run_campaign_with_backend` lets a whole Monte-Carlo campaign run on
//! either timer backend. Because both backends share the engine's global
//! insertion-sequence counter, their merged event order is contractually
//! identical — so a campaign's per-case results and its serialized
//! report must be byte-identical across backends, and that equivalence
//! must survive any worker-thread count.

use smrp_faultlab::{run_campaign_with_backend, CampaignConfig, CampaignReport, CampaignRun};
use smrp_sim::TimerBackend;

fn campaign_config() -> CampaignConfig {
    // The 3-group configuration from the determinism suite: sessions
    // share the substrate and work splits at (case, protocol)
    // granularity, the most aggressive interleaving the runner has.
    CampaignConfig {
        nodes: 60,
        groups: 3,
        group_size: 8,
        scenarios: 21,
        base_seed: 0xD15C0,
        ..CampaignConfig::default()
    }
}

fn run(jobs: usize, backend: TimerBackend) -> CampaignRun {
    run_campaign_with_backend(&campaign_config(), jobs, backend).unwrap()
}

#[test]
fn campaign_results_are_byte_identical_across_backends_and_jobs() {
    let reference = run(1, TimerBackend::ReferenceHeap);
    let reference_json = CampaignReport::from_run(&reference).to_json();

    for (jobs, backend) in [
        (1, TimerBackend::Wheel),
        (8, TimerBackend::Wheel),
        (8, TimerBackend::ReferenceHeap),
    ] {
        let other = run(jobs, backend);
        assert_eq!(
            reference.results, other.results,
            "case results diverged under {backend:?} with {jobs} jobs"
        );
        assert_eq!(
            reference_json,
            CampaignReport::from_run(&other).to_json(),
            "report diverged under {backend:?} with {jobs} jobs"
        );
    }

    // The shared campaign is clean on both backends (same bytes, but say
    // it explicitly: zero invariant violations, every case accounted).
    let report = CampaignReport::from_run(&reference);
    assert!(report.is_clean(), "violations: {:?}", report.reproducers);
    assert_eq!(report.case_rows.len(), campaign_config().scenarios);
}
