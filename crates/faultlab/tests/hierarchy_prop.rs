//! Property tests for N-level hierarchical recovery.
//!
//! Two invariants the architecture promises on *random* domain trees
//! (levels ≤ 4, all seeded):
//!
//! * **DomainLocality on the wire** — an intra-domain link failure is
//!   repaired without a single control message crossing the owning
//!   domain's border, and without an election. The check runs the repair
//!   through the message-level simulator and audits the full trace; the
//!   restoration paths themselves must also stay inside the owning
//!   domain's node set (plus its session members), so a whitelisted
//!   detour can't hide a leak.
//! * **Population-weighted SHR bookkeeping** — after arbitrary
//!   `set_member_weight` perturbations, every domain tree's incremental
//!   `N_u` / `SHR(u)` values match the from-scratch
//!   [`recompute_stats`](smrp_core::MulticastTree) oracle (Eq. 2 vs
//!   Eq. 1).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use smrp_core::SmrpConfig;
use smrp_faultlab::HierarchyConfig;
use smrp_net::nlevel::NLevelTopology;
use smrp_net::{FailureScenario, GroupId, LinkId};
use smrp_proto::hierarchy::NLevelSession;
use smrp_proto::{FailureTiming, InjectionTiming, MultiSession, ProtoSession, RecoveryPlan};
use smrp_sim::{ChannelSpec, SimTime, TraceEvent, TraceLog};

fn config(seed: u64, levels: u32) -> HierarchyConfig {
    // Deep trees multiply domains (hence groups and data traffic); keep
    // the per-level dimensions small enough that a full wire trace fits
    // its buffer even at levels = 4.
    let deep = levels >= 4;
    HierarchyConfig {
        levels,
        root_nodes: if deep { 2 } else { 3 },
        fanout: if deep { 1 } else { 2 },
        domain_nodes: if deep { 4 } else { 5 },
        population: 1_000,
        members_per_leaf: 1,
        scenarios: 4,
        base_seed: seed,
        run_until_ms: 1000.0,
        ..HierarchyConfig::default()
    }
}

fn build(cfg: &HierarchyConfig) -> (NLevelTopology, NLevelSession) {
    let topo = cfg.topology().expect("generator settings are valid");
    let (source, members) = cfg.pick_members(&topo);
    let nsess = NLevelSession::build(&topo, source, &members, SmrpConfig::default())
        .expect("session builds");
    (topo, nsess)
}

fn trace_group(what: &str) -> Option<usize> {
    let rest = what.strip_prefix("GroupMsg { group: GroupId(")?;
    rest[..rest.find(')')?].parse().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn intra_domain_failures_stay_confined_on_the_wire(
        seed in 0u64..200,
        levels in 2u32..5,
        pick in 0usize..64,
    ) {
        let cfg = config(seed, levels);
        let (topo, nsess) = build(&cfg);
        let graph = nsess.topology().graph();
        let domains = nsess.active_domain_ids();

        // Intra-domain tree links with a confined repair available.
        let mut candidates: Vec<(LinkId, _)> = Vec::new();
        for &d in &domains {
            for l in nsess.domain_tree_global(d).unwrap().links(graph) {
                let link = graph.link(l);
                if topo.domain_of(link.a()) != topo.domain_of(link.b()) {
                    continue;
                }
                if let Ok(rec) = nsess.recover(l) {
                    if rec.domains_involved == 1 && !rec.plans.is_empty() {
                        candidates.push((l, rec));
                    }
                }
            }
        }
        prop_assume!(!candidates.is_empty());
        let (link, rec) = candidates.swap_remove(pick % candidates.len());

        // An intra-domain failure never escalates, and its restoration
        // paths never leave the owning domain's world: every hop is a
        // node of the owner domain or one of the owner session's members
        // (child agents live in child domains by construction).
        prop_assert!(rec.elections.is_empty());
        let owner_nodes = nsess.domain_session_nodes(rec.owner).unwrap();
        for plan in &rec.plans {
            for &n in &plan.path {
                prop_assert!(
                    topo.domain_of(n) == rec.owner || owner_nodes.contains(&n),
                    "restoration path leaves domain {:?} at {n:?}",
                    rec.owner
                );
            }
        }

        // Put the repair on the wire and audit the whole trace.
        let sessions: Vec<_> = domains
            .iter()
            .map(|&d| ProtoSession::from_tree(graph, nsess.domain_tree_global(d).unwrap()))
            .collect();
        let multi = MultiSession::from_sessions(sessions);
        let owner_group = domains.iter().position(|&d| d == rec.owner).unwrap();
        let plans: Vec<_> = rec
            .plans
            .iter()
            .map(|p| (
                GroupId::new(owner_group),
                p.member,
                RecoveryPlan {
                    path: p.path.clone(),
                    wait: SimTime::ZERO,
                    path_delay: SimTime::from_ms(p.delay_ms),
                },
            ))
            .collect();
        let (report, trace) = multi.run_failure_planned_traced(
            &FailureScenario::link(link),
            &plans,
            InjectionTiming::Once(FailureTiming::persistent(SimTime::from_ms(100.0))),
            &ChannelSpec::perfect(),
            SimTime::from_ms(cfg.run_until_ms),
            TraceLog::new(2_000_000),
        );
        prop_assert!(report.groups[owner_group].all_restored());
        prop_assert_eq!(trace.discarded(), 0, "trace overflowed; audit incomplete");
        for ev in trace.entries() {
            let TraceEvent::Sent { from, to, what, .. } = ev else { continue };
            let Some(g) = trace_group(what) else { continue };
            let allowed = nsess.domain_session_nodes(domains[g]).unwrap();
            let inside = |n: smrp_net::NodeId| {
                allowed.contains(&n)
                    || (g == owner_group && topo.domain_of(n) == rec.owner)
            };
            prop_assert!(
                inside(*from) && inside(*to),
                "control message crossed a border: {what} on {from:?}->{to:?}"
            );
        }
    }

    #[test]
    fn weighted_shr_matches_from_scratch_oracle(
        seed in 0u64..500,
        levels in 2u32..5,
        rounds in 1usize..12,
    ) {
        let cfg = config(seed, levels);
        let (_topo, nsess) = build(&cfg);
        let graph = nsess.topology().graph();
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
        for d in nsess.active_domain_ids() {
            let mut tree = nsess.domain_tree_global(d).unwrap();
            // The exported tree's incremental stats already match Eq. 1.
            prop_assert!(tree.validate(graph).is_ok());
            let members: Vec<_> = tree.members().collect();
            prop_assume!(!members.is_empty());
            for _ in 0..rounds {
                let m = members[rng.gen_range(0..members.len())];
                let w = rng.gen_range(1..10_000u32);
                tree.set_member_weight(m, w).expect("members take weights");
                // Incremental Eq. 2 maintenance vs the from-scratch oracle.
                prop_assert!(
                    tree.validate(graph).is_ok(),
                    "weighted SHR diverged from oracle after setting {m:?} to {w}"
                );
                let mut oracle = tree.clone();
                oracle.recompute_stats();
                for &n in &members {
                    prop_assert_eq!(tree.shr(n), oracle.shr(n));
                    prop_assert_eq!(tree.subtree_members(n), oracle.subtree_members(n));
                }
            }
        }
    }
}
