//! End-to-end determinism of faultlab campaigns.
//!
//! The JSON report is the unit of reproducibility: identical seed and
//! configuration must yield byte-identical reports, regardless of how many
//! worker threads executed the campaign or how often it is rerun.

use smrp_faultlab::{run_campaign, CampaignConfig, CampaignReport};

fn small_config() -> CampaignConfig {
    CampaignConfig {
        nodes: 60,
        group_size: 16,
        scenarios: 48,
        base_seed: 0xD15C0,
        ..CampaignConfig::default()
    }
}

#[test]
fn identical_seed_and_config_yield_byte_identical_reports() {
    let first = run_campaign(&small_config(), 1).unwrap();
    let second = run_campaign(&small_config(), 1).unwrap();
    assert_eq!(
        CampaignReport::from_run(&first).to_json(),
        CampaignReport::from_run(&second).to_json()
    );
}

#[test]
fn worker_count_does_not_change_the_report() {
    let serial = run_campaign(&small_config(), 1).unwrap();
    let parallel = run_campaign(&small_config(), 4).unwrap();
    assert_eq!(
        CampaignReport::from_run(&serial).to_json(),
        CampaignReport::from_run(&parallel).to_json()
    );
}

#[test]
fn multi_group_report_is_byte_identical_across_jobs() {
    // Three sessions share the substrate; work items split at (case,
    // protocol) granularity, so 8 workers interleave aggressively —
    // the serialized report must not notice.
    let cfg = CampaignConfig {
        groups: 3,
        group_size: 8,
        scenarios: 21,
        ..small_config()
    };
    let serial = run_campaign(&cfg, 1).unwrap();
    let parallel = run_campaign(&cfg, 8).unwrap();
    let serial_json = CampaignReport::from_run(&serial).to_json();
    assert_eq!(serial_json, CampaignReport::from_run(&parallel).to_json());
    // The multi-session campaign is also clean and fully accounted.
    let report = CampaignReport::from_run(&serial);
    assert!(report.is_clean(), "violations: {:?}", report.reproducers);
    for r in &serial.results {
        assert_eq!(r.smrp.groups.len(), 3);
        assert_eq!(r.spf.groups.len(), 3);
    }
}

#[test]
fn different_seed_changes_the_report() {
    let base = run_campaign(&small_config(), 1).unwrap();
    let reseeded = run_campaign(
        &CampaignConfig {
            base_seed: 0xD15C1,
            ..small_config()
        },
        1,
    )
    .unwrap();
    assert_ne!(
        CampaignReport::from_run(&base).to_json(),
        CampaignReport::from_run(&reseeded).to_json()
    );
}

#[test]
fn small_campaign_is_clean() {
    let run = run_campaign(&small_config(), 2).unwrap();
    let report = CampaignReport::from_run(&run);
    assert!(report.is_clean(), "violations: {:?}", report.reproducers);
    assert_eq!(report.case_rows.len(), small_config().scenarios);
}
