//! Shared-fate SRLG failures across concurrent sessions.
//!
//! A real conduit cut does not respect session boundaries: one SRLG can
//! sever the trees of several multicast groups at once. This test builds
//! a topology where two sessions' trees cross the same pair of last-hop
//! links, fails that pair as one SRLG, and checks the multi-session
//! campaign machinery end to end:
//!
//! * `shared_fate_srlgs` identifies the conduit as multi-tree;
//! * each group's recovery is planned, audited and simulated
//!   *independently* — both land in a restored-or-fell-back outcome and
//!   the invariant auditor accepts each group's recovery on its own
//!   tree;
//! * both detours squeeze through the only surviving path (the shared
//!   relay `d`), the contention the multi-session engine exists to
//!   exercise.

use smrp_core::recovery::DetourKind;
use smrp_faultlab::{
    audit_recovery, evaluate_case, shared_fate_srlgs, CampaignConfig, FaultCase, FaultFamily,
    Outcome, Timing,
};
use smrp_net::{FailureScenario, Graph, NodeId};
use smrp_proto::{MultiSession, ProtoSession, TreeProtocol};
use smrp_sim::ChannelSpec;

/// Two sources behind one transit spine, two members behind one shared
/// conduit, and a detour relay `d` both groups must share after the cut:
///
/// ```text
///   s0 ─┐                ┌─ m0 ─┐
///        x ───── y ──────┤       d
///   s1 ─┘   ╲            └─ m1 ─┘
///            ╲────────── d (d─x, d─m0, d─m1)
/// ```
fn shared_fate_topology() -> (Graph, [NodeId; 7]) {
    let mut g = Graph::with_nodes(7);
    let n: Vec<NodeId> = g.node_ids().collect();
    let [s0, s1, x, y, m0, m1, d] = [n[0], n[1], n[2], n[3], n[4], n[5], n[6]];
    g.add_link(s0, x, 1.0).unwrap();
    g.add_link(s1, x, 1.0).unwrap();
    g.add_link(x, y, 1.0).unwrap();
    g.add_link(y, m0, 1.0).unwrap();
    g.add_link(y, m1, 1.0).unwrap();
    g.add_link(d, x, 1.0).unwrap();
    g.add_link(d, m0, 2.0).unwrap();
    g.add_link(d, m1, 2.0).unwrap();
    (g, [s0, s1, x, y, m0, m1, d])
}

#[test]
fn one_srlg_cut_hits_two_groups_and_each_recovers_independently() {
    let (graph, [s0, s1, _x, y, m0, m1, d]) = shared_fate_topology();
    let g0 = ProtoSession::build(&graph, s0, &[m0], TreeProtocol::Spf).unwrap();
    let g1 = ProtoSession::build(&graph, s1, &[m1], TreeProtocol::Spf).unwrap();

    // Both shortest-path trees ride the y conduit for their last hop.
    let l_ym0 = graph.link_between(y, m0).unwrap();
    let l_ym1 = graph.link_between(y, m1).unwrap();
    let t0 = g0.tree().links(&graph);
    let t1 = g1.tree().links(&graph);
    assert!(t0.contains(&l_ym0) && !t0.contains(&l_ym1));
    assert!(t1.contains(&l_ym1) && !t1.contains(&l_ym0));

    // The conduit {y–m0, y–m1} is the only listed SRLG that breaks more
    // than one tree: the s0 access link touches one tree, the idle
    // detour links touch none.
    let l_s0x = graph.link_between(s0, _x).unwrap();
    let l_dm0 = graph.link_between(d, m0).unwrap();
    let l_dm1 = graph.link_between(d, m1).unwrap();
    let srlgs = vec![vec![l_ym0, l_ym1], vec![l_s0x], vec![l_dm0, l_dm1]];
    assert_eq!(shared_fate_srlgs(&srlgs, &[t0, t1]), vec![0]);

    // Fail the conduit wholesale and run both groups through one shared
    // experiment.
    let scenario = FailureScenario::links([l_ym0, l_ym1]);
    let smrp = MultiSession::from_sessions(vec![g0.clone(), g1.clone()]);
    let spf = MultiSession::from_sessions(vec![
        ProtoSession::build(&graph, s0, &[m0], TreeProtocol::Spf).unwrap(),
        ProtoSession::build(&graph, s1, &[m1], TreeProtocol::Spf).unwrap(),
    ]);
    let cfg = CampaignConfig {
        groups: 2,
        ..CampaignConfig::default()
    };
    let case = FaultCase {
        id: 0,
        family: FaultFamily::Srlg,
        seed: 1,
        scenario: scenario.clone(),
        timing: Timing::persistent(),
        channel: ChannelSpec::perfect(),
    };
    let result = evaluate_case(&graph, &smrp, &spf, &cfg, &case);

    // Every group of every protocol restored or fell back — nobody was
    // stranded, and each group's verdict stands on its own.
    for proto in [&result.smrp, &result.spf] {
        assert_eq!(proto.groups.len(), 2);
        for go in &proto.groups {
            assert!(
                matches!(
                    go.outcome,
                    Outcome::RestoredLocalDetour | Outcome::FellBackGlobal
                ),
                "group {} ended {:?}",
                go.group,
                go.outcome
            );
            assert_eq!(go.affected, 1, "the SRLG severs each group's member");
            assert_eq!(go.restored, 1);
            assert!(go.violations.is_empty());
        }
    }

    // The invariant auditor accepts each group's recovery on its own
    // tree: detours land on that group's surviving structure only.
    for session in [&g0, &g1] {
        let plans = session.plan_recoveries(&scenario, DetourKind::Local);
        let violations = audit_recovery(&graph, session.tree(), &scenario, &plans);
        assert!(violations.is_empty(), "{violations:?}");
        // The only surviving route runs through the shared relay `d`.
        for rec in &plans.recoveries {
            assert!(
                rec.restoration_path().nodes().contains(&d),
                "detour must cross the shared relay: {:?}",
                rec.restoration_path().nodes()
            );
        }
    }
}
