//! Differential regression gate for the wire-level hierarchy campaigns.
//!
//! The N-level engine at `levels = 2` is the transit-stub shape the
//! repository grew up on; these tests pin its wire behavior down:
//! byte-identical campaign reports across worker counts and across both
//! engine timer backends, and a golden digest of every `Setup` message
//! the restoration cascade puts on the wire for a fixed case — so a
//! refactor of the hierarchy layer that silently changes graft traffic
//! fails here, not in production figures.

use smrp_core::SmrpConfig;
use smrp_faultlab::{run_hierarchy, run_hierarchy_with_backend, HierarchyConfig, HierarchyReport};
use smrp_net::FailureScenario;
use smrp_proto::hierarchy::NLevelSession;
use smrp_proto::{FailureTiming, InjectionTiming, MultiSession, ProtoSession, RecoveryPlan};
use smrp_sim::{ChannelSpec, SimTime, TimerBackend, TraceEvent, TraceLog};

fn levels2_config() -> HierarchyConfig {
    HierarchyConfig {
        levels: 2,
        root_nodes: 4,
        fanout: 3,
        domain_nodes: 6,
        population: 2_000,
        scenarios: 10,
        base_seed: 0x2CAFE,
        run_until_ms: 1200.0,
        ..HierarchyConfig::default()
    }
}

#[test]
fn levels2_reports_are_byte_identical_across_jobs_and_backends() {
    let cfg = levels2_config();
    let baseline = HierarchyReport::from_run(&run_hierarchy(&cfg, 1).unwrap()).to_json();
    assert!(HierarchyReport::from_run(&run_hierarchy(&cfg, 1).unwrap()).is_clean());
    for jobs in [1usize, 8] {
        for backend in [TimerBackend::Wheel, TimerBackend::ReferenceHeap] {
            let run = run_hierarchy_with_backend(&cfg, jobs, backend).unwrap();
            let json = HierarchyReport::from_run(&run).to_json();
            assert_eq!(
                json, baseline,
                "report diverged at jobs={jobs} backend={backend:?}"
            );
        }
    }
}

/// FNV-1a over the stable rendering of every Setup send in the trace.
fn setup_digest(trace: &TraceLog) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for ev in trace.entries() {
        let TraceEvent::Sent {
            time,
            from,
            to,
            what,
        } = ev
        else {
            continue;
        };
        if !what.contains("Setup") {
            continue;
        }
        for b in format!("{time:?} {from:?}->{to:?} {what}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Runs one fixed levels-2 repair on the wire and digests its Setup sends.
fn run_fixed_case(backend: TimerBackend) -> u64 {
    let cfg = levels2_config();
    let topo = cfg.topology().unwrap();
    let (source, members) = cfg.pick_members(&topo);
    let nsess = NLevelSession::build(&topo, source, &members, SmrpConfig::default()).unwrap();
    let graph = nsess.topology().graph();
    let domains = nsess.active_domain_ids();
    let sessions: Vec<_> = domains
        .iter()
        .map(|&d| ProtoSession::from_tree(graph, nsess.domain_tree_global(d).unwrap()))
        .collect();
    let mut multi = MultiSession::from_sessions(sessions);
    multi.set_timer_backend(backend);

    // First tree link whose failure the hierarchy repairs with a plan —
    // deterministic in the seed, so every backend sees the same case.
    let (link, rec) = domains
        .iter()
        .flat_map(|&d| nsess.domain_tree_global(d).unwrap().links(graph))
        .find_map(|l| match nsess.recover(l) {
            Ok(rec) if !rec.plans.is_empty() => Some((l, rec)),
            _ => None,
        })
        .expect("some repairable tree link exists");

    let owner_group = domains.iter().position(|&d| d == rec.owner).unwrap();
    let plans: Vec<_> = rec
        .plans
        .iter()
        .map(|p| {
            (
                smrp_net::GroupId::new(owner_group),
                p.member,
                RecoveryPlan {
                    path: p.path.clone(),
                    wait: SimTime::ZERO,
                    path_delay: SimTime::from_ms(p.delay_ms),
                },
            )
        })
        .collect();
    let (report, trace) = multi.run_failure_planned_traced(
        &FailureScenario::link(link),
        &plans,
        InjectionTiming::Once(FailureTiming::persistent(SimTime::from_ms(100.0))),
        &ChannelSpec::perfect(),
        SimTime::from_ms(1200.0),
        TraceLog::new(2_000_000),
    );
    assert!(report.groups[owner_group].all_restored());
    assert_eq!(trace.discarded(), 0);
    setup_digest(&trace)
}

#[test]
fn levels2_setup_send_trace_matches_golden() {
    // Pinned from the first green run; a change here means the wire-level
    // graft cascade itself changed and the goldens must be re-vetted.
    const GOLDEN: u64 = 0xc17f_f37e_99c8_0afd;
    let wheel = run_fixed_case(TimerBackend::Wheel);
    let heap = run_fixed_case(TimerBackend::ReferenceHeap);
    assert_eq!(
        wheel, heap,
        "timer backends produced different Setup traffic"
    );
    assert_eq!(
        wheel, GOLDEN,
        "Setup-send golden diverged (got {wheel:#018x})"
    );
}
