//! Wire-level campaigns over N-level recovery domains (§3.3.3
//! generalized), with aggregated member populations and a DomainLocality
//! audit.
//!
//! The analytic hierarchy engine (`smrp_proto::hierarchy::NLevelSession`)
//! attributes each link failure to its owning recovery domain and computes
//! a repair confined to that domain's subgraph. This module puts those
//! repairs on the wire: every active domain's session tree (re-exported to
//! global coordinates, population weights included) becomes one group of a
//! [`MultiSession`], the failure is injected into the shared simulator,
//! and the domain-confined restoration paths are installed verbatim as
//! recovery plans — the planner never sees topology outside the owning
//! domain (`run_failure_planned_traced` is the seam).
//!
//! Each domain's group models that domain's data plane: its root (the real
//! source, or the domain's agent) feeds the domain's members, aggregated
//! populations and child agents. The hierarchical relay between domains is
//! the analytic layer's contract; on the wire the campaign checks the
//! properties the architecture promises per domain:
//!
//! * **DomainLocality** — every control message of a domain's session
//!   stays inside that domain's session node set. For a new-agent
//!   election the owner's corridor through the elected child (the
//!   installed plan path) is the one sanctioned extension. The audit
//!   parses the full simulator trace, so a single stray `Hello` across a
//!   border fails the campaign;
//! * **restoration** — every member the failure cut off regains service
//!   within the run, timed from the injection;
//! * **determinism** — reports depend only on the configuration: any
//!   `--jobs` value and either timer backend produce identical runs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use smrp_core::SmrpConfig;
use smrp_metrics::{DomainRollup, LocalityHealth, Stats};
use smrp_net::nlevel::{NLevelConfig, NLevelTopology};
use smrp_net::transit_stub::DomainId;
use smrp_net::{FailureScenario, GroupId, LinkId, NetError, NodeId};
use smrp_proto::hierarchy::NLevelSession;
use smrp_proto::{FailureTiming, InjectionTiming, MultiSession, ProtoSession, RecoveryPlan};
use smrp_sim::{ChannelSpec, SimTime, TimerBackend, TraceEvent, TraceLog};

/// Trace capacity per case. Hierarchy cases are small (hundreds of nodes,
/// a handful of groups, sub-2-second horizons), so this holds the whole
/// run; a case whose trace still overflows is reported *unaudited* and
/// fails [`HierarchyReport::is_clean`].
const TRACE_CAP: usize = 2_000_000;

/// Knobs of a hierarchical campaign. Serialized into the report header;
/// job count and timer backend never enter the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Depth of the domain tree (2 = the paper's transit-stub shape).
    pub levels: u32,
    /// Nodes in the root (top transit) domain.
    pub root_nodes: usize,
    /// Child domains hung off each node of the level above.
    pub fanout: usize,
    /// Nodes per non-root domain.
    pub domain_nodes: usize,
    /// Aggregated receivers spread over the leaf domains (Eq. 2 weights);
    /// 0 disables populations.
    pub population: u64,
    /// Real members sampled per leaf domain (the source's leaf excluded).
    pub members_per_leaf: usize,
    /// Intra-domain extra-edge probability (detour richness).
    pub extra_edge_prob: f64,
    /// Probability that a non-root domain gets a redundant backup gateway
    /// (enables new-agent elections on gateway cuts).
    pub redundant_gateway_prob: f64,
    /// Number of failed-link cases to evaluate (drawn from the union of
    /// all domain-session tree links).
    pub scenarios: usize,
    /// Base RNG seed; topology, members and case sampling derive sub-seeds.
    pub base_seed: u64,
    /// When the failure is injected, in milliseconds.
    pub fail_at_ms: f64,
    /// Simulation horizon per case, in milliseconds.
    pub run_until_ms: f64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            levels: 3,
            root_nodes: 4,
            fanout: 2,
            domain_nodes: 8,
            population: 10_000,
            members_per_leaf: 2,
            extra_edge_prob: 0.45,
            redundant_gateway_prob: 0.35,
            scenarios: 48,
            base_seed: 0x5EED,
            fail_at_ms: 100.0,
            run_until_ms: 1500.0,
        }
    }
}

impl HierarchyConfig {
    /// Generates the campaign's N-level topology.
    ///
    /// # Errors
    ///
    /// Propagates generator parameter validation.
    pub fn topology(&self) -> Result<NLevelTopology, NetError> {
        let mut c = NLevelConfig::new(self.root_nodes)
            .extra_edge_prob(self.extra_edge_prob)
            .redundant_gateway_prob(self.redundant_gateway_prob)
            .population(self.population)
            .seed(self.base_seed ^ 0x9E37_79B9);
        for _ in 1..self.levels {
            c = c.level(self.fanout, self.domain_nodes);
        }
        c.generate()
    }

    /// Samples the source (first leaf domain) and the member set (a few
    /// nodes per remaining leaf), deterministically in the base seed.
    pub fn pick_members(&self, topo: &NLevelTopology) -> (NodeId, Vec<NodeId>) {
        let mut rng = SmallRng::seed_from_u64(self.base_seed.wrapping_add(0xA5A5_A5A5));
        let leaves: Vec<_> = topo.leaf_domains().collect();
        let source = leaves[0].nodes()[0];
        let mut members = Vec::new();
        for leaf in leaves.iter().skip(1) {
            let mut nodes: Vec<NodeId> = leaf.nodes().to_vec();
            nodes.shuffle(&mut rng);
            members.extend(nodes.into_iter().take(self.members_per_leaf));
        }
        if members.is_empty() && leaves[0].nodes().len() > 1 {
            // Degenerate single-leaf shapes still get one member so the
            // session is non-trivial.
            members.push(leaves[0].nodes()[1]);
        }
        (source, members)
    }
}

/// One generated failure case: a link carried by some domain's session
/// tree, attributed to its owning domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyCase {
    /// Dense case id (report order).
    pub id: u32,
    /// The failed link.
    pub link: LinkId,
    /// The recovery domain that owns the failure.
    pub owner: DomainId,
    /// Whether the link is a gateway (border) link rather than an
    /// intra-domain one.
    pub gateway: bool,
}

/// How one hierarchy case ended, in ascending severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HierarchyOutcome {
    /// The failed link carried no session traffic.
    Unaffected,
    /// Repaired inside the owning domain; every affected member restored.
    ConfinedRepair,
    /// The primary border attachment died; a new agent was elected over a
    /// backup gateway and every affected member restored.
    EscalatedElection,
    /// No in-domain detour and no usable backup gateway exist.
    Unrepairable,
    /// A plan was installed but some member never regained service.
    DetectionMissed,
}

impl HierarchyOutcome {
    /// Stable kebab-case name (used as report keys).
    pub fn name(&self) -> &'static str {
        match self {
            HierarchyOutcome::Unaffected => "unaffected",
            HierarchyOutcome::ConfinedRepair => "confined-repair",
            HierarchyOutcome::EscalatedElection => "escalated-election",
            HierarchyOutcome::Unrepairable => "unrepairable",
            HierarchyOutcome::DetectionMissed => "detection-missed",
        }
    }
}

/// One domain's slice of a case evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainSlice {
    /// The domain.
    pub domain: DomainId,
    /// Control messages this domain's lanes sent during the run.
    pub control_messages: u64,
    /// Control messages of this domain's session observed outside its
    /// sanctioned node set (must be zero).
    pub border_crossings: u64,
}

/// The evaluation of one hierarchy case.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyCaseResult {
    /// The case.
    pub case: HierarchyCase,
    /// The classification.
    pub outcome: HierarchyOutcome,
    /// Real members the analytic layer attributes the outage to
    /// (conservative, per §3.3.3 reporting granularity).
    pub affected_members: u32,
    /// Receivers (members + aggregated populations) behind the outage.
    pub affected_population: u64,
    /// Members of the owner's session tree the failure actually cut off
    /// on the wire.
    pub wire_affected: u32,
    /// Wire-affected members that regained service within the run.
    pub restored: u32,
    /// Restoration latencies in milliseconds, member order.
    pub latencies_ms: Vec<f64>,
    /// New-agent elections performed.
    pub elections: u32,
    /// Domains the repair touched (0 = unaffected, 1 = confined).
    pub domains_involved: u32,
    /// Whether the full trace was audited (the buffer did not overflow).
    pub audited: bool,
    /// Per-domain control spend and locality verdicts, in group order.
    pub domains: Vec<DomainSlice>,
}

/// The raw output of a hierarchy campaign, in case-id order.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyRun {
    /// The evaluated configuration.
    pub config: HierarchyConfig,
    /// Per-case results, sorted by case id.
    pub results: Vec<HierarchyCaseResult>,
    /// Hierarchy level of each active domain, in group order.
    pub domain_levels: Vec<u32>,
    /// Total nodes in the generated topology.
    pub nodes: usize,
    /// Total receivers (real members + aggregated populations).
    pub total_population: u64,
    /// Active recovery domains (sessions actually built).
    pub active_domains: usize,
}

/// Everything shared by the per-case workers.
struct Lab<'s> {
    cfg: &'s HierarchyConfig,
    nsess: &'s NLevelSession,
    multi: &'s MultiSession<'s>,
    /// Active domain ids, in group order.
    domains: &'s [DomainId],
    /// `allowed[g][node]`: `node` is inside group `g`'s sanctioned set.
    allowed: &'s [Vec<bool>],
}

/// Parses the group id out of a traced message description
/// (`"GroupMsg { group: GroupId(3), inner: ... }"`).
fn trace_group(what: &str) -> Option<usize> {
    let rest = what.strip_prefix("GroupMsg { group: GroupId(")?;
    let end = rest.find(')')?;
    rest[..end].parse().ok()
}

fn evaluate_case(lab: &Lab<'_>, case: HierarchyCase) -> HierarchyCaseResult {
    let cfg = lab.cfg;
    let scenario = FailureScenario::link(case.link);
    let empty_slices = |lab: &Lab<'_>| {
        lab.domains
            .iter()
            .map(|&d| DomainSlice {
                domain: d,
                control_messages: 0,
                border_crossings: 0,
            })
            .collect::<Vec<_>>()
    };

    let rec = match lab.nsess.recover(case.link) {
        Ok(rec) => rec,
        Err(_) => {
            // No in-domain detour and no backup gateway: the architecture
            // has no doctrine to put on the wire, so there is no run (and
            // nothing to audit).
            return HierarchyCaseResult {
                case,
                outcome: HierarchyOutcome::Unrepairable,
                affected_members: 0,
                affected_population: 0,
                wire_affected: 0,
                restored: 0,
                latencies_ms: Vec::new(),
                elections: 0,
                domains_involved: 0,
                audited: true,
                domains: empty_slices(lab),
            };
        }
    };
    if rec.domains_involved == 0 {
        return HierarchyCaseResult {
            case,
            outcome: HierarchyOutcome::Unaffected,
            affected_members: 0,
            affected_population: 0,
            wire_affected: 0,
            restored: 0,
            latencies_ms: Vec::new(),
            elections: 0,
            domains_involved: 0,
            audited: true,
            domains: empty_slices(lab),
        };
    }

    let owner_group = lab
        .domains
        .iter()
        .position(|&d| d == rec.owner)
        .expect("owner of an affecting failure runs a session");
    let plans: Vec<(GroupId, NodeId, RecoveryPlan)> = rec
        .plans
        .iter()
        .map(|p| {
            (
                GroupId::new(owner_group),
                p.member,
                RecoveryPlan {
                    path: p.path.clone(),
                    wait: SimTime::ZERO,
                    path_delay: SimTime::from_ms(p.delay_ms),
                },
            )
        })
        .collect();

    let (report, trace) = lab.multi.run_failure_planned_traced(
        &scenario,
        &plans,
        InjectionTiming::Once(FailureTiming::persistent(SimTime::from_ms(cfg.fail_at_ms))),
        &ChannelSpec::perfect(),
        SimTime::from_ms(cfg.run_until_ms),
        TraceLog::new(TRACE_CAP),
    );

    // DomainLocality audit: every sent message of group `g` must stay
    // inside `g`'s sanctioned node set. An election extends the *owner's*
    // set by the installed corridor through the elected child domain.
    let mut owner_allowed = lab.allowed[owner_group].clone();
    for p in &rec.plans {
        for n in &p.path {
            owner_allowed[n.index()] = true;
        }
    }
    let audited = trace.discarded() == 0;
    let mut crossings = vec![0u64; lab.domains.len()];
    for ev in trace.entries() {
        let TraceEvent::Sent { from, to, what, .. } = ev else {
            continue;
        };
        let Some(g) = trace_group(what) else {
            continue;
        };
        let allowed = if g == owner_group {
            &owner_allowed
        } else {
            &lab.allowed[g]
        };
        if !allowed[from.index()] || !allowed[to.index()] {
            crossings[g] += 1;
        }
    }
    // A failure leaking into another domain's *data plane* is a
    // confinement violation too: non-owner groups must be untouched.
    for (g, slice) in report.groups.iter().enumerate() {
        if g != owner_group && !slice.restorations.is_empty() {
            crossings[g] += slice.restorations.len() as u64;
        }
    }

    let owner_slice = &report.groups[owner_group];
    let latencies_ms = owner_slice.latencies_ms();
    let restored = latencies_ms.len() as u32;
    let wire_affected = owner_slice.restorations.len() as u32;
    let outcome = if !owner_slice.all_restored() {
        HierarchyOutcome::DetectionMissed
    } else if rec.elections.is_empty() {
        HierarchyOutcome::ConfinedRepair
    } else {
        HierarchyOutcome::EscalatedElection
    };

    let domains = lab
        .domains
        .iter()
        .enumerate()
        .map(|(g, &d)| DomainSlice {
            domain: d,
            control_messages: report.groups[g].control.total(),
            border_crossings: crossings[g],
        })
        .collect();

    HierarchyCaseResult {
        case,
        outcome,
        affected_members: rec.affected_members.len() as u32,
        affected_population: rec.affected_population,
        wire_affected,
        restored,
        latencies_ms,
        elections: rec.elections.len() as u32,
        domains_involved: rec.domains_involved as u32,
        audited,
        domains,
    }
}

/// Generates the case list: the union of every domain session's tree
/// links (in link-id order), sampled down to `scenarios` with a seeded
/// shuffle when there are more.
fn generate_cases(
    cfg: &HierarchyConfig,
    nsess: &NLevelSession,
    domains: &[DomainId],
) -> Vec<HierarchyCase> {
    let graph = nsess.topology().graph();
    let mut seen = vec![false; graph.link_count()];
    for &d in domains {
        let tree = nsess
            .domain_tree_global(d)
            .expect("active domains have trees");
        for l in tree.links(graph) {
            seen[l.index()] = true;
        }
    }
    let mut links: Vec<LinkId> = (0..seen.len())
        .filter(|&i| seen[i])
        .map(LinkId::new)
        .collect();
    if links.len() > cfg.scenarios {
        let mut rng = SmallRng::seed_from_u64(cfg.base_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        links.shuffle(&mut rng);
        links.truncate(cfg.scenarios);
        links.sort_by_key(|l| l.index());
    }
    links
        .into_iter()
        .enumerate()
        .map(|(i, link)| {
            let owner = nsess.owning_domain(link);
            let l = graph.link(link);
            let gateway = nsess.topology().domain_of(l.a()) != nsess.topology().domain_of(l.b());
            HierarchyCase {
                id: i as u32,
                link,
                owner,
                gateway,
            }
        })
        .collect()
}

/// Runs a hierarchical campaign on `jobs` worker threads with the default
/// timer backend.
///
/// # Errors
///
/// Propagates topology-generation failures.
///
/// # Panics
///
/// Panics if a worker thread panics (a bug in the evaluator itself).
pub fn run_hierarchy(cfg: &HierarchyConfig, jobs: usize) -> Result<HierarchyRun, NetError> {
    run_hierarchy_with_backend(cfg, jobs, TimerBackend::default())
}

/// [`run_hierarchy`] with an explicit engine timer backend. Like the flat
/// campaigns, the backend is an execution detail: the wheel and the
/// reference heap must produce byte-identical runs.
///
/// # Errors
///
/// Propagates topology-generation failures.
///
/// # Panics
///
/// Panics if a worker thread panics (a bug in the evaluator itself).
pub fn run_hierarchy_with_backend(
    cfg: &HierarchyConfig,
    jobs: usize,
    backend: TimerBackend,
) -> Result<HierarchyRun, NetError> {
    let jobs = jobs.max(1);
    let topo = cfg.topology()?;
    let (source, members) = cfg.pick_members(&topo);
    let nsess = NLevelSession::build(&topo, source, &members, SmrpConfig::default())
        .expect("hierarchy sessions build on generated topologies");
    let graph = nsess.topology().graph();
    let domains = nsess.active_domain_ids();

    let mut sessions = Vec::with_capacity(domains.len());
    let mut allowed = Vec::with_capacity(domains.len());
    for &d in &domains {
        let tree = nsess
            .domain_tree_global(d)
            .expect("active domains have trees");
        sessions.push(ProtoSession::from_tree(graph, tree));
        let mut bits = vec![false; graph.node_count()];
        for &n in nsess
            .domain_session_nodes(d)
            .expect("active domains have session nodes")
        {
            bits[n.index()] = true;
        }
        allowed.push(bits);
    }
    let mut multi = MultiSession::from_sessions(sessions);
    multi.set_timer_backend(backend);

    let cases = generate_cases(cfg, &nsess, &domains);
    let lab = Lab {
        cfg,
        nsess: &nsess,
        multi: &multi,
        domains: &domains,
        allowed: &allowed,
    };

    let total = cases.len();
    let next = AtomicUsize::new(0);
    let evaluated: Mutex<Vec<(usize, HierarchyCaseResult)>> = Mutex::new(Vec::with_capacity(total));
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(total.max(1)) {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    local.push((i, evaluate_case(&lab, cases[i])));
                }
                evaluated.lock().expect("no poisoned workers").extend(local);
            });
        }
    });
    let mut slots: Vec<Option<HierarchyCaseResult>> = vec![None; total];
    for (i, r) in evaluated.into_inner().expect("workers joined") {
        slots[i] = Some(r);
    }
    let results = slots
        .into_iter()
        .map(|s| s.expect("every case was evaluated"))
        .collect();
    let domain_levels = domains
        .iter()
        .map(|d| topo.domains()[d.index()].level())
        .collect();
    Ok(HierarchyRun {
        config: cfg.clone(),
        results,
        domain_levels,
        nodes: graph.node_count(),
        total_population: nsess.total_population(),
        active_domains: domains.len(),
    })
}

/// Restoration-latency distribution of a hierarchy campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyLatency {
    /// Restored members across all cases.
    pub count: u64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Median latency.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// Worst restoration.
    pub max_ms: f64,
}

impl HierarchyLatency {
    fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let mut stats = Stats::new();
        for &s in &samples {
            stats.push(s);
        }
        let q = |p: f64| -> f64 {
            if samples.is_empty() {
                return 0.0;
            }
            let idx = ((samples.len() - 1) as f64 * p).round() as usize;
            samples[idx]
        };
        HierarchyLatency {
            count: samples.len() as u64,
            mean_ms: if samples.is_empty() {
                0.0
            } else {
                stats.mean()
            },
            p50_ms: q(0.5),
            p95_ms: q(0.95),
            max_ms: samples.last().copied().unwrap_or(0.0),
        }
    }
}

/// The stable JSON report of a hierarchy campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyReport {
    /// The evaluated configuration.
    pub config: HierarchyConfig,
    /// Topology size.
    pub nodes: usize,
    /// Total receivers served (real members + aggregated populations).
    pub total_population: u64,
    /// Active recovery domains.
    pub active_domains: usize,
    /// Cases evaluated.
    pub cases: u32,
    /// Outcome histogram, keyed by stable outcome name.
    pub outcomes: BTreeMap<String, u32>,
    /// Campaign-level DomainLocality verdict.
    pub locality: LocalityHealth,
    /// Per-domain rollups, in group order.
    pub domains: Vec<DomainRollup>,
    /// Restoration-latency distribution across every restored member.
    pub restoration: HierarchyLatency,
    /// New-agent elections across the campaign.
    pub elections: u64,
}

impl HierarchyReport {
    /// Builds the report from a run.
    pub fn from_run(run: &HierarchyRun) -> Self {
        let mut outcomes: BTreeMap<String, u32> = BTreeMap::new();
        let mut locality = LocalityHealth::default();
        let mut domains: Vec<DomainRollup> = Vec::new();
        let mut latencies = Vec::new();
        let mut elections = 0u64;
        for r in &run.results {
            *outcomes.entry(r.outcome.name().to_string()).or_insert(0) += 1;
            locality.cases_audited += u64::from(r.audited);
            locality.cases_unaudited += u64::from(!r.audited);
            elections += u64::from(r.elections);
            latencies.extend(r.latencies_ms.iter().copied());
            for s in &r.domains {
                locality.border_crossings += s.border_crossings;
            }
        }
        // Per-domain rollups keyed by group order of the first result (all
        // results share the group order).
        if let Some(first) = run.results.first() {
            for (i, s) in first.domains.iter().enumerate() {
                domains.push(DomainRollup::new(
                    s.domain.index() as u32,
                    run.domain_levels[i],
                ));
            }
        }
        for r in &run.results {
            for (i, s) in r.domains.iter().enumerate() {
                domains[i].control_messages += s.control_messages;
                domains[i].border_crossings += s.border_crossings;
            }
            if let Some(d) = domains
                .iter_mut()
                .find(|d| d.domain == r.case.owner.index() as u32)
            {
                match r.outcome {
                    HierarchyOutcome::Unaffected => {}
                    HierarchyOutcome::Unrepairable => {
                        d.cases_owned += 1;
                        d.unrepairable += 1;
                    }
                    _ => {
                        d.cases_owned += 1;
                        d.affected_members += u64::from(r.affected_members);
                        d.affected_population += r.affected_population;
                        d.restored_members += u64::from(r.restored);
                        d.elections += u64::from(r.elections);
                    }
                }
            }
        }
        HierarchyReport {
            config: run.config.clone(),
            nodes: run.nodes,
            total_population: run.total_population,
            active_domains: run.active_domains,
            cases: run.results.len() as u32,
            outcomes,
            locality,
            domains,
            restoration: HierarchyLatency::from_samples(latencies),
            elections,
        }
    }

    /// Whether the campaign is clean: zero border crossings, every case
    /// audited, and no member left unrestored where doctrine applied.
    pub fn is_clean(&self) -> bool {
        self.locality.is_clean() && self.outcomes.get("detection-missed").copied().unwrap_or(0) == 0
    }

    /// One-paragraph terminal synopsis.
    pub fn synopsis(&self) -> String {
        let mut s = format!(
            "hierarchy: levels={} nodes={} domains={} population={} cases={}\n",
            self.config.levels, self.nodes, self.active_domains, self.total_population, self.cases,
        );
        for (k, v) in &self.outcomes {
            s.push_str(&format!("  {k}: {v}\n"));
        }
        s.push_str(&format!(
            "  restoration: n={} mean={:.2}ms p95={:.2}ms | elections={} | border crossings={} ({} unaudited)\n",
            self.restoration.count,
            self.restoration.mean_ms,
            self.restoration.p95_ms,
            self.elections,
            self.locality.border_crossings,
            self.locality.cases_unaudited,
        ));
        s
    }

    /// Serializes the report as stable pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("hierarchy report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HierarchyConfig {
        HierarchyConfig {
            levels: 3,
            root_nodes: 3,
            fanout: 2,
            domain_nodes: 6,
            population: 5_000,
            scenarios: 18,
            base_seed: 42,
            run_until_ms: 1200.0,
            ..HierarchyConfig::default()
        }
    }

    #[test]
    fn hierarchy_campaign_is_confined_and_restores() {
        let run = run_hierarchy(&small(), 2).unwrap();
        let report = HierarchyReport::from_run(&run);
        assert_eq!(report.cases as usize, run.results.len());
        assert!(report.cases > 0);
        assert!(
            report.is_clean(),
            "locality or restoration failed:\n{}",
            report.synopsis()
        );
        // The campaign exercised actual repairs, not just unaffected links.
        let repaired = report.outcomes.get("confined-repair").copied().unwrap_or(0)
            + report
                .outcomes
                .get("escalated-election")
                .copied()
                .unwrap_or(0);
        assert!(repaired > 0, "no repairs exercised:\n{}", report.synopsis());
        assert!(report.restoration.count > 0);
        assert!(report.total_population >= 5_000);
    }

    #[test]
    fn jobs_do_not_change_results() {
        let cfg = small();
        let a = run_hierarchy(&cfg, 1).unwrap();
        let b = run_hierarchy(&cfg, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn timer_backends_agree() {
        let cfg = small();
        let a = run_hierarchy_with_backend(&cfg, 2, TimerBackend::Wheel).unwrap();
        let b = run_hierarchy_with_backend(&cfg, 2, TimerBackend::ReferenceHeap).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn two_level_config_matches_transit_stub_shape() {
        let cfg = HierarchyConfig {
            levels: 2,
            scenarios: 12,
            population: 0,
            ..small()
        };
        let run = run_hierarchy(&cfg, 2).unwrap();
        let report = HierarchyReport::from_run(&run);
        assert!(report.is_clean(), "{}", report.synopsis());
        assert_eq!(report.config.levels, 2);
    }

    #[test]
    fn trace_group_parses_group_msg_descriptions() {
        assert_eq!(
            trace_group("GroupMsg { group: GroupId(3), inner: Hello }"),
            Some(3)
        );
        assert_eq!(trace_group("Hello"), None);
    }

    #[test]
    fn gateway_cases_are_attributed_to_the_parent_side() {
        let cfg = small();
        let run = run_hierarchy(&cfg, 2).unwrap();
        let topo = cfg.topology().unwrap();
        for r in &run.results {
            if r.case.gateway {
                // A gateway link is owned by the shallower (parent-side)
                // domain, never the child.
                let l = topo.graph().link(r.case.link);
                let da = topo.domain_of(l.a());
                let db = topo.domain_of(l.b());
                let owner_level = topo.domains()[r.case.owner.index()].level();
                let other = if r.case.owner == da { db } else { da };
                assert!(owner_level <= topo.domains()[other.index()].level());
            }
        }
    }
}
