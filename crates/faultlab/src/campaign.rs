//! Parallel Monte-Carlo campaign execution.
//!
//! A campaign draws a seeded topology and member set, generates a mixed
//! stream of correlated fault cases, and evaluates every case against both
//! SMRP (local detour) and the SPF baseline (global detour): recovery plans
//! are computed and audited, the message-level simulator measures
//! restoration latency, and each (case, protocol) pair is classified into
//! one [`Outcome`].
//!
//! Evaluation fans out over worker threads with a shared work-stealing
//! index; results are keyed by case id and aggregated in id order, so the
//! campaign output is byte-identical for any `--jobs` value.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use smrp_core::recovery::{self, DetourKind};
use smrp_core::SmrpConfig;
use smrp_metrics::ControlHealth;
use smrp_net::waxman::WaxmanConfig;
use smrp_net::{Graph, NetError, NodeId};
use smrp_proto::{FailureTiming, InjectionTiming, ProtoSession, RecoveryStrategy, TreeProtocol};
use smrp_sim::{ChannelSpec, SimTime};

use crate::audit::{audit_recovery, Violation};
use crate::generate::{generate_mix, FaultCase, GeneratorConfig};

/// The protocol a case was evaluated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProtoKind {
    /// SMRP with local-detour recovery.
    Smrp,
    /// Shortest-path-first baseline with global-detour recovery.
    Spf,
}

impl ProtoKind {
    /// Both protocols, in evaluation order.
    pub const ALL: [ProtoKind; 2] = [ProtoKind::Smrp, ProtoKind::Spf];

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            ProtoKind::Smrp => "smrp",
            ProtoKind::Spf => "spf",
        }
    }
}

impl std::fmt::Display for ProtoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How one (case, protocol) evaluation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Outcome {
    /// The failure never touched the session tree; no member lost service.
    Unaffected,
    /// Every affected member restored service, and every graft was a
    /// fragment-root local detour.
    RestoredLocalDetour,
    /// Every affected member restored service, but not through clean root
    /// grafts: cornered roots delegated to per-member recovery, the global
    /// strategy waited out reconvergence, or a transient repair healed the
    /// outage.
    FellBackGlobal,
    /// Some member could not be restored because no usable route to the
    /// source exists (or the source itself failed) — unrecoverable by any
    /// protocol.
    SourcePartitioned,
    /// A reachable member never regained service within the run: the
    /// failure was not detected or the recovery never completed.
    DetectionMissed,
    /// The invariant auditor rejected the recovery (see the attached
    /// violations — these are protocol bugs, not scenario properties).
    InvariantViolation,
}

impl Outcome {
    /// Every outcome class, in report order.
    pub const ALL: [Outcome; 6] = [
        Outcome::Unaffected,
        Outcome::RestoredLocalDetour,
        Outcome::FellBackGlobal,
        Outcome::SourcePartitioned,
        Outcome::DetectionMissed,
        Outcome::InvariantViolation,
    ];

    /// Stable kebab-case name (used as report keys).
    pub fn name(&self) -> &'static str {
        match self {
            Outcome::Unaffected => "unaffected",
            Outcome::RestoredLocalDetour => "restored-local-detour",
            Outcome::FellBackGlobal => "fell-back-global",
            Outcome::SourcePartitioned => "source-partitioned",
            Outcome::DetectionMissed => "detection-missed",
            Outcome::InvariantViolation => "invariant-violation",
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Knobs of a whole campaign. Serialized verbatim into the report header
/// (minus anything execution-dependent: job count and wall-clock never
/// enter the report, keeping it byte-stable across machines).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Topology size (Waxman unit-square graph).
    pub nodes: usize,
    /// Multicast group size.
    pub group_size: usize,
    /// Waxman `α` (edge-density knob).
    pub alpha: f64,
    /// Number of fault cases to generate and evaluate.
    pub scenarios: usize,
    /// Base RNG seed; topology, member set and every fault case derive
    /// their own sub-seeds from it.
    pub base_seed: u64,
    /// Scenario-generator knobs.
    pub generator: GeneratorConfig,
    /// When the failure is injected, in milliseconds.
    pub fail_at_ms: f64,
    /// Simulation horizon per case, in milliseconds.
    pub run_until_ms: f64,
    /// Unicast reconvergence delay charged to the SPF baseline's global
    /// detour, in milliseconds.
    pub reconvergence_ms: f64,
    /// Ambient control-plane loss applied to every case whose generated
    /// channel is perfect (the `faultlab --loss` knob). `0.0` keeps the
    /// component-failure families lossless; the `UniformLoss`/`GrayLinks`
    /// families always keep their own generated channels.
    pub ambient_loss: f64,
}

impl Default for CampaignConfig {
    /// A paper-scale default: `N = 100`, 30 members, 1000 mixed cases.
    fn default() -> Self {
        CampaignConfig {
            nodes: 100,
            group_size: 30,
            alpha: 0.2,
            scenarios: 1000,
            base_seed: 0x5EED,
            generator: GeneratorConfig::default(),
            fail_at_ms: 100.0,
            run_until_ms: 3000.0,
            reconvergence_ms: 800.0,
            ambient_loss: 0.0,
        }
    }
}

impl CampaignConfig {
    /// Generates the campaign topology (same seeded-Waxman idiom as the
    /// repo's experiment scenarios).
    ///
    /// # Errors
    ///
    /// Propagates generator configuration errors.
    pub fn topology(&self) -> Result<Graph, NetError> {
        Ok(WaxmanConfig::new(self.nodes)
            .alpha(self.alpha)
            .seed(self.base_seed ^ 0x9E37_79B9)
            .generate()?
            .into_graph())
    }

    /// Samples the source and member set for the campaign topology.
    pub fn pick_members(&self, graph: &Graph) -> (NodeId, Vec<NodeId>) {
        let mut rng = SmallRng::seed_from_u64(self.base_seed.wrapping_add(0xA5A5_A5A5));
        let mut ids: Vec<NodeId> = graph.node_ids().collect();
        ids.shuffle(&mut rng);
        let take = self.group_size.min(ids.len() - 1);
        (ids[0], ids[1..=take].to_vec())
    }
}

/// The evaluation of one case against one protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtoOutcome {
    /// The classification.
    pub outcome: Outcome,
    /// Members whose tree path the failure broke.
    pub affected: u32,
    /// Affected members that regained service within the run.
    pub restored: u32,
    /// Restoration latency of each restored member, in milliseconds,
    /// in member-id order.
    pub latencies_ms: Vec<f64>,
    /// Invariant violations the auditor found (normally empty).
    pub violations: Vec<Violation>,
    /// Control-plane health during the run: reliable-layer retransmission
    /// counters plus channel loss/duplication/reordering tallies. All-zero
    /// for lossless cases and for cases short-circuited before simulation.
    pub health: ControlHealth,
}

/// The evaluation of one generated fault case against both protocols.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// The case that was evaluated (id, family, seed, scenario, timing).
    pub case: FaultCase,
    /// SMRP under local-detour recovery.
    pub smrp: ProtoOutcome,
    /// SPF baseline under global-detour recovery.
    pub spf: ProtoOutcome,
}

impl CaseResult {
    /// The evaluation for `proto`.
    pub fn for_proto(&self, proto: ProtoKind) -> &ProtoOutcome {
        match proto {
            ProtoKind::Smrp => &self.smrp,
            ProtoKind::Spf => &self.spf,
        }
    }

    /// Whether either protocol's auditor flagged this case.
    pub fn has_violations(&self) -> bool {
        !self.smrp.violations.is_empty() || !self.spf.violations.is_empty()
    }
}

/// Evaluates one case against one protocol session.
fn evaluate_proto(
    graph: &Graph,
    session: &ProtoSession<'_>,
    cfg: &CampaignConfig,
    case: &FaultCase,
    proto: ProtoKind,
) -> ProtoOutcome {
    let scenario = &case.scenario;
    let source = session.source();
    let (kind, strategy) = match proto {
        ProtoKind::Smrp => (DetourKind::Local, RecoveryStrategy::LocalDetour),
        ProtoKind::Spf => (
            DetourKind::Global,
            RecoveryStrategy::GlobalDetour {
                reconvergence: SimTime::from_ms(cfg.reconvergence_ms),
            },
        ),
    };

    let affected = recovery::affected_members(graph, session.tree(), scenario);
    if affected.is_empty() {
        // Fast path: the failure misses the tree entirely; nothing to
        // recover, nothing to simulate.
        return ProtoOutcome {
            outcome: Outcome::Unaffected,
            affected: 0,
            restored: 0,
            latencies_ms: Vec::new(),
            violations: Vec::new(),
            health: ControlHealth::default(),
        };
    }

    let plans = session.plan_recoveries(scenario, kind);
    let violations = audit_recovery(graph, session.tree(), scenario, &plans);
    if !violations.is_empty() {
        return ProtoOutcome {
            outcome: Outcome::InvariantViolation,
            affected: affected.len() as u32,
            restored: 0,
            latencies_ms: Vec::new(),
            violations,
            health: ControlHealth::default(),
        };
    }

    if !scenario.node_usable(source) {
        // The source itself died: no protocol can restore anything, and
        // there is no data plane worth simulating.
        return ProtoOutcome {
            outcome: Outcome::SourcePartitioned,
            affected: affected.len() as u32,
            restored: 0,
            latencies_ms: Vec::new(),
            violations: Vec::new(),
            health: ControlHealth::default(),
        };
    }

    let timing = if case.timing.is_flapping() {
        InjectionTiming::Flapping {
            fail_at: SimTime::from_ms(cfg.fail_at_ms),
            down: SimTime::from_ms(case.timing.flap_down_ms),
            up: SimTime::from_ms(case.timing.flap_up_ms),
            cycles: case.timing.flap_cycles,
        }
    } else if case.timing.transient {
        InjectionTiming::Once(FailureTiming::transient(
            SimTime::from_ms(cfg.fail_at_ms),
            SimTime::from_ms(cfg.fail_at_ms + case.timing.repair_after_ms),
        ))
    } else {
        InjectionTiming::Once(FailureTiming::persistent(SimTime::from_ms(cfg.fail_at_ms)))
    };
    // Cases with their own degraded channel (UniformLoss/GrayLinks) keep
    // it; everything else picks up the campaign's ambient loss, seeded off
    // the case so no two cases share a loss pattern.
    let channel = if !case.channel.is_perfect() || cfg.ambient_loss <= 0.0 {
        case.channel.clone()
    } else {
        ChannelSpec::uniform_loss(
            cfg.ambient_loss,
            case.seed.wrapping_mul(0xD6E8_FEB8_6659_FD93),
        )
    };
    let report = session.run_failure_spec(
        scenario,
        strategy,
        timing,
        &channel,
        SimTime::from_ms(cfg.run_until_ms),
    );

    let latencies_ms: Vec<f64> = report
        .restorations
        .iter()
        .filter_map(|(_, l)| l.map(SimTime::as_ms))
        .collect();
    let restored = latencies_ms.len() as u32;

    let outcome = if report.all_restored() {
        let clean_local = proto == ProtoKind::Smrp
            && plans.all_root_grafts()
            && plans.unrecoverable.is_empty()
            && !case.timing.heals();
        if clean_local {
            Outcome::RestoredLocalDetour
        } else {
            Outcome::FellBackGlobal
        }
    } else {
        let reach = recovery::reachable_from_source(graph, source, scenario);
        let unrestored_partitioned = report
            .restorations
            .iter()
            .filter(|(_, l)| l.is_none())
            .all(|(m, _)| !scenario.node_usable(*m) || !reach[m.index()]);
        // Transient and flapping outages heal, so an unrestored-but-
        // reachable member under repair is still a detection miss, and a
        // partitioned member that the repair would have reconnected counts
        // as partitioned only if it stayed unrestored to the end of the
        // run — which the simulator already told us.
        if unrestored_partitioned && !case.timing.heals() {
            Outcome::SourcePartitioned
        } else {
            Outcome::DetectionMissed
        }
    };

    ProtoOutcome {
        outcome,
        affected: affected.len() as u32,
        restored,
        latencies_ms,
        violations: Vec::new(),
        health: report.health,
    }
}

/// Evaluates one fault case against both protocol sessions.
pub fn evaluate_case(
    graph: &Graph,
    smrp: &ProtoSession<'_>,
    spf: &ProtoSession<'_>,
    cfg: &CampaignConfig,
    case: &FaultCase,
) -> CaseResult {
    CaseResult {
        case: case.clone(),
        smrp: evaluate_proto(graph, smrp, cfg, case, ProtoKind::Smrp),
        spf: evaluate_proto(graph, spf, cfg, case, ProtoKind::Spf),
    }
}

/// The raw output of a campaign run: one [`CaseResult`] per generated
/// case, in case-id order regardless of scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRun {
    /// The evaluated configuration.
    pub config: CampaignConfig,
    /// Per-case results, sorted by case id.
    pub results: Vec<CaseResult>,
}

/// Runs a full campaign on `jobs` worker threads.
///
/// Determinism contract: the result depends only on `cfg` — cases are
/// generated up front from the base seed, workers pull cases off a shared
/// atomic index, and results are reassembled in case-id order, so any job
/// count (including 1) produces an identical [`CampaignRun`].
///
/// # Errors
///
/// Propagates topology-generation and tree-construction failures.
///
/// # Panics
///
/// Panics if a worker thread panics (a bug in the evaluator itself).
pub fn run_campaign(cfg: &CampaignConfig, jobs: usize) -> Result<CampaignRun, NetError> {
    let jobs = jobs.max(1);
    let graph = cfg.topology()?;
    let (source, members) = cfg.pick_members(&graph);
    // Generated topologies are connected and the member picker only hands
    // out existing nodes, so tree construction cannot fail here.
    let smrp = ProtoSession::build(
        &graph,
        source,
        &members,
        TreeProtocol::Smrp(SmrpConfig::default()),
    )
    .expect("SMRP session builds on a connected topology");
    let spf = ProtoSession::build(&graph, source, &members, TreeProtocol::Spf)
        .expect("SPF session builds on a connected topology");

    let cases = generate_mix(&graph, &cfg.generator, cfg.scenarios, cfg.base_seed);

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<CaseResult>> = Mutex::new(Vec::with_capacity(cases.len()));
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(cases.len().max(1)) {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(case) = cases.get(i) else { break };
                    local.push(evaluate_case(&graph, &smrp, &spf, cfg, case));
                }
                results.lock().expect("no poisoned workers").extend(local);
            });
        }
    });

    let mut results = results.into_inner().expect("workers joined");
    results.sort_by_key(|r| r.case.id);
    Ok(CampaignRun {
        config: cfg.clone(),
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::FaultFamily;

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            nodes: 30,
            group_size: 8,
            alpha: 0.3,
            scenarios: 24,
            base_seed: 42,
            run_until_ms: 2000.0,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_classifies_every_case() {
        let run = run_campaign(&small_config(), 2).unwrap();
        assert_eq!(run.results.len(), 24);
        for (i, r) in run.results.iter().enumerate() {
            assert_eq!(r.case.id as usize, i);
            // Every evaluation lands in exactly one class, and restored
            // counts stay within affected counts.
            for proto in ProtoKind::ALL {
                let o = r.for_proto(proto);
                assert!(o.restored <= o.affected);
                assert_eq!(o.restored as usize, o.latencies_ms.len());
                if o.outcome == Outcome::Unaffected {
                    assert_eq!(o.affected, 0);
                }
            }
        }
    }

    #[test]
    fn campaign_has_no_invariant_violations() {
        let run = run_campaign(&small_config(), 2).unwrap();
        for r in &run.results {
            assert!(!r.has_violations(), "case {}: {:?}", r.case.id, r);
        }
    }

    #[test]
    fn jobs_do_not_change_results() {
        let cfg = small_config();
        let a = run_campaign(&cfg, 1).unwrap();
        let b = run_campaign(&cfg, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_link_cut_on_figure1_restores_locally() {
        // A campaign over the 5-node paper graph would be noise; instead
        // check the classifier directly on the canonical Figure 1 cut.
        let (graph, nodes) = smrp_core::paper::figure1_graph();
        let smrp = ProtoSession::build(
            &graph,
            nodes.s,
            &[nodes.c, nodes.d],
            TreeProtocol::Smrp(SmrpConfig::default()),
        )
        .unwrap();
        let spf =
            ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
        let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
        let cfg = CampaignConfig::default();
        let case = FaultCase {
            id: 0,
            family: FaultFamily::KLink,
            seed: 1,
            scenario: smrp_net::FailureScenario::link(l_ad),
            timing: crate::generate::Timing::persistent(),
            channel: smrp_sim::ChannelSpec::perfect(),
        };
        let result = evaluate_case(&graph, &smrp, &spf, &cfg, &case);
        assert_eq!(result.smrp.outcome, Outcome::RestoredLocalDetour);
        assert_eq!(result.spf.outcome, Outcome::FellBackGlobal);
        assert!(result.smrp.latencies_ms.iter().all(|&l| l > 0.0));
        // Local detour beats waiting out reconvergence.
        let s_max = result.smrp.latencies_ms.iter().cloned().fold(0.0, f64::max);
        let g_min = result
            .spf
            .latencies_ms
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min);
        assert!(s_max < g_min, "smrp {s_max}ms vs spf {g_min}ms");
    }

    #[test]
    fn source_failure_is_partitioned_for_both_protocols() {
        let (graph, nodes) = smrp_core::paper::figure1_graph();
        let smrp = ProtoSession::build(
            &graph,
            nodes.s,
            &[nodes.c, nodes.d],
            TreeProtocol::Smrp(SmrpConfig::default()),
        )
        .unwrap();
        let spf =
            ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
        let case = FaultCase {
            id: 0,
            family: FaultFamily::KNode,
            seed: 1,
            scenario: smrp_net::FailureScenario::node(nodes.s),
            timing: crate::generate::Timing::persistent(),
            channel: smrp_sim::ChannelSpec::perfect(),
        };
        let result = evaluate_case(&graph, &smrp, &spf, &CampaignConfig::default(), &case);
        assert_eq!(result.smrp.outcome, Outcome::SourcePartitioned);
        assert_eq!(result.spf.outcome, Outcome::SourcePartitioned);
    }
}
