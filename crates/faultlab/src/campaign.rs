//! Parallel Monte-Carlo campaign execution.
//!
//! A campaign draws a seeded topology and one or more member sets (one
//! multicast session per group), generates a mixed stream of correlated
//! fault cases, and evaluates every case against both SMRP (local detour)
//! and the SPF baseline (global detour): recovery plans are computed and
//! audited per group, the message-level simulator runs all groups over
//! the shared substrate and measures restoration latency, and each
//! (case, protocol) pair is classified into one aggregate [`Outcome`]
//! plus one [`GroupOutcome`] per session.
//!
//! Evaluation fans out over worker threads with a shared work-stealing
//! index at (case, protocol) granularity — groups within a scenario share
//! one event queue (they contend for the same links), so the protocol run
//! is the finest unit that can move between threads without changing the
//! physics. Results are keyed by (case id, protocol) and reassembled in
//! that order, so the campaign output is byte-identical for any `--jobs`
//! value.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use smrp_core::recovery::{self, DetourKind};
use smrp_core::SmrpConfig;
use smrp_metrics::{ControlHealth, ProtectionHealth};
use smrp_net::waxman::WaxmanConfig;
use smrp_net::{Graph, GroupId, NetError, NodeId};
use smrp_proto::{
    ControlCounters, FailureTiming, InjectionTiming, MultiSession, ProtoSession, RecoveryPlans,
    RecoveryStrategy, TreeProtocol,
};
use smrp_sim::{ChannelSpec, SimTime, TimerBackend};

use crate::audit::{audit_recovery, Violation};
use crate::generate::{generate_mix, FaultCase, GeneratorConfig};

/// The protocol a case was evaluated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProtoKind {
    /// SMRP with local-detour recovery.
    Smrp,
    /// Shortest-path-first baseline with global-detour recovery.
    Spf,
}

impl ProtoKind {
    /// Both protocols, in evaluation order.
    pub const ALL: [ProtoKind; 2] = [ProtoKind::Smrp, ProtoKind::Spf];

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            ProtoKind::Smrp => "smrp",
            ProtoKind::Spf => "spf",
        }
    }
}

impl std::fmt::Display for ProtoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How one (case, protocol) evaluation ended.
///
/// Variants are declared in ascending *severity*, and the derived `Ord`
/// follows declaration order: multi-group evaluations aggregate per-group
/// outcomes by taking the maximum, so a case reads as its worst group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Outcome {
    /// The failure never touched the session tree; no member lost service.
    Unaffected,
    /// Every affected member restored service, and every graft was a
    /// fragment-root local detour.
    RestoredLocalDetour,
    /// Every affected member restored service, but at least one cached
    /// plan was first discarded as stale (its path crossed a component
    /// presumed dead) and recovery re-planned around it. Full restoration
    /// after a discard is the protection plane working as designed — a
    /// *Restored* class, not a failure — but it is reported separately
    /// because the discard means the precomputed plan did not survive
    /// contact with the actual failure.
    RestoredAfterReplan,
    /// Every affected member restored service, but not through clean root
    /// grafts: cornered roots delegated to per-member recovery, the global
    /// strategy waited out reconvergence, or a transient repair healed the
    /// outage.
    FellBackGlobal,
    /// Some member could not be restored because no usable route to the
    /// source exists (or the source itself failed) — unrecoverable by any
    /// protocol.
    SourcePartitioned,
    /// A reachable member never regained service within the run: the
    /// failure was not detected or the recovery never completed.
    DetectionMissed,
    /// The invariant auditor rejected the recovery (see the attached
    /// violations — these are protocol bugs, not scenario properties).
    InvariantViolation,
}

impl Outcome {
    /// Every outcome class, in report order.
    pub const ALL: [Outcome; 7] = [
        Outcome::Unaffected,
        Outcome::RestoredLocalDetour,
        Outcome::RestoredAfterReplan,
        Outcome::FellBackGlobal,
        Outcome::SourcePartitioned,
        Outcome::DetectionMissed,
        Outcome::InvariantViolation,
    ];

    /// Stable kebab-case name (used as report keys).
    pub fn name(&self) -> &'static str {
        match self {
            Outcome::Unaffected => "unaffected",
            Outcome::RestoredLocalDetour => "restored-local-detour",
            Outcome::RestoredAfterReplan => "restored-after-replan",
            Outcome::FellBackGlobal => "fell-back-global",
            Outcome::SourcePartitioned => "source-partitioned",
            Outcome::DetectionMissed => "detection-missed",
            Outcome::InvariantViolation => "invariant-violation",
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Knobs of a whole campaign. Serialized verbatim into the report header
/// (minus anything execution-dependent: job count and wall-clock never
/// enter the report, keeping it byte-stable across machines).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Topology size (Waxman unit-square graph).
    pub nodes: usize,
    /// Multicast group size.
    pub group_size: usize,
    /// Number of concurrent multicast sessions sharing the topology (the
    /// `faultlab --groups` knob). Each group gets its own seeded source
    /// and member set and its own SMRP/SPF tree; every generated failure
    /// is injected once against all of them.
    pub groups: usize,
    /// Waxman `α` (edge-density knob).
    pub alpha: f64,
    /// Number of fault cases to generate and evaluate.
    pub scenarios: usize,
    /// Base RNG seed; topology, member set and every fault case derive
    /// their own sub-seeds from it.
    pub base_seed: u64,
    /// Scenario-generator knobs.
    pub generator: GeneratorConfig,
    /// When the failure is injected, in milliseconds.
    pub fail_at_ms: f64,
    /// Simulation horizon per case, in milliseconds.
    pub run_until_ms: f64,
    /// Unicast reconvergence delay charged to the SPF baseline's global
    /// detour, in milliseconds.
    pub reconvergence_ms: f64,
    /// Ambient control-plane loss applied to every case whose generated
    /// channel is perfect (the `faultlab --loss` knob). `0.0` keeps the
    /// component-failure families lossless; the `UniformLoss`/`GrayLinks`
    /// families always keep their own generated channels.
    pub ambient_loss: f64,
}

impl Default for CampaignConfig {
    /// A paper-scale default: `N = 100`, 30 members, one session, 1000
    /// mixed cases.
    fn default() -> Self {
        CampaignConfig {
            nodes: 100,
            group_size: 30,
            groups: 1,
            alpha: 0.2,
            scenarios: 1000,
            base_seed: 0x5EED,
            generator: GeneratorConfig::default(),
            fail_at_ms: 100.0,
            run_until_ms: 3000.0,
            reconvergence_ms: 800.0,
            ambient_loss: 0.0,
        }
    }
}

impl CampaignConfig {
    /// Generates the campaign topology (same seeded-Waxman idiom as the
    /// repo's experiment scenarios).
    ///
    /// # Errors
    ///
    /// Propagates generator configuration errors.
    pub fn topology(&self) -> Result<Graph, NetError> {
        Ok(WaxmanConfig::new(self.nodes)
            .alpha(self.alpha)
            .seed(self.base_seed ^ 0x9E37_79B9)
            .generate()?
            .into_graph())
    }

    /// Samples the source and member set of group 0 — kept as the
    /// single-session entry point so old campaign seeds reproduce.
    pub fn pick_members(&self, graph: &Graph) -> (NodeId, Vec<NodeId>) {
        self.pick_group_members(graph, 0)
    }

    /// Samples the source and member set for one group. Group 0 draws
    /// from the same sub-seed `pick_members` always used, so a
    /// `groups = 1` campaign is byte-identical to a pre-multi-session
    /// one; higher groups perturb the seed with a splitmix-style odd
    /// constant for independent draws.
    pub fn pick_group_members(&self, graph: &Graph, group: usize) -> (NodeId, Vec<NodeId>) {
        let seed = self
            .base_seed
            .wrapping_add(0xA5A5_A5A5)
            .wrapping_add((group as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ids: Vec<NodeId> = graph.node_ids().collect();
        ids.shuffle(&mut rng);
        let take = self.group_size.min(ids.len() - 1);
        (ids[0], ids[1..=take].to_vec())
    }
}

/// One group's slice of a (case, protocol) evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupOutcome {
    /// The group.
    pub group: GroupId,
    /// This group's classification.
    pub outcome: Outcome,
    /// Members of this group whose tree path the failure broke.
    pub affected: u32,
    /// Affected members of this group that regained service.
    pub restored: u32,
    /// Restoration latencies of this group's restored members, in
    /// milliseconds, in member order.
    pub latencies_ms: Vec<f64>,
    /// Invariant violations the auditor found in this group's recovery.
    pub violations: Vec<Violation>,
    /// Control messages this group's router lanes sent, by type — the
    /// per-group control overhead of sharing the substrate. All-zero when
    /// the case was short-circuited before simulation.
    pub control: ControlCounters,
    /// Protection-plane counters of this group's lanes: plans held,
    /// cached-plan activations, stale discards. All-zero for purely
    /// reactive runs that never touched a plan cache.
    pub protection: ProtectionHealth,
}

/// The evaluation of one case against one protocol — the aggregate over
/// every hosted group plus one [`GroupOutcome`] slice per group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtoOutcome {
    /// The aggregate classification: the worst (maximum-severity) group
    /// outcome. For single-session campaigns this is just the outcome.
    pub outcome: Outcome,
    /// Members whose tree path the failure broke, summed over groups.
    pub affected: u32,
    /// Affected members that regained service within the run, summed
    /// over groups.
    pub restored: u32,
    /// Restoration latency of each restored member, in milliseconds,
    /// in group order then member order.
    pub latencies_ms: Vec<f64>,
    /// Invariant violations the auditor found in any group (normally
    /// empty), in group order.
    pub violations: Vec<Violation>,
    /// Control-plane health during the run: every group's reliable-layer
    /// counters plus channel loss/duplication/reordering tallies (which
    /// are per *link*, so they only exist at this aggregate level).
    /// All-zero for cases short-circuited before simulation.
    pub health: ControlHealth,
    /// Protection-plane counters summed over groups.
    pub protection: ProtectionHealth,
    /// Per-group slices, in group order.
    pub groups: Vec<GroupOutcome>,
}

/// The evaluation of one generated fault case against both protocols.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseResult {
    /// The case that was evaluated (id, family, seed, scenario, timing).
    pub case: FaultCase,
    /// SMRP under local-detour recovery.
    pub smrp: ProtoOutcome,
    /// SPF baseline under global-detour recovery.
    pub spf: ProtoOutcome,
}

impl CaseResult {
    /// The evaluation for `proto`.
    pub fn for_proto(&self, proto: ProtoKind) -> &ProtoOutcome {
        match proto {
            ProtoKind::Smrp => &self.smrp,
            ProtoKind::Spf => &self.spf,
        }
    }

    /// Whether either protocol's auditor flagged this case.
    pub fn has_violations(&self) -> bool {
        !self.smrp.violations.is_empty() || !self.spf.violations.is_empty()
    }
}

/// Pre-simulation analysis of one group: affected set, recovery plans,
/// audit verdict, and — when the group cannot possibly need the
/// simulator — its already-decided outcome.
struct GroupPre {
    affected: Vec<NodeId>,
    plans: Option<RecoveryPlans>,
    violations: Vec<Violation>,
    fixed: Option<Outcome>,
}

/// Evaluates one case against one protocol's multi-session: plans and
/// audits every group, runs the shared simulation once if any group
/// needs it, and classifies each group independently before rolling up
/// the aggregate.
fn evaluate_proto(
    graph: &Graph,
    multi: &MultiSession<'_>,
    cfg: &CampaignConfig,
    case: &FaultCase,
    proto: ProtoKind,
) -> ProtoOutcome {
    let scenario = &case.scenario;
    let (kind, strategy) = match proto {
        ProtoKind::Smrp => (DetourKind::Local, RecoveryStrategy::LocalDetour),
        ProtoKind::Spf => (
            DetourKind::Global,
            RecoveryStrategy::GlobalDetour {
                reconvergence: SimTime::from_ms(cfg.reconvergence_ms),
            },
        ),
    };

    let pre: Vec<GroupPre> = multi
        .groups()
        .map(|g| {
            let session = multi.session(g);
            let affected = recovery::affected_members(graph, session.tree(), scenario);
            if affected.is_empty() {
                // The failure misses this group's tree entirely; nothing
                // to recover for it.
                return GroupPre {
                    affected,
                    plans: None,
                    violations: Vec::new(),
                    fixed: Some(Outcome::Unaffected),
                };
            }
            let plans = session.plan_recoveries(scenario, kind);
            let violations = audit_recovery(graph, session.tree(), scenario, &plans);
            let fixed = if !violations.is_empty() {
                Some(Outcome::InvariantViolation)
            } else if !scenario.node_usable(session.source()) {
                // This group's source died: no protocol can restore it.
                Some(Outcome::SourcePartitioned)
            } else {
                None
            };
            GroupPre {
                affected,
                plans: Some(plans),
                violations,
                fixed,
            }
        })
        .collect();

    // Fast path: when every group's verdict is already decided (missed
    // tree, failed audit, or dead source) there is no data plane worth
    // simulating — the single-session campaign's short circuits, lifted
    // to the aggregate level.
    let report = if pre.iter().any(|p| p.fixed.is_none()) {
        let timing = if case.timing.is_flapping() {
            InjectionTiming::Flapping {
                fail_at: SimTime::from_ms(cfg.fail_at_ms),
                down: SimTime::from_ms(case.timing.flap_down_ms),
                up: SimTime::from_ms(case.timing.flap_up_ms),
                cycles: case.timing.flap_cycles,
            }
        } else if case.timing.transient {
            InjectionTiming::Once(FailureTiming::transient(
                SimTime::from_ms(cfg.fail_at_ms),
                SimTime::from_ms(cfg.fail_at_ms + case.timing.repair_after_ms),
            ))
        } else {
            InjectionTiming::Once(FailureTiming::persistent(SimTime::from_ms(cfg.fail_at_ms)))
        };
        // Cases with their own degraded channel (UniformLoss/GrayLinks)
        // keep it; everything else picks up the campaign's ambient loss,
        // seeded off the case so no two cases share a loss pattern.
        let channel = if !case.channel.is_perfect() || cfg.ambient_loss <= 0.0 {
            case.channel.clone()
        } else {
            ChannelSpec::uniform_loss(
                cfg.ambient_loss,
                case.seed.wrapping_mul(0xD6E8_FEB8_6659_FD93),
            )
        };
        Some(multi.run_failure_spec(
            scenario,
            strategy,
            timing,
            &channel,
            SimTime::from_ms(cfg.run_until_ms),
        ))
    } else {
        None
    };

    let mut groups = Vec::with_capacity(pre.len());
    for (g, p) in multi.groups().zip(&pre) {
        let slice = report.as_ref().map(|r| &r.groups[g.index()]);
        // Lanes of pre-decided groups still ran if any *other* group
        // forced a simulation; report their control spend honestly.
        let control = slice.map(|s| s.control).unwrap_or_default();
        let mut protection = ProtectionHealth::default();
        if let Some(s) = slice {
            protection.absorb(
                s.protection.plans_held,
                s.protection.activations,
                s.protection.stale_discards,
            );
        }
        if let Some(outcome) = p.fixed {
            groups.push(GroupOutcome {
                group: g,
                outcome,
                affected: p.affected.len() as u32,
                restored: 0,
                latencies_ms: Vec::new(),
                violations: p.violations.clone(),
                control,
                protection,
            });
            continue;
        }
        let slice = slice.expect("simulation ran for undecided groups");
        let plans = p.plans.as_ref().expect("affected groups were planned");
        let latencies_ms = slice.latencies_ms();
        let restored = latencies_ms.len() as u32;
        let outcome = if slice.all_restored() {
            let clean_local = proto == ProtoKind::Smrp
                && plans.all_root_grafts()
                && plans.unrecoverable.is_empty()
                && !case.timing.heals();
            if protection.stale_discards > 0 {
                // At least one cached plan was discarded as stale and the
                // group still restored fully: the re-plan worked. The
                // discard disqualifies "clean" either way, so this takes
                // precedence over the local/global split.
                Outcome::RestoredAfterReplan
            } else if clean_local {
                Outcome::RestoredLocalDetour
            } else {
                Outcome::FellBackGlobal
            }
        } else {
            let source = multi.session(g).source();
            let reach = recovery::reachable_from_source(graph, source, scenario);
            let unrestored_partitioned = slice
                .restorations
                .iter()
                .filter(|(_, l)| l.is_none())
                .all(|(m, _)| !scenario.node_usable(*m) || !reach[m.index()]);
            // Transient and flapping outages heal, so an unrestored-but-
            // reachable member under repair is still a detection miss,
            // and a partitioned member that the repair would have
            // reconnected counts as partitioned only if it stayed
            // unrestored to the end of the run — which the simulator
            // already told us.
            if unrestored_partitioned && !case.timing.heals() {
                Outcome::SourcePartitioned
            } else {
                Outcome::DetectionMissed
            }
        };
        groups.push(GroupOutcome {
            group: g,
            outcome,
            affected: p.affected.len() as u32,
            restored,
            latencies_ms,
            violations: Vec::new(),
            control,
            protection,
        });
    }

    let outcome = groups
        .iter()
        .map(|g| g.outcome)
        .max()
        .unwrap_or(Outcome::Unaffected);
    ProtoOutcome {
        outcome,
        affected: groups.iter().map(|g| g.affected).sum(),
        restored: groups.iter().map(|g| g.restored).sum(),
        latencies_ms: groups
            .iter()
            .flat_map(|g| g.latencies_ms.iter().copied())
            .collect(),
        violations: groups
            .iter()
            .flat_map(|g| g.violations.iter().cloned())
            .collect(),
        health: report.map(|r| r.health).unwrap_or_default(),
        protection: ProtectionHealth::merged(groups.iter().map(|g| &g.protection)),
        groups,
    }
}

/// Evaluates one fault case against both protocols' multi-sessions.
pub fn evaluate_case(
    graph: &Graph,
    smrp: &MultiSession<'_>,
    spf: &MultiSession<'_>,
    cfg: &CampaignConfig,
    case: &FaultCase,
) -> CaseResult {
    CaseResult {
        case: case.clone(),
        smrp: evaluate_proto(graph, smrp, cfg, case, ProtoKind::Smrp),
        spf: evaluate_proto(graph, spf, cfg, case, ProtoKind::Spf),
    }
}

/// The raw output of a campaign run: one [`CaseResult`] per generated
/// case, in case-id order regardless of scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRun {
    /// The evaluated configuration.
    pub config: CampaignConfig,
    /// Per-case results, sorted by case id.
    pub results: Vec<CaseResult>,
}

/// Runs a full campaign on `jobs` worker threads.
///
/// Determinism contract: the result depends only on `cfg` — cases are
/// generated up front from the base seed, workers pull cases off a shared
/// atomic index, and results are reassembled in case-id order, so any job
/// count (including 1) produces an identical [`CampaignRun`].
///
/// # Errors
///
/// Propagates topology-generation and tree-construction failures.
///
/// # Panics
///
/// Panics if a worker thread panics (a bug in the evaluator itself).
pub fn run_campaign(cfg: &CampaignConfig, jobs: usize) -> Result<CampaignRun, NetError> {
    run_campaign_with_backend(cfg, jobs, TimerBackend::default())
}

/// [`run_campaign`] with an explicit engine timer backend.
///
/// The backend is an execution detail, like the job count: it never enters
/// the report, and the production wheel and the reference heap are
/// contractually byte-identical (the differential tests in
/// `tests/backend_equivalence.rs` hold them to it).
///
/// # Errors
///
/// Propagates topology-generation and tree-construction failures.
///
/// # Panics
///
/// Panics if a worker thread panics (a bug in the evaluator itself).
pub fn run_campaign_with_backend(
    cfg: &CampaignConfig,
    jobs: usize,
    backend: TimerBackend,
) -> Result<CampaignRun, NetError> {
    let jobs = jobs.max(1);
    let graph = cfg.topology()?;
    // Generated topologies are connected and the member picker only hands
    // out existing nodes, so tree construction cannot fail here.
    let mut smrp_sessions = Vec::with_capacity(cfg.groups.max(1));
    let mut spf_sessions = Vec::with_capacity(cfg.groups.max(1));
    for g in 0..cfg.groups.max(1) {
        let (source, members) = cfg.pick_group_members(&graph, g);
        smrp_sessions.push(
            ProtoSession::build(
                &graph,
                source,
                &members,
                TreeProtocol::Smrp(SmrpConfig::default()),
            )
            .expect("SMRP session builds on a connected topology"),
        );
        spf_sessions.push(
            ProtoSession::build(&graph, source, &members, TreeProtocol::Spf)
                .expect("SPF session builds on a connected topology"),
        );
    }
    let mut smrp = MultiSession::from_sessions(smrp_sessions);
    let mut spf = MultiSession::from_sessions(spf_sessions);
    smrp.set_timer_backend(backend);
    spf.set_timer_backend(backend);

    let cases = generate_mix(&graph, &cfg.generator, cfg.scenarios, cfg.base_seed);

    // One work item per (case, protocol): groups inside a case share one
    // event queue so the protocol run is the finest deterministic unit.
    let total = cases.len() * ProtoKind::ALL.len();
    let next = AtomicUsize::new(0);
    let evaluated: Mutex<Vec<(usize, ProtoOutcome)>> = Mutex::new(Vec::with_capacity(total));
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(total.max(1)) {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let case = &cases[i / ProtoKind::ALL.len()];
                    let proto = ProtoKind::ALL[i % ProtoKind::ALL.len()];
                    let multi = match proto {
                        ProtoKind::Smrp => &smrp,
                        ProtoKind::Spf => &spf,
                    };
                    local.push((i, evaluate_proto(&graph, multi, cfg, case, proto)));
                }
                evaluated.lock().expect("no poisoned workers").extend(local);
            });
        }
    });

    // Reassemble by work-item index: scheduling order never leaks into
    // the report.
    let mut slots: Vec<Option<ProtoOutcome>> = vec![None; total];
    for (i, outcome) in evaluated.into_inner().expect("workers joined") {
        slots[i] = Some(outcome);
    }
    let results = cases
        .into_iter()
        .enumerate()
        .map(|(ci, case)| CaseResult {
            case,
            smrp: slots[ci * 2].take().expect("every work item was evaluated"),
            spf: slots[ci * 2 + 1]
                .take()
                .expect("every work item was evaluated"),
        })
        .collect();
    Ok(CampaignRun {
        config: cfg.clone(),
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::FaultFamily;

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            nodes: 30,
            group_size: 8,
            alpha: 0.3,
            scenarios: 24,
            base_seed: 42,
            run_until_ms: 2000.0,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_classifies_every_case() {
        let run = run_campaign(&small_config(), 2).unwrap();
        assert_eq!(run.results.len(), 24);
        for (i, r) in run.results.iter().enumerate() {
            assert_eq!(r.case.id as usize, i);
            // Every evaluation lands in exactly one class, and restored
            // counts stay within affected counts.
            for proto in ProtoKind::ALL {
                let o = r.for_proto(proto);
                assert!(o.restored <= o.affected);
                assert_eq!(o.restored as usize, o.latencies_ms.len());
                if o.outcome == Outcome::Unaffected {
                    assert_eq!(o.affected, 0);
                }
                // The aggregate is always consistent with its slices.
                assert_eq!(o.groups.len(), 1);
                assert_eq!(o.groups[0].outcome, o.outcome);
                assert_eq!(o.groups[0].affected, o.affected);
                assert_eq!(o.groups[0].latencies_ms, o.latencies_ms);
            }
        }
    }

    #[test]
    fn multi_group_aggregates_are_consistent() {
        let cfg = CampaignConfig {
            groups: 3,
            scenarios: 12,
            ..small_config()
        };
        let run = run_campaign(&cfg, 2).unwrap();
        assert_eq!(run.results.len(), 12);
        for r in &run.results {
            for proto in ProtoKind::ALL {
                let o = r.for_proto(proto);
                assert_eq!(o.groups.len(), 3);
                assert_eq!(
                    o.outcome,
                    o.groups.iter().map(|g| g.outcome).max().unwrap(),
                    "aggregate outcome is the worst group"
                );
                assert_eq!(o.affected, o.groups.iter().map(|g| g.affected).sum::<u32>());
                assert_eq!(o.restored, o.groups.iter().map(|g| g.restored).sum::<u32>());
                assert_eq!(
                    o.latencies_ms.len(),
                    o.groups.iter().map(|g| g.latencies_ms.len()).sum::<usize>()
                );
            }
        }
    }

    #[test]
    fn groups_draw_distinct_member_sets() {
        let cfg = small_config();
        let graph = cfg.topology().unwrap();
        let (s0, m0) = cfg.pick_group_members(&graph, 0);
        let (s1, m1) = cfg.pick_group_members(&graph, 1);
        // Group 0 must reproduce the legacy single-session draw.
        assert_eq!((s0, m0.clone()), cfg.pick_members(&graph));
        assert!(s0 != s1 || m0 != m1, "groups must not share a seed");
    }

    #[test]
    fn campaign_has_no_invariant_violations() {
        let run = run_campaign(&small_config(), 2).unwrap();
        for r in &run.results {
            assert!(!r.has_violations(), "case {}: {:?}", r.case.id, r);
        }
    }

    #[test]
    fn jobs_do_not_change_results() {
        let cfg = small_config();
        let a = run_campaign(&cfg, 1).unwrap();
        let b = run_campaign(&cfg, 4).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_link_cut_on_figure1_restores_locally() {
        // A campaign over the 5-node paper graph would be noise; instead
        // check the classifier directly on the canonical Figure 1 cut.
        let (graph, nodes) = smrp_core::paper::figure1_graph();
        let smrp = MultiSession::from_sessions(vec![ProtoSession::build(
            &graph,
            nodes.s,
            &[nodes.c, nodes.d],
            TreeProtocol::Smrp(SmrpConfig::default()),
        )
        .unwrap()]);
        let spf = MultiSession::from_sessions(vec![ProtoSession::build(
            &graph,
            nodes.s,
            &[nodes.c, nodes.d],
            TreeProtocol::Spf,
        )
        .unwrap()]);
        let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
        let cfg = CampaignConfig::default();
        let case = FaultCase {
            id: 0,
            family: FaultFamily::KLink,
            seed: 1,
            scenario: smrp_net::FailureScenario::link(l_ad),
            timing: crate::generate::Timing::persistent(),
            channel: smrp_sim::ChannelSpec::perfect(),
        };
        let result = evaluate_case(&graph, &smrp, &spf, &cfg, &case);
        assert_eq!(result.smrp.outcome, Outcome::RestoredLocalDetour);
        assert_eq!(result.spf.outcome, Outcome::FellBackGlobal);
        assert!(result.smrp.latencies_ms.iter().all(|&l| l > 0.0));
        // Local detour beats waiting out reconvergence.
        let s_max = result.smrp.latencies_ms.iter().cloned().fold(0.0, f64::max);
        let g_min = result
            .spf
            .latencies_ms
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min);
        assert!(s_max < g_min, "smrp {s_max}ms vs spf {g_min}ms");
    }

    #[test]
    fn source_failure_is_partitioned_for_both_protocols() {
        let (graph, nodes) = smrp_core::paper::figure1_graph();
        let smrp = MultiSession::from_sessions(vec![ProtoSession::build(
            &graph,
            nodes.s,
            &[nodes.c, nodes.d],
            TreeProtocol::Smrp(SmrpConfig::default()),
        )
        .unwrap()]);
        let spf = MultiSession::from_sessions(vec![ProtoSession::build(
            &graph,
            nodes.s,
            &[nodes.c, nodes.d],
            TreeProtocol::Spf,
        )
        .unwrap()]);
        let case = FaultCase {
            id: 0,
            family: FaultFamily::KNode,
            seed: 1,
            scenario: smrp_net::FailureScenario::node(nodes.s),
            timing: crate::generate::Timing::persistent(),
            channel: smrp_sim::ChannelSpec::perfect(),
        };
        let result = evaluate_case(&graph, &smrp, &spf, &CampaignConfig::default(), &case);
        assert_eq!(result.smrp.outcome, Outcome::SourcePartitioned);
        assert_eq!(result.spf.outcome, Outcome::SourcePartitioned);
    }
}
