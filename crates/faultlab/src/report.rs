//! Campaign reports: aggregation, reproducers and stable JSON output.
//!
//! The report is a pure function of the [`CampaignRun`] — it echoes the
//! configuration, tabulates outcomes per (family × protocol), summarises
//! the restoration-latency distribution per protocol, and attaches a
//! minimal reproducer (case seed + scenario JSON) for every invariant
//! violation. Job counts and wall-clock never enter the report, so the
//! serialized form is byte-identical across machines and `--jobs` values.

use serde::{Deserialize, Serialize};
use smrp_metrics::{ControlHealth, ProtectionHealth, Stats};
use smrp_net::GroupId;

use crate::audit::Violation;
use crate::campaign::{CampaignConfig, CampaignRun, CaseResult, Outcome, ProtoKind};
use crate::generate::{FaultCase, FaultFamily};

/// Outcome counts of one (family, protocol) cell.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// The fault family of this cell.
    pub family: FaultFamily,
    /// The protocol of this cell.
    pub proto: ProtoKind,
    /// Cases whose failure missed the tree.
    pub unaffected: u32,
    /// Cases fully restored through clean fragment-root local detours.
    pub restored_local_detour: u32,
    /// Cases fully restored after at least one stale cached plan was
    /// discarded and recovery re-planned around it.
    pub restored_after_replan: u32,
    /// Cases fully restored some other way (global detour, per-member
    /// fallback, transient repair).
    pub fell_back_global: u32,
    /// Cases with members no protocol could restore.
    pub source_partitioned: u32,
    /// Cases where a reachable member never regained service.
    pub detection_missed: u32,
    /// Cases the invariant auditor rejected.
    pub invariant_violation: u32,
}

impl OutcomeCounts {
    fn new(family: FaultFamily, proto: ProtoKind) -> Self {
        OutcomeCounts {
            family,
            proto,
            unaffected: 0,
            restored_local_detour: 0,
            restored_after_replan: 0,
            fell_back_global: 0,
            source_partitioned: 0,
            detection_missed: 0,
            invariant_violation: 0,
        }
    }

    fn bump(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Unaffected => self.unaffected += 1,
            Outcome::RestoredLocalDetour => self.restored_local_detour += 1,
            Outcome::RestoredAfterReplan => self.restored_after_replan += 1,
            Outcome::FellBackGlobal => self.fell_back_global += 1,
            Outcome::SourcePartitioned => self.source_partitioned += 1,
            Outcome::DetectionMissed => self.detection_missed += 1,
            Outcome::InvariantViolation => self.invariant_violation += 1,
        }
    }

    /// Total cases in this cell.
    pub fn total(&self) -> u32 {
        self.unaffected
            + self.restored_local_detour
            + self.restored_after_replan
            + self.fell_back_global
            + self.source_partitioned
            + self.detection_missed
            + self.invariant_violation
    }
}

/// Five-number summary of one protocol's restoration-latency distribution
/// (milliseconds, restored members only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// The protocol.
    pub proto: ProtoKind,
    /// Restored members across all cases.
    pub count: u64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// Worst restoration.
    pub max_ms: f64,
}

impl LatencySummary {
    /// Summarises a latency sample (empty samples yield all-zero rows).
    pub fn from_samples(proto: ProtoKind, mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let mut stats = Stats::new();
        for &s in &samples {
            stats.push(s);
        }
        let q = |p: f64| -> f64 {
            if samples.is_empty() {
                return 0.0;
            }
            let idx = ((samples.len() - 1) as f64 * p).round() as usize;
            samples[idx]
        };
        LatencySummary {
            proto,
            count: stats.count(),
            mean_ms: if stats.count() == 0 {
                0.0
            } else {
                stats.mean()
            },
            p50_ms: q(0.5),
            p95_ms: q(0.95),
            max_ms: samples.last().copied().unwrap_or(0.0),
        }
    }
}

/// Aggregate control-plane health of one protocol across the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthSummary {
    /// The protocol.
    pub proto: ProtoKind,
    /// Reliable-layer and channel counters summed over every case.
    pub health: ControlHealth,
    /// Retry-budget exhaustions from cases *without* gray-link overrides,
    /// excluding cases classified [`Outcome::RestoredAfterReplan`]. Gray
    /// links drop enough that giving up on them is correct behavior, and a
    /// stale-plan discard is *triggered by* a legitimate exhaustion (the
    /// graft probed a component that really was dead) followed by a
    /// successful re-plan; exhaustion under ambient/uniform loss alone
    /// means the retry budget is miscalibrated, so campaigns gate on this
    /// being zero.
    pub exhaustions_without_gray: u64,
    /// Protection-plane counters summed over every case: plans held,
    /// cached-plan activations and stale discards.
    pub protection: ProtectionHealth,
}

/// Restoration-latency summary of one (family × protocol) cell, the table
/// that makes control-plane-loss inflation readable: compare the
/// `uniform-loss` row against the lossless single-cut families.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyLatency {
    /// The fault family.
    pub family: FaultFamily,
    /// The protocol.
    pub proto: ProtoKind,
    /// Restored members across the family's cases.
    pub count: u64,
    /// Mean restoration latency, milliseconds.
    pub mean_ms: f64,
    /// Worst restoration latency, milliseconds.
    pub max_ms: f64,
}

/// One group's campaign-wide roll-up under one protocol: its own outcome
/// taxonomy, restoration-latency distribution and control-message
/// overhead. Single-session campaigns have exactly one row per protocol,
/// duplicating the aggregate; multi-session campaigns expose how evenly
/// the substrate served its tenants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// The group.
    pub group: GroupId,
    /// The protocol.
    pub proto: ProtoKind,
    /// Cases whose failure missed this group's tree.
    pub unaffected: u32,
    /// Cases this group restored through clean fragment-root local
    /// detours.
    pub restored_local_detour: u32,
    /// Cases this group restored after discarding a stale cached plan.
    pub restored_after_replan: u32,
    /// Cases this group restored some other way.
    pub fell_back_global: u32,
    /// Cases with members of this group no protocol could restore.
    pub source_partitioned: u32,
    /// Cases where a reachable member of this group never regained
    /// service.
    pub detection_missed: u32,
    /// Cases the auditor rejected for this group.
    pub invariant_violation: u32,
    /// Restored members of this group across all cases.
    pub restored_members: u64,
    /// Mean restoration latency, milliseconds.
    pub mean_latency_ms: f64,
    /// 95th-percentile restoration latency, milliseconds.
    pub p95_latency_ms: f64,
    /// Worst restoration latency, milliseconds.
    pub max_latency_ms: f64,
    /// Total control messages this group's router lanes sent across the
    /// campaign — the per-group overhead of sharing the substrate.
    pub control_messages: u64,
}

impl GroupSummary {
    fn new(group: GroupId, proto: ProtoKind) -> Self {
        GroupSummary {
            group,
            proto,
            unaffected: 0,
            restored_local_detour: 0,
            restored_after_replan: 0,
            fell_back_global: 0,
            source_partitioned: 0,
            detection_missed: 0,
            invariant_violation: 0,
            restored_members: 0,
            mean_latency_ms: 0.0,
            p95_latency_ms: 0.0,
            max_latency_ms: 0.0,
            control_messages: 0,
        }
    }

    fn bump(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Unaffected => self.unaffected += 1,
            Outcome::RestoredLocalDetour => self.restored_local_detour += 1,
            Outcome::RestoredAfterReplan => self.restored_after_replan += 1,
            Outcome::FellBackGlobal => self.fell_back_global += 1,
            Outcome::SourcePartitioned => self.source_partitioned += 1,
            Outcome::DetectionMissed => self.detection_missed += 1,
            Outcome::InvariantViolation => self.invariant_violation += 1,
        }
    }
}

/// A minimal reproducer for one audited violation: everything needed to
/// re-run the exact case (`faultlab --replay`): the generated case (id,
/// family, per-case seed, concrete scenario, timing), the protocol it
/// failed under, and the violations themselves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reproducer {
    /// The offending case, verbatim.
    pub case: FaultCase,
    /// Which protocol's recovery broke the invariants.
    pub proto: ProtoKind,
    /// What the auditor saw.
    pub violations: Vec<Violation>,
}

/// One compact per-case row: classification and headline numbers only
/// (full latency vectors live in the aggregate summaries).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseRow {
    /// Campaign-local case id.
    pub id: u32,
    /// Fault family.
    pub family: FaultFamily,
    /// Whether the case was transient.
    pub transient: bool,
    /// Failed links in the scenario.
    pub failed_links: u32,
    /// Failed nodes in the scenario.
    pub failed_nodes: u32,
    /// SMRP classification.
    pub smrp: Outcome,
    /// SPF classification.
    pub spf: Outcome,
    /// Members SMRP had to restore.
    pub affected: u32,
}

/// The full campaign report, as written to disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The configuration the campaign ran with.
    pub config: CampaignConfig,
    /// Cases evaluated.
    pub cases: u32,
    /// Total invariant violations across all cases and protocols.
    pub total_violations: u32,
    /// Outcome counts per (family × protocol) cell, families in
    /// [`FaultFamily::ALL`] order, protocols in [`ProtoKind::ALL`] order.
    pub outcomes: Vec<OutcomeCounts>,
    /// Latency distribution per protocol.
    pub latencies: Vec<LatencySummary>,
    /// Latency distribution per (family × protocol) cell — the loss-
    /// inflation readout.
    pub family_latencies: Vec<FamilyLatency>,
    /// Control-plane health per protocol.
    pub health: Vec<HealthSummary>,
    /// Per-group roll-ups, groups ascending, protocols in
    /// [`ProtoKind::ALL`] order within a group.
    pub group_summaries: Vec<GroupSummary>,
    /// One reproducer per (case, protocol) with violations.
    pub reproducers: Vec<Reproducer>,
    /// Compact per-case classification rows, in case-id order.
    pub case_rows: Vec<CaseRow>,
}

impl CampaignReport {
    /// Builds the report from a finished run.
    pub fn from_run(run: &CampaignRun) -> Self {
        let mut outcomes: Vec<OutcomeCounts> = FaultFamily::ALL
            .iter()
            .flat_map(|&f| {
                ProtoKind::ALL
                    .iter()
                    .map(move |&p| OutcomeCounts::new(f, p))
            })
            .collect();
        let mut latency_samples: Vec<Vec<f64>> = vec![Vec::new(); ProtoKind::ALL.len()];
        let mut family_samples: std::collections::BTreeMap<(FaultFamily, ProtoKind), Vec<f64>> =
            FaultFamily::ALL
                .iter()
                .flat_map(|&f| ProtoKind::ALL.iter().map(move |&p| ((f, p), Vec::new())))
                .collect();
        let mut health: Vec<HealthSummary> = ProtoKind::ALL
            .iter()
            .map(|&p| HealthSummary {
                proto: p,
                health: ControlHealth::default(),
                exhaustions_without_gray: 0,
                protection: ProtectionHealth::default(),
            })
            .collect();
        let groups_n = run.config.groups.max(1);
        let mut group_summaries: Vec<GroupSummary> = (0..groups_n)
            .flat_map(|g| {
                ProtoKind::ALL
                    .iter()
                    .map(move |&p| GroupSummary::new(GroupId::new(g), p))
            })
            .collect();
        let mut group_samples: Vec<Vec<f64>> = vec![Vec::new(); group_summaries.len()];
        let mut reproducers = Vec::new();
        let mut case_rows = Vec::with_capacity(run.results.len());
        let mut total_violations = 0u32;

        for r in &run.results {
            for (pi, &proto) in ProtoKind::ALL.iter().enumerate() {
                let o = r.for_proto(proto);
                for go in &o.groups {
                    let gi = go.group.index() * ProtoKind::ALL.len() + pi;
                    group_summaries[gi].bump(go.outcome);
                    group_summaries[gi].restored_members += u64::from(go.restored);
                    group_summaries[gi].control_messages += go.control.total();
                    group_samples[gi].extend_from_slice(&go.latencies_ms);
                }
                let cell = outcomes
                    .iter_mut()
                    .find(|c| c.family == r.case.family && c.proto == proto)
                    .expect("every (family, proto) cell exists");
                cell.bump(o.outcome);
                latency_samples[pi].extend_from_slice(&o.latencies_ms);
                family_samples
                    .get_mut(&(r.case.family, proto))
                    .expect("every (family, proto) sample exists")
                    .extend_from_slice(&o.latencies_ms);
                health[pi].health.merge(&o.health);
                health[pi].protection.merge(&o.protection);
                // Stale-plan discards are triggered by exhaustions that
                // correctly gave up on a dead component; once the re-plan
                // restored everyone, those exhaustions are evidence the
                // safety property worked, not a calibration bug.
                if r.case.channel.overrides.is_empty() && o.outcome != Outcome::RestoredAfterReplan
                {
                    health[pi].exhaustions_without_gray += o.health.retry_exhaustions;
                }
                if !o.violations.is_empty() {
                    total_violations += o.violations.len() as u32;
                    reproducers.push(Reproducer {
                        case: r.case.clone(),
                        proto,
                        violations: o.violations.clone(),
                    });
                }
            }
            case_rows.push(case_row(r));
        }

        let latencies = ProtoKind::ALL
            .iter()
            .zip(latency_samples)
            .map(|(&p, s)| LatencySummary::from_samples(p, s))
            .collect();
        let family_latencies = family_samples
            .into_iter()
            .map(|((family, proto), samples)| {
                let s = LatencySummary::from_samples(proto, samples);
                FamilyLatency {
                    family,
                    proto,
                    count: s.count,
                    mean_ms: s.mean_ms,
                    max_ms: s.max_ms,
                }
            })
            .collect();
        for (row, samples) in group_summaries.iter_mut().zip(group_samples) {
            let s = LatencySummary::from_samples(row.proto, samples);
            row.mean_latency_ms = s.mean_ms;
            row.p95_latency_ms = s.p95_ms;
            row.max_latency_ms = s.max_ms;
        }

        CampaignReport {
            config: run.config.clone(),
            cases: run.results.len() as u32,
            total_violations,
            outcomes,
            latencies,
            family_latencies,
            health,
            group_summaries,
            reproducers,
            case_rows,
        }
    }

    /// Whether the campaign is clean (no invariant violations anywhere).
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// Total retry-budget exhaustions outside gray-link cases, summed over
    /// both protocols. Nonzero means the reliable layer gave up on a
    /// neighbor it should have reached — campaigns gate on zero.
    pub fn clear_channel_exhaustions(&self) -> u64 {
        self.health.iter().map(|h| h.exhaustions_without_gray).sum()
    }

    /// Clean *and* no retry exhaustion outside gray-link cases: the gate
    /// the `faultlab` binary (and CI) fails on.
    pub fn is_healthy(&self) -> bool {
        self.is_clean() && self.clear_channel_exhaustions() == 0
    }

    /// Stable pretty-printed JSON form (what the `faultlab` binary writes).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the report contains no non-serializable
    /// values.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Short human-readable synopsis for terminal output.
    pub fn synopsis(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign: {} cases on n={} (seed {:#x}) — {}",
            self.cases,
            self.config.nodes,
            self.config.base_seed,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} INVARIANT VIOLATIONS", self.total_violations)
            }
        );
        for o in Outcome::ALL {
            let per_proto: Vec<String> = ProtoKind::ALL
                .iter()
                .map(|&p| {
                    let n: u32 = self
                        .outcomes
                        .iter()
                        .filter(|c| c.proto == p)
                        .map(|c| match o {
                            Outcome::Unaffected => c.unaffected,
                            Outcome::RestoredLocalDetour => c.restored_local_detour,
                            Outcome::RestoredAfterReplan => c.restored_after_replan,
                            Outcome::FellBackGlobal => c.fell_back_global,
                            Outcome::SourcePartitioned => c.source_partitioned,
                            Outcome::DetectionMissed => c.detection_missed,
                            Outcome::InvariantViolation => c.invariant_violation,
                        })
                        .sum();
                    format!("{p}={n}")
                })
                .collect();
            let _ = writeln!(out, "  {:<22} {}", o.name(), per_proto.join("  "));
        }
        for l in &self.latencies {
            let _ = writeln!(
                out,
                "  latency[{}]: n={} mean={:.2}ms p50={:.2}ms p95={:.2}ms max={:.2}ms",
                l.proto, l.count, l.mean_ms, l.p50_ms, l.p95_ms, l.max_ms
            );
        }
        for h in &self.health {
            if h.health.is_quiet() {
                continue;
            }
            let _ = writeln!(
                out,
                "  health[{}]: lost={} retransmits={} dup-drops={} exhaustions={} (clear-channel={})",
                h.proto,
                h.health.total_lost(),
                h.health.retransmits,
                h.health.dup_drops,
                h.health.retry_exhaustions,
                h.exhaustions_without_gray,
            );
        }
        for h in &self.health {
            if h.protection.is_quiet() {
                continue;
            }
            let _ = writeln!(
                out,
                "  protection[{}]: plans-held={} activations={} stale-discards={}",
                h.proto,
                h.protection.plans_held,
                h.protection.activations,
                h.protection.stale_discards,
            );
        }
        if self.config.groups > 1 {
            for g in &self.group_summaries {
                let _ = writeln!(
                    out,
                    "  group {}[{}]: restored={} mean={:.2}ms p95={:.2}ms control-msgs={}",
                    g.group,
                    g.proto,
                    g.restored_members,
                    g.mean_latency_ms,
                    g.p95_latency_ms,
                    g.control_messages,
                );
            }
        }
        out
    }
}

fn case_row(r: &CaseResult) -> CaseRow {
    CaseRow {
        id: r.case.id,
        family: r.case.family,
        transient: r.case.timing.transient,
        failed_links: r.case.scenario.failed_links().count() as u32,
        failed_nodes: r.case.scenario.failed_nodes().count() as u32,
        smrp: r.smrp.outcome,
        spf: r.spf.outcome,
        affected: r.smrp.affected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;

    fn tiny_run() -> CampaignRun {
        let cfg = CampaignConfig {
            nodes: 25,
            group_size: 6,
            alpha: 0.3,
            scenarios: 16,
            base_seed: 7,
            run_until_ms: 2000.0,
            ..CampaignConfig::default()
        };
        run_campaign(&cfg, 2).unwrap()
    }

    #[test]
    fn report_accounts_for_every_case() {
        let run = tiny_run();
        let report = CampaignReport::from_run(&run);
        assert_eq!(report.cases, 16);
        assert_eq!(report.case_rows.len(), 16);
        for proto in ProtoKind::ALL {
            let total: u32 = report
                .outcomes
                .iter()
                .filter(|c| c.proto == proto)
                .map(OutcomeCounts::total)
                .sum();
            assert_eq!(total, 16, "{proto}: every case lands in one cell");
        }
        assert!(report.is_clean());
        assert!(report.reproducers.is_empty());
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = CampaignReport::from_run(&tiny_run());
        let text = report.to_json();
        let back: CampaignReport = serde_json::from_str(&text).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn latency_summary_orders_quantiles() {
        let s = LatencySummary::from_samples(ProtoKind::Smrp, vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.p50_ms, 3.0);
        assert!(s.p50_ms <= s.p95_ms && s.p95_ms <= s.max_ms);
        assert_eq!(s.max_ms, 5.0);
        let empty = LatencySummary::from_samples(ProtoKind::Spf, Vec::new());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max_ms, 0.0);
    }

    #[test]
    fn lossy_families_populate_health_and_stay_healthy() {
        let run = tiny_run();
        let report = CampaignReport::from_run(&run);
        assert!(report.is_healthy(), "health: {:?}", report.health);
        // The mix includes uniform-loss and gray-link cases, so the
        // channel must have eaten messages and the reliable layer must
        // have recovered them.
        let lost: u64 = report.health.iter().map(|h| h.health.total_lost()).sum();
        let retx: u64 = report.health.iter().map(|h| h.health.retransmits).sum();
        assert!(lost > 0, "lossy families lose control messages");
        assert!(retx > 0, "the reliable layer retransmits what was lost");
        // Family latency rows cover the full (family × proto) grid.
        assert_eq!(
            report.family_latencies.len(),
            FaultFamily::ALL.len() * ProtoKind::ALL.len()
        );
        assert!(report.synopsis().contains("health[smrp]"));
    }

    #[test]
    fn group_summaries_cover_every_group() {
        let cfg = CampaignConfig {
            nodes: 25,
            group_size: 6,
            groups: 2,
            alpha: 0.3,
            scenarios: 10,
            base_seed: 7,
            run_until_ms: 2000.0,
            ..CampaignConfig::default()
        };
        let run = run_campaign(&cfg, 2).unwrap();
        let report = CampaignReport::from_run(&run);
        assert_eq!(report.group_summaries.len(), 2 * ProtoKind::ALL.len());
        for g in &report.group_summaries {
            // Every case lands in exactly one of this group's outcome
            // classes.
            let total = g.unaffected
                + g.restored_local_detour
                + g.restored_after_replan
                + g.fell_back_global
                + g.source_partitioned
                + g.detection_missed
                + g.invariant_violation;
            assert_eq!(total, 10, "group {} {}", g.group, g.proto);
        }
        // Per-group restored members sum to the aggregate latency count.
        for (pi, l) in report.latencies.iter().enumerate() {
            let per_group: u64 = report
                .group_summaries
                .iter()
                .filter(|g| g.proto == ProtoKind::ALL[pi])
                .map(|g| g.restored_members)
                .sum();
            assert_eq!(per_group, l.count);
        }
        assert!(report.synopsis().contains("group g0[smrp]"));
        assert!(report.synopsis().contains("group g1[spf]"));
    }

    #[test]
    fn synopsis_mentions_violations_when_dirty() {
        let mut report = CampaignReport::from_run(&tiny_run());
        assert!(report.synopsis().contains("clean"));
        report.total_violations = 3;
        assert!(report.synopsis().contains("3 INVARIANT VIOLATIONS"));
    }
}
