//! Deterministic, seeded generation of correlated fault scenarios.
//!
//! The repo's hand-built [`FailureScenario`]s exercise one link or one node
//! at a time (the paper's Figure 1 regime). Real outages are often multiple
//! and correlated — a conduit cut takes every fiber in it, a power event
//! takes every router in a region — so the generator produces *families* of
//! failures:
//!
//! * [`FaultFamily::KLink`] — `k` independent random link cuts;
//! * [`FaultFamily::KNode`] — `k` independent random router crashes;
//! * [`FaultFamily::Srlg`] — a shared-risk link group: links whose
//!   geometric midpoints share a conduit cell all fail together;
//! * [`FaultFamily::Regional`] — every node within radius `r` of a random
//!   epicenter fails (a regional outage).
//!
//! Beyond hard component failures, three families degrade the *control
//! plane* itself (the channel carrying Hello/Refresh/Setup):
//!
//! * [`FaultFamily::UniformLoss`] — a link cut under ambient uniform
//!   message loss on every link (a congested or noisy network);
//! * [`FaultFamily::GrayLinks`] — a link cut plus a few "gray" links that
//!   stay up but drop a large fraction of messages (the classic
//!   gray-failure regime: neither healthy nor detectably dead);
//! * [`FaultFamily::Flapping`] — one component cycling down/up several
//!   times, the regime that punishes soft state hardest (every cycle
//!   re-runs detection, recovery, reboot re-arming and `former_upstream`
//!   branch re-extension).
//!
//! Every case derives its own RNG seed from `(base_seed, case id)`, so a
//! campaign is reproducible from its base seed alone and any single case is
//! reproducible from its serialized [`FaultCase`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use smrp_net::{FailureScenario, Graph, LinkId, NodeId};
use smrp_sim::{ChannelParams, ChannelSpec, LinkDegrade};

/// The family a generated scenario belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultFamily {
    /// `k` uniformly random link failures.
    KLink,
    /// `k` uniformly random node failures.
    KNode,
    /// One shared-risk link group (conduit) fails wholesale.
    Srlg,
    /// All nodes within a radius of a random epicenter fail.
    Regional,
    /// A link cut under ambient uniform control-plane loss on every link.
    UniformLoss,
    /// A link cut plus several "gray" links: up, but dropping heavily.
    GrayLinks,
    /// One component flapping through repeated down/up cycles.
    Flapping,
}

impl FaultFamily {
    /// All families, in the round-robin order the mixed generator uses.
    pub const ALL: [FaultFamily; 7] = [
        FaultFamily::KLink,
        FaultFamily::KNode,
        FaultFamily::Srlg,
        FaultFamily::Regional,
        FaultFamily::UniformLoss,
        FaultFamily::GrayLinks,
        FaultFamily::Flapping,
    ];

    /// Stable lowercase name (used in reports and tables).
    pub fn name(&self) -> &'static str {
        match self {
            FaultFamily::KLink => "k-link",
            FaultFamily::KNode => "k-node",
            FaultFamily::Srlg => "srlg",
            FaultFamily::Regional => "regional",
            FaultFamily::UniformLoss => "uniform-loss",
            FaultFamily::GrayLinks => "gray-links",
            FaultFamily::Flapping => "flapping",
        }
    }
}

impl std::fmt::Display for FaultFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether the failure persists, heals once, or flaps repeatedly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Timing {
    /// `true`: the failure is repaired `repair_after_ms` after injection
    /// (a maintenance window); `false`: the paper's persistent regime.
    pub transient: bool,
    /// Outage duration for transient cases (ignored when persistent).
    pub repair_after_ms: f64,
    /// Down/up cycles for flapping cases (`0` = not flapping; the single
    /// `transient`/persistent regimes above apply instead).
    pub flap_cycles: u32,
    /// Outage length of each flap cycle, in milliseconds.
    pub flap_down_ms: f64,
    /// Healthy window between flap outages, in milliseconds.
    pub flap_up_ms: f64,
}

impl Timing {
    /// The paper's persistent regime.
    pub fn persistent() -> Self {
        Timing {
            transient: false,
            repair_after_ms: 0.0,
            flap_cycles: 0,
            flap_down_ms: 0.0,
            flap_up_ms: 0.0,
        }
    }

    /// A single-repair transient outage.
    pub fn transient(repair_after_ms: f64) -> Self {
        Timing {
            transient: true,
            repair_after_ms,
            ..Timing::persistent()
        }
    }

    /// Repeated down/up cycles; the run ends with the component repaired.
    pub fn flapping(cycles: u32, down_ms: f64, up_ms: f64) -> Self {
        Timing {
            transient: false,
            repair_after_ms: 0.0,
            flap_cycles: cycles.max(1),
            flap_down_ms: down_ms,
            flap_up_ms: up_ms,
        }
    }

    /// Whether this timing cycles the components down and up repeatedly.
    pub fn is_flapping(&self) -> bool {
        self.flap_cycles > 0
    }

    /// Whether the outage is repaired by the end of the run (transient or
    /// flapping), as opposed to the persistent regime.
    pub fn heals(&self) -> bool {
        self.transient || self.is_flapping()
    }
}

/// Knobs of the scenario generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Links cut per `KLink` case.
    pub k_link: usize,
    /// Nodes crashed per `KNode` case.
    pub k_node: usize,
    /// Conduit-grid resolution for SRLG derivation: the unit square is cut
    /// into `srlg_grid × srlg_grid` cells and links whose midpoints share a
    /// cell share fate.
    pub srlg_grid: usize,
    /// Epicenter radius for regional failures, in the topology's coordinate
    /// units (the Waxman unit square).
    pub regional_radius: f64,
    /// Fraction of cases drawn as transient instead of persistent.
    pub transient_fraction: f64,
    /// Outage duration of transient cases, in milliseconds.
    pub repair_after_ms: f64,
    /// Ambient per-message loss probability of `UniformLoss` cases.
    pub uniform_loss: f64,
    /// Per-message loss probability of each gray link in `GrayLinks` cases.
    pub gray_loss: f64,
    /// Number of gray links degraded per `GrayLinks` case.
    pub gray_links: usize,
    /// Down/up cycles per `Flapping` case.
    pub flap_cycles: u32,
    /// Outage length of each flap cycle, in milliseconds. The default
    /// exceeds the routers' holdtime so every cycle expires soft state and
    /// forces a real `former_upstream` re-extension, not just a refresh.
    pub flap_down_ms: f64,
    /// Healthy window between flap outages, in milliseconds.
    pub flap_up_ms: f64,
}

impl Default for GeneratorConfig {
    /// Two-failure correlation by default (`k = 2`), a 5×5 conduit grid, a
    /// 0.15-radius region and a 20% transient share with 250 ms outages.
    /// Control-plane degradation defaults: 10% ambient loss, three 40%-loss
    /// gray links, and three 250 ms-down / 400 ms-up flap cycles.
    fn default() -> Self {
        GeneratorConfig {
            k_link: 2,
            k_node: 2,
            srlg_grid: 5,
            regional_radius: 0.15,
            transient_fraction: 0.2,
            repair_after_ms: 250.0,
            uniform_loss: 0.1,
            gray_loss: 0.4,
            gray_links: 3,
            flap_cycles: 3,
            flap_down_ms: 250.0,
            flap_up_ms: 400.0,
        }
    }
}

/// One generated fault case: the minimal reproducer for anything it breaks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCase {
    /// Campaign-local case index.
    pub id: u32,
    /// The family this case was drawn from.
    pub family: FaultFamily,
    /// The exact RNG seed the case was generated with.
    pub seed: u64,
    /// The concrete failed links/nodes.
    pub scenario: FailureScenario,
    /// Persistent, transient or flapping injection.
    pub timing: Timing,
    /// The control-plane channel the case runs over (perfect for the pure
    /// component-failure families).
    pub channel: ChannelSpec,
}

/// Derives the shared-risk link groups of `graph` from its geometry: links
/// whose midpoints fall in the same cell of a `grid × grid` partition of
/// the unit square are assumed to share a physical conduit. Groups of at
/// least two links qualify; returned in deterministic cell order.
///
/// Graphs without node positions (imported topologies) fall back to
/// node-incidence conduits: every node of degree ≥ 2 forms a group of its
/// incident links, modelling a site whose cable tray fails as one.
pub fn derive_srlgs(graph: &Graph, grid: usize) -> Vec<Vec<LinkId>> {
    let grid = grid.max(1);
    let has_positions = graph.node_ids().all(|n| graph.position(n).is_some());
    if has_positions {
        let mut cells: std::collections::BTreeMap<(u64, u64), Vec<LinkId>> = Default::default();
        for l in graph.link_ids() {
            let link = graph.link(l);
            let pa = graph.position(link.a()).expect("checked above");
            let pb = graph.position(link.b()).expect("checked above");
            let mid_x = (pa.x + pb.x) / 2.0;
            let mid_y = (pa.y + pb.y) / 2.0;
            let clamp = |v: f64| ((v * grid as f64) as u64).min(grid as u64 - 1);
            cells
                .entry((clamp(mid_x), clamp(mid_y)))
                .or_default()
                .push(l);
        }
        cells.into_values().filter(|g| g.len() >= 2).collect()
    } else {
        graph
            .node_ids()
            .filter(|&n| graph.degree(n) >= 2)
            .map(|n| graph.adjacency(n).iter().map(|&(_, l)| l).collect())
            .collect()
    }
}

/// Picks, from `srlgs`, the indices of the shared-risk groups whose
/// failure would break *more than one* of the given trees — the
/// shared-fate conduits of a multi-session deployment. `tree_links[g]`
/// is the link set of group `g`'s tree; an SRLG qualifies when it
/// intersects at least two of them. Indices come back ascending, so the
/// selection is deterministic.
pub fn shared_fate_srlgs(srlgs: &[Vec<LinkId>], tree_links: &[Vec<LinkId>]) -> Vec<usize> {
    srlgs
        .iter()
        .enumerate()
        .filter(|(_, srlg)| {
            let hit = tree_links
                .iter()
                .filter(|tree| tree.iter().any(|l| srlg.contains(l)))
                .count();
            hit >= 2
        })
        .map(|(i, _)| i)
        .collect()
}

/// Samples `k` distinct elements of `0..n` (as indices).
fn sample_distinct(rng: &mut SmallRng, n: usize, k: usize) -> Vec<usize> {
    let k = k.min(n);
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < k {
        picked.insert(rng.gen_range(0..n));
    }
    picked.into_iter().collect()
}

/// Generates the case with index `id` of `family`, seeded from
/// `base_seed`. Identical arguments always produce identical cases.
pub fn generate_case(
    graph: &Graph,
    cfg: &GeneratorConfig,
    family: FaultFamily,
    id: u32,
    base_seed: u64,
) -> FaultCase {
    // splitmix-style sub-seed derivation, matching the repo's convention of
    // per-index seeds off one base seed.
    let seed = base_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(id).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    // The channel draws its own seed off the case seed so degraded-channel
    // randomness is independent of how many draws scenario sampling used.
    let channel_seed = seed.wrapping_mul(0x2545_F491_4F6C_DD1D);
    let mut channel = ChannelSpec::perfect();
    let mut flapping = false;

    let scenario = match family {
        FaultFamily::KLink => {
            let links: Vec<LinkId> = graph.link_ids().collect();
            FailureScenario::links(
                sample_distinct(&mut rng, links.len(), cfg.k_link)
                    .into_iter()
                    .map(|i| links[i]),
            )
        }
        FaultFamily::KNode => {
            let nodes: Vec<NodeId> = graph.node_ids().collect();
            FailureScenario::nodes(
                sample_distinct(&mut rng, nodes.len(), cfg.k_node)
                    .into_iter()
                    .map(|i| nodes[i]),
            )
        }
        FaultFamily::Srlg => {
            let groups = derive_srlgs(graph, cfg.srlg_grid);
            if groups.is_empty() {
                // Degenerate topology with no shared conduits: fall back to
                // a correlated double link cut.
                let links: Vec<LinkId> = graph.link_ids().collect();
                FailureScenario::links(
                    sample_distinct(&mut rng, links.len(), 2)
                        .into_iter()
                        .map(|i| links[i]),
                )
            } else {
                let g = rng.gen_range(0..groups.len());
                FailureScenario::links(groups[g].iter().copied())
            }
        }
        FaultFamily::Regional => {
            let nodes: Vec<NodeId> = graph.node_ids().collect();
            let epicenter = nodes[rng.gen_range(0..nodes.len())];
            match graph.position(epicenter) {
                Some(center) => FailureScenario::nodes(
                    nodes
                        .iter()
                        .copied()
                        .filter(|&n| {
                            graph
                                .position(n)
                                .is_some_and(|p| p.distance(center) <= cfg.regional_radius)
                        })
                        .collect::<Vec<_>>(),
                ),
                // No geometry: a "region" is the epicenter plus its
                // immediate neighborhood.
                None => {
                    let mut s = FailureScenario::node(epicenter);
                    for n in graph.neighbors(epicenter) {
                        s.fail_node(n);
                    }
                    s
                }
            }
        }
        FaultFamily::UniformLoss => {
            channel = ChannelSpec::uniform_loss(cfg.uniform_loss, channel_seed);
            let links: Vec<LinkId> = graph.link_ids().collect();
            FailureScenario::link(links[rng.gen_range(0..links.len())])
        }
        FaultFamily::GrayLinks => {
            // One hard cut, plus `gray_links` distinct links that stay up
            // but drop `gray_loss` of everything crossing them. Which of
            // the sampled links is the cut is drawn separately so the
            // sorted sampling order doesn't bias the cut toward low ids.
            let links: Vec<LinkId> = graph.link_ids().collect();
            let picks = sample_distinct(&mut rng, links.len(), 1 + cfg.gray_links);
            let cut_at = rng.gen_range(0..picks.len());
            let overrides = picks
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != cut_at)
                .map(|(_, &i)| LinkDegrade {
                    link: links[i],
                    params: ChannelParams::lossy(cfg.gray_loss),
                })
                .collect();
            channel = ChannelSpec {
                default: ChannelParams::PERFECT,
                overrides,
                seed: channel_seed,
            };
            FailureScenario::link(links[picks[cut_at]])
        }
        FaultFamily::Flapping => {
            flapping = true;
            // Two thirds link flaps; one third node flaps, which exercise
            // the reboot path (`on_reboot` re-arms timers and pending
            // retransmissions) on every up-edge.
            if rng.gen_bool(2.0 / 3.0) {
                let links: Vec<LinkId> = graph.link_ids().collect();
                FailureScenario::link(links[rng.gen_range(0..links.len())])
            } else {
                let nodes: Vec<NodeId> = graph.node_ids().collect();
                FailureScenario::node(nodes[rng.gen_range(0..nodes.len())])
            }
        }
    };

    let timing = if flapping {
        Timing::flapping(cfg.flap_cycles, cfg.flap_down_ms, cfg.flap_up_ms)
    } else if cfg.transient_fraction > 0.0 && rng.gen_bool(cfg.transient_fraction) {
        Timing::transient(cfg.repair_after_ms)
    } else {
        Timing::persistent()
    };
    FaultCase {
        id,
        family,
        seed,
        scenario,
        timing,
        channel,
    }
}

/// Generates `count` cases cycling round-robin through all seven families.
pub fn generate_mix(
    graph: &Graph,
    cfg: &GeneratorConfig,
    count: usize,
    base_seed: u64,
) -> Vec<FaultCase> {
    (0..count)
        .map(|i| {
            let family = FaultFamily::ALL[i % FaultFamily::ALL.len()];
            generate_case(graph, cfg, family, i as u32, base_seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrp_net::waxman::WaxmanConfig;

    fn waxman(n: usize, seed: u64) -> Graph {
        WaxmanConfig::new(n)
            .alpha(0.25)
            .seed(seed)
            .generate()
            .unwrap()
            .into_graph()
    }

    #[test]
    fn identical_seeds_generate_identical_cases() {
        let g = waxman(50, 7);
        let cfg = GeneratorConfig::default();
        let a = generate_mix(&g, &cfg, 40, 99);
        let b = generate_mix(&g, &cfg, 40, 99);
        assert_eq!(a, b);
        let c = generate_mix(&g, &cfg, 40, 100);
        assert_ne!(a, c, "different base seed changes the cases");
    }

    #[test]
    fn families_produce_their_shapes() {
        let g = waxman(50, 7);
        let cfg = GeneratorConfig::default();
        for (i, case) in generate_mix(&g, &cfg, 40, 3).iter().enumerate() {
            assert_eq!(case.id as usize, i);
            match case.family {
                FaultFamily::KLink => {
                    assert_eq!(case.scenario.failed_links().count(), cfg.k_link);
                    assert_eq!(case.scenario.failed_nodes().count(), 0);
                }
                FaultFamily::KNode => {
                    assert_eq!(case.scenario.failed_nodes().count(), cfg.k_node);
                    assert_eq!(case.scenario.failed_links().count(), 0);
                }
                FaultFamily::Srlg => {
                    assert!(case.scenario.failed_links().count() >= 2);
                }
                FaultFamily::Regional => {
                    // The epicenter itself always falls in the region.
                    assert!(case.scenario.failed_nodes().count() >= 1);
                }
                FaultFamily::UniformLoss => {
                    assert_eq!(case.scenario.failed_links().count(), 1);
                    assert_eq!(case.channel.default.loss, cfg.uniform_loss);
                    assert!(case.channel.overrides.is_empty());
                }
                FaultFamily::GrayLinks => {
                    assert_eq!(case.scenario.failed_links().count(), 1);
                    assert_eq!(case.channel.overrides.len(), cfg.gray_links);
                    let cut = case.scenario.failed_links().next().unwrap();
                    for o in &case.channel.overrides {
                        assert_ne!(o.link, cut, "gray links stay up");
                        assert_eq!(o.params.loss, cfg.gray_loss);
                    }
                }
                FaultFamily::Flapping => {
                    assert!(case.timing.is_flapping());
                    assert_eq!(case.timing.flap_cycles, cfg.flap_cycles);
                    assert_eq!(
                        case.scenario.failed_links().count() + case.scenario.failed_nodes().count(),
                        1,
                        "exactly one component flaps"
                    );
                }
            }
            if case.family != FaultFamily::UniformLoss && case.family != FaultFamily::GrayLinks {
                assert!(case.channel.is_perfect());
            }
            if case.family != FaultFamily::Flapping {
                assert!(!case.timing.is_flapping());
            }
        }
    }

    #[test]
    fn srlg_groups_share_conduit_cells() {
        let g = waxman(60, 11);
        let groups = derive_srlgs(&g, 5);
        assert!(!groups.is_empty(), "a 60-node Waxman graph has conduits");
        for group in &groups {
            assert!(group.len() >= 2);
            // All midpoints in one cell: pairwise midpoint distance is
            // bounded by the cell diagonal.
            let mids: Vec<_> = group
                .iter()
                .map(|&l| {
                    let link = g.link(l);
                    let a = g.position(link.a()).unwrap();
                    let b = g.position(link.b()).unwrap();
                    smrp_net::Point::new((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)
                })
                .collect();
            let diag = (2.0f64).sqrt() / 5.0 + 1e-9;
            for i in 0..mids.len() {
                for j in i + 1..mids.len() {
                    assert!(mids[i].distance(mids[j]) <= diag);
                }
            }
        }
    }

    #[test]
    fn shared_fate_selects_srlgs_crossing_multiple_trees() {
        let mut g = Graph::with_nodes(5);
        let ids: Vec<_> = g.node_ids().collect();
        let l01 = g.add_link(ids[0], ids[1], 1.0).unwrap();
        let l12 = g.add_link(ids[1], ids[2], 1.0).unwrap();
        let l23 = g.add_link(ids[2], ids[3], 1.0).unwrap();
        let l34 = g.add_link(ids[3], ids[4], 1.0).unwrap();
        let srlgs = vec![vec![l01, l12], vec![l23, l34], vec![l12, l23]];
        // Tree 0 uses the left links, tree 1 the right ones; only the
        // middle conduit straddles both.
        let trees = vec![vec![l01, l12], vec![l23, l34]];
        assert_eq!(shared_fate_srlgs(&srlgs, &trees), vec![2]);
        // A single tree can never share fate with itself.
        assert!(shared_fate_srlgs(&srlgs, &trees[..1]).is_empty());
    }

    #[test]
    fn srlg_fallback_without_positions_groups_by_node() {
        let mut g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        g.add_link(ids[0], ids[2], 1.0).unwrap();
        g.add_link(ids[0], ids[3], 1.0).unwrap();
        let groups = derive_srlgs(&g, 5);
        assert_eq!(groups.len(), 1, "only the hub has degree >= 2");
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn regional_cases_fail_a_geometric_ball() {
        let g = waxman(80, 5);
        let cfg = GeneratorConfig {
            regional_radius: 0.2,
            ..GeneratorConfig::default()
        };
        let case = generate_case(&g, &cfg, FaultFamily::Regional, 3, 1);
        let failed: Vec<NodeId> = case.scenario.failed_nodes().collect();
        assert!(!failed.is_empty());
        // Every failed pair sits within one diameter of each other.
        for &a in &failed {
            for &b in &failed {
                let pa = g.position(a).unwrap();
                let pb = g.position(b).unwrap();
                assert!(pa.distance(pb) <= 2.0 * cfg.regional_radius + 1e-9);
            }
        }
    }

    #[test]
    fn transient_fraction_is_respected_roughly() {
        let g = waxman(50, 7);
        let cfg = GeneratorConfig {
            transient_fraction: 0.5,
            ..GeneratorConfig::default()
        };
        let cases = generate_mix(&g, &cfg, 200, 17);
        let transient = cases.iter().filter(|c| c.timing.transient).count();
        assert!((50..150).contains(&transient), "got {transient} of 200");
        let cfg = GeneratorConfig {
            transient_fraction: 0.0,
            ..cfg
        };
        assert!(generate_mix(&g, &cfg, 50, 17)
            .iter()
            .all(|c| !c.timing.transient));
    }

    #[test]
    fn cases_round_trip_through_json() {
        let g = waxman(40, 2);
        let case = generate_case(&g, &GeneratorConfig::default(), FaultFamily::Srlg, 9, 4);
        let text = serde_json::to_string(&case).unwrap();
        let back: FaultCase = serde_json::from_str(&text).unwrap();
        assert_eq!(case, back);
    }
}
