//! Post-recovery invariant auditing.
//!
//! After every recovery the campaign reconstructs the tree the routers
//! converge to — the surviving source-connected component plus every
//! planned graft and its re-attached fragment — and checks it against the
//! protocol's safety invariants. Any violation is captured with enough
//! detail to serve as a minimal reproducer (the [`FaultCase`] carries the
//! seed and the exact scenario).
//!
//! [`FaultCase`]: crate::generate::FaultCase

use serde::{Deserialize, Serialize};
use smrp_core::recovery::{self, Recovery};
use smrp_core::MulticastTree;
use smrp_net::{FailureScenario, Graph, NodeId, Path};
use smrp_proto::RecoveryPlans;

/// The audited invariant classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Invariant {
    /// The post-recovery tree is a valid tree: acyclic, parent/child
    /// consistent, fully source-connected, relay-pruned, and its
    /// incremental `SHR`/`N` bookkeeping matches the from-scratch oracle
    /// (`MulticastTree::validate`, invariants 1–7).
    TreeStructure,
    /// Every pre-failure member that survived and is physically reachable
    /// from the source is attached to the post-recovery tree.
    MembersAttached,
    /// No post-recovery tree link, and no restoration-path link, crosses a
    /// failed component — data is never delivered over a failed link.
    NoFailedLinks,
    /// Every restoration path attaches to a node of the *surviving*
    /// source-connected component, never to another orphaned fragment.
    AttachOnSurvivingTree,
}

impl Invariant {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Invariant::TreeStructure => "tree-structure",
            Invariant::MembersAttached => "members-attached",
            Invariant::NoFailedLinks => "no-failed-links",
            Invariant::AttachOnSurvivingTree => "attach-on-surviving-tree",
        }
    }
}

/// One violated invariant with a human-readable detail line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: Invariant,
    /// What exactly went wrong.
    pub detail: String,
}

/// Grafts `nodes` (a path from a new node toward the tree) onto `tree`,
/// cutting the path at the first node that is already on-tree. Returns
/// whether the head of the path ends up attached — `false` when the path
/// never reaches the tree (a malformed plan), which the caller surfaces as
/// a members-attached violation rather than a panic.
fn graft(tree: &mut MulticastTree, nodes: &[NodeId]) -> bool {
    let Some(&head) = nodes.first() else {
        return false;
    };
    if tree.is_on_tree(head) {
        return true;
    }
    let Some(cut) = nodes.iter().position(|&n| tree.is_on_tree(n)) else {
        return false;
    };
    tree.attach_path(&Path::new(nodes[..=cut].to_vec()));
    true
}

/// Reconstructs the tree the routers converge to after executing `plans`
/// under `scenario`: the surviving component keeps its structure, each
/// restoration path is grafted, re-attached fragments keep their usable
/// internal edges, and dead relay chains are pruned.
///
/// Returns `None` when the source itself failed (no tree survives).
pub fn rebuild_after_recovery(
    graph: &Graph,
    tree: &MulticastTree,
    scenario: &FailureScenario,
    recoveries: &[Recovery],
) -> Option<MulticastTree> {
    let source = tree.source();
    if !scenario.node_usable(source) {
        return None;
    }
    let mut post = MulticastTree::new(graph, source).expect("source exists in graph");

    // Surviving component, parents before children (DFS from the source).
    let surviving = recovery::surviving_connected(graph, tree, scenario);
    for &u in &surviving {
        if u == source {
            continue;
        }
        let p = tree
            .parent(u)
            .expect("non-root surviving node has a parent");
        graft(&mut post, &[u, p]);
    }

    for rec in recoveries {
        // The restoration path runs from the grafting node to its attach
        // point, which for well-formed plans is already on the post tree
        // (surviving component or an earlier graft). A plan whose path
        // never reaches the tree leaves its fragment detached, and the
        // members-attached audit reports it.
        if !graft(&mut post, rec.restoration_path().nodes()) {
            continue;
        }
        // Re-attach the usable part of the fragment hanging below the
        // grafting node, walking old-tree edges parents-first.
        let mut stack = vec![rec.member()];
        while let Some(u) = stack.pop() {
            for &c in tree.children(u) {
                if !scenario.node_usable(c) {
                    continue;
                }
                let Some(l) = graph.link_between(u, c) else {
                    continue;
                };
                if !scenario.link_usable(graph, l) {
                    continue;
                }
                graft(&mut post, &[c, u]);
                stack.push(c);
            }
        }
    }

    // Membership: every usable old member that made it onto the post tree.
    for m in tree.members() {
        if scenario.node_usable(m) && post.is_on_tree(m) {
            post.set_member(m, true).expect("node is on the post tree");
        }
    }

    // Routers along detours that serve nobody time out and prune (soft
    // state): drop relay leaves.
    let leaves: Vec<NodeId> = post
        .on_tree_nodes()
        .filter(|&n| n != source && post.children(n).is_empty() && !post.is_member(n))
        .collect();
    for leaf in leaves {
        post.prune_from(leaf);
    }
    Some(post)
}

/// Audits the outcome of one recovery: reconstructs the post-recovery tree
/// and checks every invariant. An empty result means the recovery is safe.
///
/// `plans` must be the plans computed for `scenario` on `tree` (see
/// [`smrp_proto::ProtoSession::plan_recoveries`]).
pub fn audit_recovery(
    graph: &Graph,
    tree: &MulticastTree,
    scenario: &FailureScenario,
    plans: &RecoveryPlans,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let source = tree.source();
    if !scenario.node_usable(source) {
        // No surviving tree to audit; the classifier reports the scenario
        // as source-partitioned.
        return violations;
    }

    let surviving = recovery::surviving_connected(graph, tree, scenario);
    let mut surviving_mask = vec![false; graph.node_count()];
    for &n in &surviving {
        surviving_mask[n.index()] = true;
    }

    // (4) every detour lands on the surviving component.
    for rec in &plans.recoveries {
        if !surviving_mask[rec.attach().index()] {
            violations.push(Violation {
                invariant: Invariant::AttachOnSurvivingTree,
                detail: format!(
                    "member {} attaches at {}, which is not connected to the source",
                    rec.member(),
                    rec.attach()
                ),
            });
        }
        // (3a) restoration paths avoid failed components.
        if !scenario.path_usable(graph, rec.restoration_path().nodes()) {
            violations.push(Violation {
                invariant: Invariant::NoFailedLinks,
                detail: format!(
                    "restoration path of {} crosses a failed component: {:?}",
                    rec.member(),
                    rec.restoration_path().nodes()
                ),
            });
        }
    }

    let Some(post) = rebuild_after_recovery(graph, tree, scenario, &plans.recoveries) else {
        return violations;
    };

    // (1) structural + SHR/N-oracle validity.
    if let Err(e) = post.validate(graph) {
        violations.push(Violation {
            invariant: Invariant::TreeStructure,
            detail: e,
        });
    }

    // (2) all reachable members attached.
    let reach = recovery::reachable_from_source(graph, source, scenario);
    for m in tree.members() {
        if !scenario.node_usable(m) || !reach[m.index()] {
            continue; // dead or partitioned: nothing any protocol can do.
        }
        if !post.is_member(m) || post.path_from_source(m).is_none() {
            violations.push(Violation {
                invariant: Invariant::MembersAttached,
                detail: format!("reachable member {m} is not attached after recovery"),
            });
        }
    }

    // (3b) the converged tree carries data over live links only.
    for l in post.links(graph) {
        if !scenario.link_usable(graph, l) {
            violations.push(Violation {
                invariant: Invariant::NoFailedLinks,
                detail: format!("post-recovery tree uses failed link {l}"),
            });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrp_core::paper;
    use smrp_core::recovery::DetourKind;
    use smrp_proto::{ProtoSession, TreeProtocol};

    fn figure1_session() -> (Graph, paper::Figure1Nodes, ProtoSession<'static>) {
        // Leak the graph to get a 'static session for test brevity.
        let (graph, nodes) = paper::figure1_graph();
        let graph: &'static Graph = Box::leak(Box::new(graph));
        let session =
            ProtoSession::build(graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
        (graph.clone(), nodes, session)
    }

    #[test]
    fn clean_recovery_passes_every_invariant() {
        let (graph, nodes, session) = figure1_session();
        let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
        let scenario = FailureScenario::link(l_ad);
        let plans = session.plan_recoveries(&scenario, DetourKind::Local);
        let violations = audit_recovery(&graph, session.tree(), &scenario, &plans);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn rebuilt_tree_contains_recovered_member() {
        let (graph, nodes, session) = figure1_session();
        let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
        let scenario = FailureScenario::link(l_ad);
        let plans = session.plan_recoveries(&scenario, DetourKind::Local);
        let post =
            rebuild_after_recovery(&graph, session.tree(), &scenario, &plans.recoveries).unwrap();
        assert!(post.is_member(nodes.d));
        assert!(post.is_member(nodes.c));
        assert!(post.validate(&graph).is_ok());
        // D now hangs off C over the C-D shortcut.
        assert_eq!(post.parent(nodes.d), Some(nodes.c));
    }

    #[test]
    fn source_failure_yields_no_tree_and_no_violations() {
        let (graph, nodes, session) = figure1_session();
        let scenario = FailureScenario::node(nodes.s);
        let plans = session.plan_recoveries(&scenario, DetourKind::Local);
        assert!(
            rebuild_after_recovery(&graph, session.tree(), &scenario, &plans.recoveries).is_none()
        );
        assert!(audit_recovery(&graph, session.tree(), &scenario, &plans).is_empty());
    }

    #[test]
    fn tampered_plan_is_flagged() {
        let (graph, nodes, session) = figure1_session();
        // Plans computed for the WRONG scenario (link A-D) audited against
        // a node-A failure: A's restoration detour D->C no longer exists…
        let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
        let stale = session.plan_recoveries(&FailureScenario::link(l_ad), DetourKind::Local);
        let actual = FailureScenario::node(nodes.a);
        let violations = audit_recovery(&graph, session.tree(), &actual, &stale);
        assert!(
            violations
                .iter()
                .any(|v| v.invariant == Invariant::MembersAttached
                    || v.invariant == Invariant::NoFailedLinks
                    || v.invariant == Invariant::AttachOnSurvivingTree),
            "stale plans must violate something: {violations:?}"
        );
    }

    #[test]
    fn violation_serializes_for_reproducers() {
        let v = Violation {
            invariant: Invariant::NoFailedLinks,
            detail: "post-recovery tree uses failed link l3".into(),
        };
        let text = serde_json::to_string(&v).unwrap();
        let back: Violation = serde_json::from_str(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(Invariant::TreeStructure.name(), "tree-structure");
    }
}
