//! The protection-vs-restoration campaign axis.
//!
//! The base [`crate::campaign`] compares SMRP against the SPF baseline;
//! this module compares SMRP against *itself* in two recovery regimes,
//! over the same seeded scenarios:
//!
//! * **Protection** ([`RecoveryStrategy::Protection`]) — every on-tree
//!   node holds precomputed backup detours for its upstream link, its
//!   upstream node, and (when the topology's geometry yields shared-risk
//!   link groups) the conduit its upstream link belongs to. Restoration
//!   is local plan activation: no on-demand search is charged.
//! * **Reactive** ([`RecoveryStrategy::ReactiveSearch`]) — the honest
//!   on-demand baseline: after detection, the fragment root spends a
//!   modelled search delay (the §3.3.1 query round) before grafting.
//!
//! The axis sweeps three single-event fault families — one link cut, one
//! router crash, one whole shared-risk group — each at every configured
//! ambient control-plane loss point, and reports per-mode restoration
//! latency distributions (the medians are the headline: activation should
//! strictly beat search on the same seeds), control overhead, and the
//! protection plane's standing state (plans held) plus its safety counters
//! (activations, stale discards).
//!
//! Execution follows the campaign's determinism contract: one work item
//! per (case, mode), workers pull off a shared atomic index, results are
//! reassembled by index, and job count never enters the report — any
//! `--jobs` value produces a byte-identical report.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use smrp_core::recovery::{self, DetourKind};
use smrp_core::SmrpConfig;
use smrp_metrics::{ControlHealth, ProtectionHealth};
use smrp_net::waxman::WaxmanConfig;
use smrp_net::{Graph, GroupId, NetError, NodeId};
use smrp_proto::{
    FailureTiming, InjectionTiming, MultiSession, ProtoSession, RecoveryStrategy, TreeProtocol,
};
use smrp_sim::{ChannelSpec, SimTime};

use crate::audit::audit_recovery;
use crate::campaign::Outcome;
use crate::generate::{derive_srlgs, generate_case, FaultCase, FaultFamily, GeneratorConfig};
use crate::report::LatencySummary;

/// The recovery regime one evaluation ran under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProtectMode {
    /// Precomputed backup detours, locally activated on detection.
    Protection,
    /// On-demand detour search charged after detection.
    Reactive,
}

impl ProtectMode {
    /// Both modes, in evaluation order.
    pub const ALL: [ProtectMode; 2] = [ProtectMode::Protection, ProtectMode::Reactive];

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            ProtectMode::Protection => "protection",
            ProtectMode::Reactive => "reactive",
        }
    }
}

impl std::fmt::Display for ProtectMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The fault families the axis sweeps: one of each single-event kind the
/// protection plane precomputes contingencies for.
pub const PROTECT_FAMILIES: [FaultFamily; 3] =
    [FaultFamily::KLink, FaultFamily::KNode, FaultFamily::Srlg];

/// Knobs of a protection-axis campaign. Serialized verbatim into the
/// report header; job count and wall-clock never enter it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectConfig {
    /// Topology size (Waxman unit-square graph).
    pub nodes: usize,
    /// Multicast group size.
    pub group_size: usize,
    /// Waxman `α` (edge-density knob).
    pub alpha: f64,
    /// Waxman `β` (long-edge propensity). The sweep studies restoration,
    /// not partition, so it runs denser than the base campaign: every
    /// protected node needs a node-disjoint alternate for a conservative
    /// plan to exist at all.
    pub beta: f64,
    /// Cases generated per (family × loss point) cell.
    pub scenarios_per_cell: usize,
    /// Base RNG seed; topology, member set and every case derive their
    /// own sub-seeds from it.
    pub base_seed: u64,
    /// Conduit-grid resolution for SRLG derivation (see
    /// [`derive_srlgs`]); also feeds the session's SRLG metadata so
    /// protection plans can cover whole conduits.
    pub srlg_grid: usize,
    /// Modelled on-demand detour-search delay charged to the reactive
    /// arm, in milliseconds.
    pub search_ms: f64,
    /// Ambient control-plane loss probabilities to sweep (each value is
    /// one campaign cell per family; `0.0` means a perfect channel).
    pub loss_points: Vec<f64>,
    /// When the failure is injected, in milliseconds.
    pub fail_at_ms: f64,
    /// Simulation horizon per case, in milliseconds.
    pub run_until_ms: f64,
}

impl Default for ProtectConfig {
    /// A mid-scale default: 60 nodes, 15 members, 25 cases per cell at
    /// 0% and 10% ambient loss, 25 ms reactive search.
    fn default() -> Self {
        ProtectConfig {
            nodes: 60,
            group_size: 15,
            alpha: 0.4,
            beta: 0.6,
            scenarios_per_cell: 25,
            base_seed: 0x5EED,
            srlg_grid: 5,
            search_ms: 25.0,
            loss_points: vec![0.0, 0.1],
            fail_at_ms: 100.0,
            run_until_ms: 3000.0,
        }
    }
}

impl ProtectConfig {
    /// Generates the campaign topology (same seeded-Waxman idiom as the
    /// base campaign).
    ///
    /// # Errors
    ///
    /// Propagates generator configuration errors.
    pub fn topology(&self) -> Result<Graph, NetError> {
        Ok(WaxmanConfig::new(self.nodes)
            .alpha(self.alpha)
            .beta(self.beta)
            .seed(self.base_seed ^ 0x9E37_79B9)
            .generate()?
            .into_graph())
    }

    /// Samples the source and member set (the base campaign's group-0
    /// draw, so a protection sweep and a campaign with the same seed
    /// study the same session).
    pub fn pick_members(&self, graph: &Graph) -> (NodeId, Vec<NodeId>) {
        use rand::rngs::SmallRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(self.base_seed.wrapping_add(0xA5A5_A5A5));
        let mut ids: Vec<NodeId> = graph.node_ids().collect();
        ids.shuffle(&mut rng);
        let take = self.group_size.min(ids.len() - 1);
        (ids[0], ids[1..=take].to_vec())
    }

    /// The scenario-generator knobs the axis uses: strictly single-event
    /// families (`k = 1`), always persistent — protection plans answer
    /// "one thing broke", and the two-failure regime is exercised by the
    /// directed stale-plan tests instead of Monte-Carlo noise.
    fn generator(&self) -> GeneratorConfig {
        GeneratorConfig {
            k_link: 1,
            k_node: 1,
            srlg_grid: self.srlg_grid,
            transient_fraction: 0.0,
            ..GeneratorConfig::default()
        }
    }

    /// Generates every case of the sweep: `loss_points × PROTECT_FAMILIES
    /// × scenarios_per_cell`, ids sequential in that order.
    pub fn cases(&self, graph: &Graph) -> Vec<ProtectCase> {
        let gen_cfg = self.generator();
        let mut out = Vec::new();
        let mut id = 0u32;
        for &loss in &self.loss_points {
            for family in PROTECT_FAMILIES {
                for _ in 0..self.scenarios_per_cell {
                    out.push(ProtectCase {
                        case: generate_case(graph, &gen_cfg, family, id, self.base_seed),
                        loss,
                    });
                    id += 1;
                }
            }
        }
        out
    }
}

/// One generated case of the sweep: the fault plus the ambient loss its
/// cell runs under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectCase {
    /// The generated fault (id, family, seed, scenario, timing).
    pub case: FaultCase,
    /// Ambient per-message control-plane loss of this case's cell.
    pub loss: f64,
}

/// One (case, mode) evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectEval {
    /// The classification, in the base campaign's taxonomy.
    pub outcome: Outcome,
    /// Members whose tree path the failure broke.
    pub affected: u32,
    /// Affected members that regained service within the run.
    pub restored: u32,
    /// Restoration latencies of restored members, milliseconds.
    pub latencies_ms: Vec<f64>,
    /// Control-plane health during the run.
    pub health: ControlHealth,
    /// Protection-plane counters (plans held, activations, discards).
    pub protection: ProtectionHealth,
    /// Control messages the session's lanes sent.
    pub control_messages: u64,
    /// Invariant violations the auditor found (shared by both modes: the
    /// audit checks the planner, not the strategy).
    pub violations: u32,
}

impl ProtectEval {
    fn short_circuit(outcome: Outcome, affected: u32, violations: u32) -> ProtectEval {
        ProtectEval {
            outcome,
            affected,
            restored: 0,
            latencies_ms: Vec::new(),
            health: ControlHealth::default(),
            protection: ProtectionHealth::default(),
            control_messages: 0,
            violations,
        }
    }
}

/// Evaluates one case in one recovery mode against the shared session.
pub fn evaluate_protect(
    graph: &Graph,
    multi: &MultiSession<'_>,
    cfg: &ProtectConfig,
    pc: &ProtectCase,
    mode: ProtectMode,
) -> ProtectEval {
    let scenario = &pc.case.scenario;
    let session = multi.session(GroupId::new(0));
    let affected = recovery::affected_members(graph, session.tree(), scenario);
    if affected.is_empty() {
        return ProtectEval::short_circuit(Outcome::Unaffected, 0, 0);
    }
    // The auditor checks the *planner's* output against the scenario; the
    // strategy only changes when/where plans come from, so one audit
    // covers both arms.
    let plans = session.plan_recoveries(scenario, DetourKind::Local);
    let violations = audit_recovery(graph, session.tree(), scenario, &plans);
    if !violations.is_empty() {
        return ProtectEval::short_circuit(
            Outcome::InvariantViolation,
            affected.len() as u32,
            violations.len() as u32,
        );
    }
    if !scenario.node_usable(session.source()) {
        return ProtectEval::short_circuit(Outcome::SourcePartitioned, affected.len() as u32, 0);
    }

    let strategy = match mode {
        ProtectMode::Protection => RecoveryStrategy::Protection,
        ProtectMode::Reactive => RecoveryStrategy::ReactiveSearch {
            search: SimTime::from_ms(cfg.search_ms),
        },
    };
    let timing = InjectionTiming::Once(FailureTiming::persistent(SimTime::from_ms(cfg.fail_at_ms)));
    // Both modes of a case draw the same channel seed, so they fight the
    // same loss pattern.
    let channel = if pc.loss > 0.0 {
        ChannelSpec::uniform_loss(pc.loss, pc.case.seed.wrapping_mul(0xD6E8_FEB8_6659_FD93))
    } else {
        ChannelSpec::perfect()
    };
    let report = multi.run_failure_spec(
        scenario,
        strategy,
        timing,
        &channel,
        SimTime::from_ms(cfg.run_until_ms),
    );
    let slice = &report.groups[0];
    let mut protection = ProtectionHealth::default();
    protection.absorb(
        slice.protection.plans_held,
        slice.protection.activations,
        slice.protection.stale_discards,
    );
    let latencies_ms = slice.latencies_ms();
    let restored = latencies_ms.len() as u32;
    let outcome = if slice.all_restored() {
        if protection.stale_discards > 0 {
            Outcome::RestoredAfterReplan
        } else {
            Outcome::RestoredLocalDetour
        }
    } else {
        let source = session.source();
        let reach = recovery::reachable_from_source(graph, source, scenario);
        let unrestored_partitioned = slice
            .restorations
            .iter()
            .filter(|(_, l)| l.is_none())
            .all(|(m, _)| !scenario.node_usable(*m) || !reach[m.index()]);
        if unrestored_partitioned {
            Outcome::SourcePartitioned
        } else {
            Outcome::DetectionMissed
        }
    };
    ProtectEval {
        outcome,
        affected: affected.len() as u32,
        restored,
        latencies_ms,
        health: report.health.clone(),
        protection,
        control_messages: slice.control.total(),
        violations: 0,
    }
}

/// One case evaluated in both modes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectCaseResult {
    /// The case (fault + cell loss).
    pub case: ProtectCase,
    /// The protection-mode evaluation.
    pub protection: ProtectEval,
    /// The reactive-mode evaluation.
    pub reactive: ProtectEval,
}

impl ProtectCaseResult {
    /// The evaluation for `mode`.
    pub fn for_mode(&self, mode: ProtectMode) -> &ProtectEval {
        match mode {
            ProtectMode::Protection => &self.protection,
            ProtectMode::Reactive => &self.reactive,
        }
    }
}

/// The raw output of a protection sweep, in case-id order.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtectRun {
    /// The evaluated configuration.
    pub config: ProtectConfig,
    /// Per-case results, sorted by case id.
    pub results: Vec<ProtectCaseResult>,
}

/// Runs a protection-vs-reactive sweep on `jobs` worker threads.
///
/// Determinism contract: identical to [`crate::campaign::run_campaign`] —
/// cases are generated up front, workers pull (case, mode) items off a
/// shared atomic index, and results are reassembled by index, so any job
/// count produces an identical [`ProtectRun`].
///
/// # Errors
///
/// Propagates topology-generation failures.
///
/// # Panics
///
/// Panics if a worker thread panics (a bug in the evaluator itself).
pub fn run_protect(cfg: &ProtectConfig, jobs: usize) -> Result<ProtectRun, NetError> {
    let jobs = jobs.max(1);
    let graph = cfg.topology()?;
    let (source, members) = cfg.pick_members(&graph);
    let mut session = ProtoSession::build(
        &graph,
        source,
        &members,
        TreeProtocol::Smrp(SmrpConfig::default()),
    )
    .expect("SMRP session builds on a connected topology");
    // Feed the geometric conduits into the session so protection plans
    // cover whole shared-risk groups, matching the Srlg fault family.
    session.set_srlgs(derive_srlgs(&graph, cfg.srlg_grid));
    let multi = MultiSession::from_sessions(vec![session]);

    let cases = cfg.cases(&graph);
    let total = cases.len() * ProtectMode::ALL.len();
    let next = AtomicUsize::new(0);
    let evaluated: Mutex<Vec<(usize, ProtectEval)>> = Mutex::new(Vec::with_capacity(total));
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(total.max(1)) {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let pc = &cases[i / ProtectMode::ALL.len()];
                    let mode = ProtectMode::ALL[i % ProtectMode::ALL.len()];
                    local.push((i, evaluate_protect(&graph, &multi, cfg, pc, mode)));
                }
                evaluated.lock().expect("no poisoned workers").extend(local);
            });
        }
    });

    let mut slots: Vec<Option<ProtectEval>> = vec![None; total];
    for (i, eval) in evaluated.into_inner().expect("workers joined") {
        slots[i] = Some(eval);
    }
    let results = cases
        .into_iter()
        .enumerate()
        .map(|(ci, case)| ProtectCaseResult {
            case,
            protection: slots[ci * 2].take().expect("every work item was evaluated"),
            reactive: slots[ci * 2 + 1]
                .take()
                .expect("every work item was evaluated"),
        })
        .collect();
    Ok(ProtectRun {
        config: cfg.clone(),
        results,
    })
}

/// Aggregate of one mode across the whole sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeSummary {
    /// The mode.
    pub mode: ProtectMode,
    /// Restored members across all cases.
    pub restored_members: u64,
    /// Mean restoration latency, milliseconds.
    pub mean_ms: f64,
    /// Median restoration latency, milliseconds — the headline number.
    pub p50_ms: f64,
    /// 95th-percentile restoration latency, milliseconds.
    pub p95_ms: f64,
    /// Worst restoration latency, milliseconds.
    pub max_ms: f64,
    /// Control messages sent across all cases — the control overhead of
    /// the mode.
    pub control_messages: u64,
    /// Reliable-layer and channel counters summed over every case.
    pub health: ControlHealth,
    /// Retry-budget exhaustions from perfect-channel cells, excluding
    /// cases classified [`Outcome::RestoredAfterReplan`] (their
    /// exhaustions are the legitimate dead-component probes that
    /// triggered the stale discard). The sweep gates on zero.
    pub exhaustions_without_gray: u64,
    /// Protection-plane counters summed over every case: `plans_held` is
    /// the mode's standing state overhead, zero for the reactive arm.
    pub protection: ProtectionHealth,
}

/// Latency row of one (family × loss × mode) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectCell {
    /// The fault family.
    pub family: FaultFamily,
    /// The cell's ambient loss.
    pub loss: f64,
    /// The mode.
    pub mode: ProtectMode,
    /// Cases in the cell.
    pub cases: u32,
    /// Restored members across the cell's cases.
    pub restored_members: u64,
    /// Mean restoration latency, milliseconds.
    pub mean_ms: f64,
    /// Median restoration latency, milliseconds.
    pub p50_ms: f64,
    /// Worst restoration latency, milliseconds.
    pub max_ms: f64,
}

/// The headline comparison at one loss point: median restoration latency
/// of activation vs search over the same seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossPointSummary {
    /// The ambient loss.
    pub loss: f64,
    /// Restored members behind the protection median.
    pub protection_restored: u64,
    /// Protection-mode median restoration latency, milliseconds.
    pub protection_p50_ms: f64,
    /// Restored members behind the reactive median.
    pub reactive_restored: u64,
    /// Reactive-mode median restoration latency, milliseconds.
    pub reactive_p50_ms: f64,
}

/// Outcome tally of one mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeOutcomeRow {
    /// The mode.
    pub mode: ProtectMode,
    /// The outcome class.
    pub outcome: Outcome,
    /// Cases of the mode that landed in the class.
    pub count: u32,
}

/// The full protection-sweep report, as written to disk. A pure function
/// of the [`ProtectRun`], so byte-identical across machines and `--jobs`
/// values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtectReport {
    /// The configuration the sweep ran with.
    pub config: ProtectConfig,
    /// Cases evaluated (each in both modes).
    pub cases: u32,
    /// Total invariant violations across all cases.
    pub total_violations: u32,
    /// Outcome tallies, modes in [`ProtectMode::ALL`] order, outcomes in
    /// [`Outcome::ALL`] order within a mode.
    pub outcomes: Vec<ModeOutcomeRow>,
    /// Per-mode aggregates, in [`ProtectMode::ALL`] order.
    pub modes: Vec<ModeSummary>,
    /// Per-(family × loss × mode) latency cells, loss points in config
    /// order, families in [`PROTECT_FAMILIES`] order, modes in
    /// [`ProtectMode::ALL`] order.
    pub cells: Vec<ProtectCell>,
    /// The headline medians per loss point, in config order.
    pub loss_points: Vec<LossPointSummary>,
}

impl ProtectReport {
    /// Builds the report from a finished sweep.
    pub fn from_run(run: &ProtectRun) -> Self {
        let mut total_violations = 0u32;
        let mut outcome_counts = vec![0u32; ProtectMode::ALL.len() * Outcome::ALL.len()];
        let mut mode_samples: Vec<Vec<f64>> = vec![Vec::new(); ProtectMode::ALL.len()];
        let mut modes: Vec<ModeSummary> = ProtectMode::ALL
            .iter()
            .map(|&mode| ModeSummary {
                mode,
                restored_members: 0,
                mean_ms: 0.0,
                p50_ms: 0.0,
                p95_ms: 0.0,
                max_ms: 0.0,
                control_messages: 0,
                health: ControlHealth::default(),
                exhaustions_without_gray: 0,
                protection: ProtectionHealth::default(),
            })
            .collect();
        // (loss index, family index, mode index) → latency samples.
        let fam_idx = |f: FaultFamily| {
            PROTECT_FAMILIES
                .iter()
                .position(|&pf| pf == f)
                .expect("sweep cases come from PROTECT_FAMILIES")
        };
        let loss_idx = |loss: f64| {
            run.config
                .loss_points
                .iter()
                .position(|&l| l == loss)
                .expect("sweep cases come from configured loss points")
        };
        let mut cell_samples: Vec<Vec<f64>> =
            vec![
                Vec::new();
                run.config.loss_points.len() * PROTECT_FAMILIES.len() * ProtectMode::ALL.len()
            ];
        let mut cell_cases =
            vec![
                0u32;
                run.config.loss_points.len() * PROTECT_FAMILIES.len() * ProtectMode::ALL.len()
            ];

        for r in &run.results {
            // Both arms audit the same planner, so count violations once.
            total_violations += r.protection.violations;
            for (mi, &mode) in ProtectMode::ALL.iter().enumerate() {
                let e = r.for_mode(mode);
                outcome_counts[mi * Outcome::ALL.len()
                    + Outcome::ALL
                        .iter()
                        .position(|&o| o == e.outcome)
                        .expect("every outcome is in ALL")] += 1;
                mode_samples[mi].extend_from_slice(&e.latencies_ms);
                modes[mi].restored_members += u64::from(e.restored);
                modes[mi].control_messages += e.control_messages;
                modes[mi].health.merge(&e.health);
                modes[mi].protection.merge(&e.protection);
                if r.case.case.channel.overrides.is_empty()
                    && e.outcome != Outcome::RestoredAfterReplan
                {
                    modes[mi].exhaustions_without_gray += e.health.retry_exhaustions;
                }
                let ci = (loss_idx(r.case.loss) * PROTECT_FAMILIES.len()
                    + fam_idx(r.case.case.family))
                    * ProtectMode::ALL.len()
                    + mi;
                cell_samples[ci].extend_from_slice(&e.latencies_ms);
                cell_cases[ci] += 1;
            }
        }

        for (mi, samples) in mode_samples.iter().enumerate() {
            let s = LatencySummary::from_samples(crate::campaign::ProtoKind::Smrp, samples.clone());
            modes[mi].mean_ms = s.mean_ms;
            modes[mi].p50_ms = s.p50_ms;
            modes[mi].p95_ms = s.p95_ms;
            modes[mi].max_ms = s.max_ms;
        }

        let mut cells = Vec::new();
        for (li, &loss) in run.config.loss_points.iter().enumerate() {
            for (fi, &family) in PROTECT_FAMILIES.iter().enumerate() {
                for (mi, &mode) in ProtectMode::ALL.iter().enumerate() {
                    let ci = (li * PROTECT_FAMILIES.len() + fi) * ProtectMode::ALL.len() + mi;
                    let s = LatencySummary::from_samples(
                        crate::campaign::ProtoKind::Smrp,
                        cell_samples[ci].clone(),
                    );
                    cells.push(ProtectCell {
                        family,
                        loss,
                        mode,
                        cases: cell_cases[ci],
                        restored_members: s.count,
                        mean_ms: s.mean_ms,
                        p50_ms: s.p50_ms,
                        max_ms: s.max_ms,
                    });
                }
            }
        }

        let loss_points = run
            .config
            .loss_points
            .iter()
            .map(|&loss| {
                let per_mode: Vec<(u64, f64)> = ProtectMode::ALL
                    .iter()
                    .map(|&mode| {
                        let samples: Vec<f64> = run
                            .results
                            .iter()
                            .filter(|r| r.case.loss == loss)
                            .flat_map(|r| r.for_mode(mode).latencies_ms.iter().copied())
                            .collect();
                        let s =
                            LatencySummary::from_samples(crate::campaign::ProtoKind::Smrp, samples);
                        (s.count, s.p50_ms)
                    })
                    .collect();
                LossPointSummary {
                    loss,
                    protection_restored: per_mode[0].0,
                    protection_p50_ms: per_mode[0].1,
                    reactive_restored: per_mode[1].0,
                    reactive_p50_ms: per_mode[1].1,
                }
            })
            .collect();

        let outcomes = ProtectMode::ALL
            .iter()
            .enumerate()
            .flat_map(|(mi, &mode)| {
                Outcome::ALL
                    .iter()
                    .enumerate()
                    .map(move |(oi, &outcome)| (mode, outcome, mi * Outcome::ALL.len() + oi))
            })
            .map(|(mode, outcome, idx)| ModeOutcomeRow {
                mode,
                outcome,
                count: outcome_counts[idx],
            })
            .collect();

        ProtectReport {
            config: run.config.clone(),
            cases: run.results.len() as u32,
            total_violations,
            outcomes,
            modes,
            cells,
            loss_points,
        }
    }

    /// Whether the sweep is clean (no invariant violations anywhere).
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// Clean *and* no retry exhaustion outside gray-link/replan cases in
    /// either mode: the gate the `faultlab` binary (and CI) fails on.
    pub fn is_healthy(&self) -> bool {
        self.is_clean() && self.modes.iter().all(|m| m.exhaustions_without_gray == 0)
    }

    /// Whether precomputed activation strictly beat on-demand search at
    /// every loss point (the axis's headline claim). A loss point with no
    /// restored members in either arm has no medians to compare and
    /// counts as a loss — a sweep that restored nobody proved nothing.
    pub fn protection_wins(&self) -> bool {
        self.loss_points.iter().all(|lp| {
            lp.protection_restored > 0
                && lp.reactive_restored > 0
                && lp.protection_p50_ms < lp.reactive_p50_ms
        })
    }

    /// Stable pretty-printed JSON form (what the `faultlab` binary
    /// writes).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the report contains no non-serializable
    /// values.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Short human-readable synopsis for terminal output.
    pub fn synopsis(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "protect sweep: {} cases on n={} (seed {:#x}) — {}",
            self.cases,
            self.config.nodes,
            self.config.base_seed,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} INVARIANT VIOLATIONS", self.total_violations)
            }
        );
        for lp in &self.loss_points {
            let _ = writeln!(
                out,
                "  loss={:.0}%: protection p50={:.2}ms vs reactive p50={:.2}ms",
                lp.loss * 100.0,
                lp.protection_p50_ms,
                lp.reactive_p50_ms,
            );
        }
        for m in &self.modes {
            let _ = writeln!(
                out,
                "  {}: restored={} p50={:.2}ms p95={:.2}ms control-msgs={} plans-held={} activations={} stale-discards={}",
                m.mode,
                m.restored_members,
                m.p50_ms,
                m.p95_ms,
                m.control_messages,
                m.protection.plans_held,
                m.protection.activations,
                m.protection.stale_discards,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Timing;
    use smrp_net::FailureScenario;

    // Small enough to run fast, dense enough that single cuts actually
    // hit the tree (a 10-member tree on 18 nodes covers most links).
    fn smoke_config() -> ProtectConfig {
        ProtectConfig {
            nodes: 18,
            group_size: 10,
            scenarios_per_cell: 6,
            base_seed: 11,
            run_until_ms: 2000.0,
            ..ProtectConfig::default()
        }
    }

    #[test]
    fn jobs_do_not_change_results() {
        let cfg = smoke_config();
        let a = run_protect(&cfg, 1).unwrap();
        let b = run_protect(&cfg, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            ProtectReport::from_run(&a).to_json(),
            ProtectReport::from_run(&b).to_json()
        );
    }

    #[test]
    fn sweep_is_healthy_and_protection_beats_search() {
        let run = run_protect(&smoke_config(), 2).unwrap();
        let report = ProtectReport::from_run(&run);
        assert!(report.is_clean(), "violations: {}", report.total_violations);
        assert!(report.is_healthy(), "modes: {:#?}", report.modes);
        assert!(
            report.protection_wins(),
            "loss points: {:#?}",
            report.loss_points
        );
        // The protection arm held standing state and used it; the
        // reactive arm held none.
        let prot = &report.modes[0];
        let react = &report.modes[1];
        assert_eq!(prot.mode, ProtectMode::Protection);
        assert!(prot.protection.plans_held > 0, "protection holds plans");
        assert!(prot.protection.activations > 0, "plans actually fired");
        assert_eq!(react.protection.plans_held, 0, "reactive holds no plans");
        // The grid is fully populated.
        assert_eq!(
            report.cells.len(),
            run.config.loss_points.len() * PROTECT_FAMILIES.len() * ProtectMode::ALL.len()
        );
        assert_eq!(
            report.outcomes.len(),
            ProtectMode::ALL.len() * Outcome::ALL.len()
        );
        for mode in ProtectMode::ALL {
            let total: u32 = report
                .outcomes
                .iter()
                .filter(|r| r.mode == mode)
                .map(|r| r.count)
                .sum();
            assert_eq!(total, report.cases, "{mode}: every case lands in one class");
        }
        assert!(report.synopsis().contains("protection p50"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = ProtectReport::from_run(&run_protect(&smoke_config(), 2).unwrap());
        let back: ProtectReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(report, back);
    }

    /// The directed two-failure regression, at the campaign layer: the
    /// upstream link and the relay of the *primary* (most conservative)
    /// backup plan die together, so the activated plan fails against the
    /// dead relay — caught by whichever signal lands first, the
    /// activation-confirmation window or the relay probe's retry
    /// exhaustion — is discarded as stale, and the next cached plan in
    /// the chain restores through the other relay. That is
    /// [`Outcome::RestoredAfterReplan`] — a success class — and any
    /// exhaustions it produces must not fail the health gate.
    ///
    /// The chain needs two *distinct* paths, so the graph is shaped to
    /// split the contingencies: the node-protecting plan must avoid the
    /// upstream `a` entirely (relay `x`, straight to the source), while
    /// the cheaper link-only plan re-attaches at `a` through relay `b` —
    /// a path the conservative contingency forbids.
    #[test]
    fn stale_plan_discard_classifies_as_restored_after_replan() {
        let mut g = Graph::with_nodes(5);
        let ids: Vec<NodeId> = g.node_ids().collect();
        let (s, a, d, b, x) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        g.add_link(s, a, 0.5).unwrap();
        let l_ad = g.add_link(a, d, 0.5).unwrap();
        // Conservative detour: d-x-s, avoiding a wholesale.
        g.add_link(d, x, 1.0).unwrap();
        g.add_link(x, s, 1.0).unwrap();
        // Cheaper link-only detour: d-b-a, re-attaching at a.
        g.add_link(d, b, 0.6).unwrap();
        g.add_link(b, a, 0.6).unwrap();
        let session =
            ProtoSession::build(&g, s, &[d], TreeProtocol::Smrp(SmrpConfig::default())).unwrap();
        let multi = MultiSession::from_sessions(vec![session]);
        let cfg = ProtectConfig {
            nodes: 5,
            group_size: 1,
            run_until_ms: 3000.0,
            ..ProtectConfig::default()
        };
        // Cut the upstream link and kill the conservative plan's relay.
        let mut scenario = FailureScenario::link(l_ad);
        scenario.fail_node(x);
        let pc = ProtectCase {
            case: FaultCase {
                id: 0,
                family: FaultFamily::KLink,
                seed: 1,
                scenario,
                timing: Timing::persistent(),
                channel: ChannelSpec::perfect(),
            },
            loss: 0.0,
        };
        let prot = evaluate_protect(&g, &multi, &cfg, &pc, ProtectMode::Protection);
        assert_eq!(prot.outcome, Outcome::RestoredAfterReplan, "{prot:#?}");
        assert_eq!(prot.restored, prot.affected);
        assert!(prot.protection.stale_discards >= 1);
        // The reactive arm plans around both failures up front: no
        // discard, clean local restoration.
        let react = evaluate_protect(&g, &multi, &cfg, &pc, ProtectMode::Reactive);
        assert_eq!(react.outcome, Outcome::RestoredLocalDetour, "{react:#?}");
        assert_eq!(react.protection.stale_discards, 0);
        // And the report-side health gate treats the replan exhaustions
        // as legitimate.
        let run = ProtectRun {
            config: cfg,
            results: vec![ProtectCaseResult {
                case: pc,
                protection: prot,
                reactive: react,
            }],
        };
        let report = ProtectReport::from_run(&run);
        assert!(report.is_healthy(), "modes: {:#?}", report.modes);
        assert_eq!(
            report
                .outcomes
                .iter()
                .find(|r| {
                    r.mode == ProtectMode::Protection && r.outcome == Outcome::RestoredAfterReplan
                })
                .unwrap()
                .count,
            1
        );
    }
}
