//! Golden scenario traces: scripted failure experiments exported as
//! self-contained JSON files, with the sim's converged outcome embedded.
//!
//! A golden trace captures everything a *different host* of the protocol
//! needs to replay one scenario — topology, per-group preloaded tree
//! state, installed recovery plans, the failure schedule, the channel's
//! loss parameters and the run horizon — plus the digest of the final
//! state the simulator converged to. The `smrpd` daemon replays traces
//! over real transports and asserts digest identity
//! ([`smrp_proto::SessionState`]), making the sim the model checker for
//! the deployable artifact. The files are also handy standalone: a
//! minimal, human-readable reproducer of one scripted experiment.
//!
//! Determinism matters: `faultlab --dump-trace <dir>` must emit
//! byte-identical files regardless of `--jobs`, so trace generation
//! follows the campaign runner's pattern — work-stealing over a fixed
//! scenario list, results reassembled in list order.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use smrp_core::paper;
use smrp_core::recovery::{self, DetourKind};
use smrp_net::{FailureScenario, Graph, LinkWeights, NodeId};
use smrp_proto::snapshot::{AffectedGroup, SessionState};
use smrp_proto::{
    FailureTiming, InjectionTiming, MultiSession, ProtoSession, RecoveryStrategy, TreeProtocol,
};
use smrp_sim::{ChannelSpec, SimTime};

/// Version of the trace file format.
///
/// History: v1 had no per-plan `path_delay_ns`; v2 carries it so a
/// replaying host can restore the full `PlanConfirm` window instead of
/// falling back to the detection-horizon floor. v1 files still load,
/// with the delay defaulting to zero.
pub const TRACE_VERSION: u32 = 2;

/// One link of the trace's topology. Link ids are implicit: the link at
/// list index `i` is `LinkId(i)` of the rebuilt graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLink {
    /// Lower endpoint.
    pub a: u32,
    /// Higher endpoint.
    pub b: u32,
    /// Propagation delay.
    pub delay: f64,
    /// Tree-construction cost.
    pub cost: f64,
}

/// One node's preloaded tree state within a group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceNodeState {
    /// The node.
    pub node: u32,
    /// Upstream (parent) interface, `None` at the source.
    pub upstream: Option<u32>,
    /// Downstream (child) interfaces.
    pub downstream: Vec<u32>,
    /// Whether the node is a member (receiver).
    pub member: bool,
    /// The node's `SHR(S, R)` on the initial tree, for introspection and
    /// query-join responses.
    pub shr: u32,
}

/// One member's precomputed recovery plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracePlan {
    /// The disconnected member the plan belongs to.
    pub member: u32,
    /// Restoration path, member first, attach point last.
    pub path: Vec<u32>,
    /// Delay before pushing the graft (zero for local detour).
    pub wait_ns: u64,
    /// One-way propagation delay of the restoration path. Sizes the
    /// replaying host's `PlanConfirm` window exactly as the simulator's
    /// (`2 × detection horizon + 2 × path delay`); zero — the v1 reading —
    /// shrinks the window to its detection-horizon floor.
    pub path_delay_ns: u64,
}

/// One multicast group of the scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceGroup {
    /// The group id.
    pub group: u32,
    /// The source node.
    pub source: u32,
    /// The member set.
    pub members: Vec<u32>,
    /// Initial tree state, one entry per on-tree node, ascending.
    pub nodes: Vec<TraceNodeState>,
    /// Recovery plans to install before the run.
    pub plans: Vec<TracePlan>,
    /// Members the scripted failure disconnects (the restoration
    /// denominator).
    pub affected: Vec<u32>,
}

/// The scripted failure: what breaks, when, and whether it heals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceFailure {
    /// Indices into [`GoldenTrace::links`] of links that fail.
    pub links: Vec<u32>,
    /// Nodes that fail.
    pub nodes: Vec<u32>,
    /// Injection instant, nanoseconds on the protocol timeline.
    pub fail_at_ns: u64,
    /// Repair instant; `None` means the failure is persistent.
    pub repair_at_ns: Option<u64>,
}

/// The control channel's degradation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceChannel {
    /// Uniform per-transmission loss probability (0 = perfect).
    pub loss: f64,
    /// Seed of the loss process.
    pub seed: u64,
}

/// A complete golden scenario: scripted inputs plus the sim's expected
/// outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenTrace {
    /// Trace format version ([`TRACE_VERSION`]).
    pub version: u32,
    /// Scenario name (doubles as the dump's file stem).
    pub name: String,
    /// Node count of the topology.
    pub nodes: u32,
    /// Topology links; index = link id.
    pub links: Vec<TraceLink>,
    /// The hosted groups.
    pub groups: Vec<TraceGroup>,
    /// The failure schedule.
    pub failure: TraceFailure,
    /// The channel's degradation parameters.
    pub channel: TraceChannel,
    /// Run horizon, nanoseconds: capture happens here.
    pub horizon_ns: u64,
    /// The simulator's converged final state.
    pub expected: SessionState,
    /// Digest of `expected` — what a conforming replay must reproduce.
    pub expected_digest: String,
}

impl GoldenTrace {
    /// Rebuilds the topology. Link ids come out equal to list indices.
    ///
    /// # Panics
    ///
    /// Panics if the trace's link list is not a valid graph (self loops,
    /// duplicate links, out-of-range endpoints).
    pub fn graph(&self) -> Graph {
        let mut g = Graph::with_nodes(self.nodes as usize);
        for l in &self.links {
            g.add_link_weighted(
                NodeId::new(l.a as usize),
                NodeId::new(l.b as usize),
                LinkWeights {
                    delay: l.delay,
                    cost: l.cost,
                },
            )
            .expect("golden trace carries a valid topology");
        }
        g
    }

    /// The failure scenario in `smrp-net` terms.
    pub fn scenario(&self) -> FailureScenario {
        let mut s = FailureScenario::none();
        for &l in &self.failure.links {
            s.fail_link(smrp_net::LinkId::new(l as usize));
        }
        for &n in &self.failure.nodes {
            s.fail_node(NodeId::new(n as usize));
        }
        s
    }

    /// The per-group affected-member lists in snapshot terms.
    pub fn affected(&self) -> Vec<AffectedGroup> {
        self.groups
            .iter()
            .map(|g| AffectedGroup {
                group: g.group,
                affected: g.affected.clone(),
            })
            .collect()
    }

    /// Nodes that fail and never heal — excluded from state capture.
    pub fn down_nodes(&self) -> BTreeSet<NodeId> {
        if self.failure.repair_at_ns.is_some() {
            BTreeSet::new()
        } else {
            self.failure
                .nodes
                .iter()
                .map(|&n| NodeId::new(n as usize))
                .collect()
        }
    }

    /// Serializes to the canonical JSON representation (stable field
    /// order, so equal traces are byte-equal).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("trace serializes");
        s.push('\n');
        s
    }

    /// Parses a trace from JSON, rejecting unknown format versions.
    ///
    /// Older versions are upgraded in place: a v1 file loads with every
    /// plan's `path_delay_ns` defaulting to zero, and the returned trace
    /// reports the current [`TRACE_VERSION`].
    ///
    /// # Errors
    ///
    /// Returns an error string for malformed JSON or a version newer than
    /// this reader.
    pub fn from_json(json: &str) -> Result<GoldenTrace, String> {
        let mut value: serde::Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let version = value
            .get("version")
            .and_then(serde::Value::as_u64)
            .unwrap_or(0) as u32;
        if version == 0 || version > TRACE_VERSION {
            return Err(format!(
                "unsupported trace version {version} (expected 1..={TRACE_VERSION})"
            ));
        }
        if version < 2 {
            upgrade_v1_plans(&mut value);
        }
        let mut trace = GoldenTrace::deserialize(&value).map_err(|e| e.to_string())?;
        trace.version = TRACE_VERSION;
        Ok(trace)
    }

    /// Reads a trace file.
    ///
    /// # Errors
    ///
    /// I/O errors pass through; parse failures surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<GoldenTrace> {
        let json = std::fs::read_to_string(path)?;
        GoldenTrace::from_json(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// In-place v1 → v2 upgrade: every plan map gains `path_delay_ns: 0`
/// (v1 writers never knew the path delay, so the detection-horizon floor
/// is the only faithful reading).
fn upgrade_v1_plans(value: &mut serde::Value) {
    use serde::Value;
    fn entry_mut<'v>(v: &'v mut Value, key: &str) -> Option<&'v mut Value> {
        match v {
            Value::Map(entries) => entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    let Some(Value::Seq(groups)) = entry_mut(value, "groups") else {
        return;
    };
    for group in groups {
        let Some(Value::Seq(plans)) = entry_mut(group, "plans") else {
            continue;
        };
        for plan in plans {
            if let Value::Map(entries) = plan {
                if !entries.iter().any(|(k, _)| k == "path_delay_ns") {
                    entries.push(("path_delay_ns".to_string(), Value::U64(0)));
                }
            }
        }
    }
}

/// A scripted scenario: the inputs [`build_trace`] turns into a
/// [`GoldenTrace`] by running the simulator.
struct Script {
    name: &'static str,
    graph: Graph,
    /// `(source, members)` per group.
    sessions: Vec<(NodeId, Vec<NodeId>)>,
    scenario: FailureScenario,
    channel: TraceChannel,
    fail_at: SimTime,
    horizon: SimTime,
}

/// The committed golden scenario scripts, in dump order.
fn scripts() -> Vec<Script> {
    let mut out = Vec::new();

    // 1. The paper's Figure 1: SPF tree S → {C, D}, cut A–D, local-detour
    // recovery in tens of milliseconds.
    {
        let (graph, nodes) = paper::figure1_graph();
        let scenario =
            FailureScenario::link(graph.link_between(nodes.a, nodes.d).expect("A–D exists"));
        out.push(Script {
            name: "figure1",
            graph,
            sessions: vec![(nodes.s, vec![nodes.c, nodes.d])],
            scenario,
            channel: TraceChannel { loss: 0.0, seed: 0 },
            fail_at: SimTime::from_ms(100.0),
            horizon: SimTime::from_ms(3000.0),
        });
    }

    // 2. Shared-fate SRLG: two sessions whose trees ride one conduit; the
    // conduit fails wholesale and both groups detour through the same
    // surviving relay (the topology of `tests/shared_fate.rs`).
    {
        let mut g = Graph::with_nodes(7);
        let n: Vec<NodeId> = g.node_ids().collect();
        let [s0, s1, x, y, m0, m1, d] = [n[0], n[1], n[2], n[3], n[4], n[5], n[6]];
        g.add_link(s0, x, 1.0).unwrap();
        g.add_link(s1, x, 1.0).unwrap();
        g.add_link(x, y, 1.0).unwrap();
        g.add_link(y, m0, 1.0).unwrap();
        g.add_link(y, m1, 1.0).unwrap();
        g.add_link(d, x, 1.0).unwrap();
        g.add_link(d, m0, 2.0).unwrap();
        g.add_link(d, m1, 2.0).unwrap();
        let srlg = [
            g.link_between(y, m0).unwrap(),
            g.link_between(y, m1).unwrap(),
        ];
        out.push(Script {
            name: "shared_fate_srlg",
            graph: g,
            sessions: vec![(s0, vec![m0]), (s1, vec![m1])],
            scenario: FailureScenario::links(srlg),
            channel: TraceChannel { loss: 0.0, seed: 0 },
            fail_at: SimTime::from_ms(100.0),
            horizon: SimTime::from_ms(3000.0),
        });
    }

    // 3. Figure 1 under a lossy control channel: same cut, 10% uniform
    // loss; the reliable layer must carry the recovery anyway.
    {
        let (graph, nodes) = paper::figure1_graph();
        let scenario =
            FailureScenario::link(graph.link_between(nodes.a, nodes.d).expect("A–D exists"));
        out.push(Script {
            name: "figure1_lossy",
            graph,
            sessions: vec![(nodes.s, vec![nodes.c, nodes.d])],
            scenario,
            channel: TraceChannel {
                loss: 0.10,
                seed: 0xC0FFEE,
            },
            fail_at: SimTime::from_ms(100.0),
            horizon: SimTime::from_ms(3000.0),
        });
    }

    out
}

/// Runs one script through the simulator and packages the result.
fn build_trace(script: &Script) -> GoldenTrace {
    let Script {
        name,
        graph,
        sessions,
        scenario,
        channel,
        fail_at,
        horizon,
    } = script;

    let built: Vec<ProtoSession<'_>> = sessions
        .iter()
        .map(|(source, members)| {
            ProtoSession::build(graph, *source, members, TreeProtocol::Spf)
                .expect("scripted session builds")
        })
        .collect();

    let chan = if channel.loss > 0.0 {
        ChannelSpec::uniform_loss(channel.loss, channel.seed)
    } else {
        ChannelSpec::perfect()
    };
    let timing = InjectionTiming::Once(FailureTiming::persistent(*fail_at));
    let multi = MultiSession::from_sessions(built.clone());
    let (report, procs) = multi.run_failure_capture(
        scenario,
        RecoveryStrategy::LocalDetour,
        timing,
        &chan,
        *horizon,
    );

    let mut groups = Vec::with_capacity(built.len());
    for (gi, sess) in built.iter().enumerate() {
        let tree = sess.tree();
        let mut nodes: Vec<TraceNodeState> = tree
            .on_tree_nodes()
            .map(|n| {
                let mut downstream: Vec<u32> =
                    tree.children(n).iter().map(|c| c.index() as u32).collect();
                downstream.sort_unstable();
                TraceNodeState {
                    node: n.index() as u32,
                    upstream: tree.parent(n).map(|p| p.index() as u32),
                    downstream,
                    member: tree.is_member(n),
                    shr: tree.shr(n),
                }
            })
            .collect();
        nodes.sort_unstable_by_key(|s| s.node);

        let plans: Vec<TracePlan> = sess
            .plan_recoveries(scenario, DetourKind::Local)
            .recoveries
            .iter()
            .map(|rec| TracePlan {
                member: rec.member().index() as u32,
                path: rec
                    .restoration_path()
                    .nodes()
                    .iter()
                    .map(|n| n.index() as u32)
                    .collect(),
                wait_ns: 0,
                path_delay_ns: SimTime::from_ms(rec.restoration_path().delay(graph)).as_ns(),
            })
            .collect();

        let mut affected: Vec<u32> = recovery::affected_members(graph, tree, scenario)
            .iter()
            .map(|m| m.index() as u32)
            .collect();
        affected.sort_unstable();

        groups.push(TraceGroup {
            group: gi as u32,
            source: sess.source().index() as u32,
            members: tree.members().map(|m| m.index() as u32).collect(),
            nodes,
            plans,
            affected,
        });
    }

    let affected: Vec<AffectedGroup> = groups
        .iter()
        .map(|g| AffectedGroup {
            group: g.group,
            affected: g.affected.clone(),
        })
        .collect();
    let down: BTreeSet<NodeId> = scenario.failed_nodes().collect();
    let data_interval = built[0].router_config().data_interval;
    let expected = SessionState::capture(&procs, &affected, &down, report.fail_at, data_interval);
    let expected_digest = expected.digest();

    GoldenTrace {
        version: TRACE_VERSION,
        name: (*name).to_string(),
        nodes: graph.node_count() as u32,
        links: graph
            .link_ids()
            .map(|l| {
                let link = graph.link(l);
                TraceLink {
                    a: link.a().index() as u32,
                    b: link.b().index() as u32,
                    delay: link.delay(),
                    cost: link.cost(),
                }
            })
            .collect(),
        groups,
        failure: TraceFailure {
            links: scenario.failed_links().map(|l| l.index() as u32).collect(),
            nodes: scenario.failed_nodes().map(|n| n.index() as u32).collect(),
            fail_at_ns: fail_at.as_ns(),
            repair_at_ns: None,
        },
        channel: channel.clone(),
        horizon_ns: horizon.as_ns(),
        expected,
        expected_digest,
    }
}

/// Generates every golden scenario, in dump order. Deterministic: same
/// code, same traces, byte for byte.
pub fn golden_scenarios() -> Vec<GoldenTrace> {
    scripts().iter().map(build_trace).collect()
}

/// Generates every golden scenario using up to `jobs` worker threads and
/// writes one `<name>.json` per scenario into `dir` (created if absent).
///
/// Output is byte-identical regardless of `jobs`: workers steal scripts
/// from a shared index, results are reassembled in script order, and
/// files are written sequentially.
///
/// # Errors
///
/// Propagates filesystem errors.
///
/// # Panics
///
/// Panics if `jobs` is zero.
pub fn dump_traces(dir: &Path, jobs: usize) -> io::Result<Vec<PathBuf>> {
    assert!(jobs > 0, "at least one worker is required");
    let scripts = scripts();
    let slots: Mutex<Vec<Option<GoldenTrace>>> = Mutex::new(vec![None; scripts.len()]);
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs.min(scripts.len()).max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= scripts.len() {
                    break;
                }
                let trace = build_trace(&scripts[i]);
                slots.lock().expect("no poisoned workers")[i] = Some(trace);
            });
        }
    });

    std::fs::create_dir_all(dir)?;
    let traces = slots.into_inner().expect("workers finished");
    let mut paths = Vec::with_capacity(traces.len());
    for trace in traces {
        let trace = trace.expect("every slot filled");
        let path = dir.join(format!("{}.json", trace.name));
        std::fs::write(&path, trace.to_json())?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_trace_round_trips_through_json() {
        let traces = golden_scenarios();
        assert_eq!(traces.len(), 3);
        let fig1 = &traces[0];
        assert_eq!(fig1.name, "figure1");
        assert_eq!(fig1.version, TRACE_VERSION);
        assert!(!fig1.expected_digest.is_empty());
        // Round trip.
        let back = GoldenTrace::from_json(&fig1.to_json()).unwrap();
        assert_eq!(&back, fig1);
        // The rebuilt graph matches the original link count, and the
        // scenario targets real links.
        let g = fig1.graph();
        assert_eq!(g.link_count(), fig1.links.len());
        assert!(!fig1.scenario().is_empty());
    }

    #[test]
    fn unknown_trace_version_is_rejected() {
        let mut trace = golden_scenarios().remove(0);
        trace.version = TRACE_VERSION + 1;
        let err = GoldenTrace::from_json(&trace.to_json()).unwrap_err();
        assert!(err.contains("unsupported trace version"), "{err}");
    }

    #[test]
    fn plans_carry_their_path_delay() {
        let traces = golden_scenarios();
        let delays: Vec<u64> = traces
            .iter()
            .flat_map(|t| &t.groups)
            .flat_map(|g| &g.plans)
            .map(|p| p.path_delay_ns)
            .collect();
        assert!(!delays.is_empty());
        // Every scripted restoration detour has real propagation delay.
        assert!(delays.iter().all(|&d| d > 0), "{delays:?}");
        // And it round-trips exactly.
        let back = GoldenTrace::from_json(&traces[0].to_json()).unwrap();
        assert_eq!(back, traces[0]);
    }

    #[test]
    fn v1_traces_load_with_zero_path_delay() {
        let trace = golden_scenarios().remove(0);
        // Render a v1 file: version 1, no `path_delay_ns` keys anywhere.
        use serde::Value;
        fn strip(v: &mut Value) {
            match v {
                Value::Map(entries) => {
                    entries.retain(|(k, _)| k != "path_delay_ns");
                    for (k, v) in entries {
                        if k == "version" {
                            *v = Value::U64(1);
                        }
                        strip(v);
                    }
                }
                Value::Seq(items) => items.iter_mut().for_each(strip),
                _ => {}
            }
        }
        let mut value = trace.serialize();
        strip(&mut value);
        let v1 = serde_json::to_string_pretty(&value).unwrap();

        let back = GoldenTrace::from_json(&v1).expect("v1 traces still load");
        assert_eq!(back.version, TRACE_VERSION);
        assert!(back
            .groups
            .iter()
            .flat_map(|g| &g.plans)
            .all(|p| p.path_delay_ns == 0));
        // Everything else survives the upgrade untouched.
        assert_eq!(back.expected_digest, trace.expected_digest);
        assert_eq!(back.groups.len(), trace.groups.len());
    }

    #[test]
    fn every_golden_scenario_restores_in_the_sim() {
        for trace in golden_scenarios() {
            for g in &trace.expected.groups {
                assert!(
                    g.stranded.is_empty(),
                    "{}: group {} stranded {:?}",
                    trace.name,
                    g.group,
                    g.stranded
                );
                assert!(!g.restored.is_empty() || g.nodes.is_empty());
            }
        }
    }
}
