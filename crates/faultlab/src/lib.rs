#![warn(missing_docs)]

//! Correlated fault-injection campaigns for the SMRP reproduction.
//!
//! The paper (§4) evaluates SMRP under single persistent failures. This
//! crate stress-tests the whole stack far beyond that regime with seeded
//! Monte-Carlo campaigns of *correlated* failures, and audits every
//! recovery against the protocol's safety invariants:
//!
//! * [`generate`] — deterministic scenario generation: `k`-random-link,
//!   `k`-random-node, shared-risk link groups derived from the topology's
//!   geometry (links sharing a conduit cell fail together), regional
//!   outages (all nodes within a radius of an epicenter), each drawn
//!   persistent or transient — plus three control-plane-degradation
//!   families: cuts under ambient uniform message loss, gray links that
//!   stay up but drop heavily, and components flapping through repeated
//!   down/up cycles;
//! * [`campaign`] — the parallel Monte-Carlo runner: every case is
//!   evaluated against both SMRP (local detour) and the SPF baseline
//!   (global detour), classified into an [`Outcome`], and timed through
//!   the message-level simulator. Campaigns host one or many concurrent
//!   multicast sessions (`CampaignConfig::groups`): every failure is
//!   injected once against all groups sharing the substrate, each group
//!   is classified independently, and the aggregate reads as the worst
//!   group. Results are deterministic in the base seed and independent
//!   of the worker-thread count;
//! * [`audit`] — the invariant auditor: reconstructs the post-recovery
//!   tree and checks structure (acyclicity + SHR/N bookkeeping via the
//!   `MulticastTree::validate` oracle), member coverage against the
//!   physical-reachability oracle, absence of failed links, and that
//!   every detour lands on the surviving tree. Violations become minimal
//!   reproducers (case seed + scenario JSON);
//! * [`report`] — stable JSON campaign reports with per-family×protocol
//!   outcome tables, restoration-latency distributions and control-plane
//!   health summaries (loss, retransmissions, retry-budget exhaustions);
//! * [`hierarchy`] — wire-level campaigns over N-level recovery domains
//!   with aggregated member populations: every active domain's session
//!   runs as one group of a shared-substrate `MultiSession`, repairs are
//!   installed via the explicit-plan seam, and every case's full message
//!   trace is audited against the DomainLocality confinement invariant;
//! * [`protect`] — the protection-vs-restoration axis: SMRP with
//!   precomputed, locally-activated backup detours against SMRP with
//!   on-demand detour search, swept over single-link, single-node and
//!   shared-risk-group failures at multiple ambient-loss points, with
//!   restoration-latency medians, control overhead and protection-plane
//!   state/safety counters per mode.
//!
//! ```
//! use smrp_faultlab::{run_campaign, CampaignConfig, CampaignReport};
//!
//! let cfg = CampaignConfig {
//!     nodes: 30,
//!     group_size: 8,
//!     scenarios: 8,
//!     ..CampaignConfig::default()
//! };
//! let run = run_campaign(&cfg, 2).expect("topology generates");
//! let report = CampaignReport::from_run(&run);
//! assert!(report.is_clean());
//! ```

pub mod audit;
pub mod campaign;
pub mod generate;
pub mod hierarchy;
pub mod protect;
pub mod report;
pub mod trace;

pub use audit::{audit_recovery, rebuild_after_recovery, Invariant, Violation};
pub use campaign::{
    evaluate_case, run_campaign, run_campaign_with_backend, CampaignConfig, CampaignRun,
    CaseResult, GroupOutcome, Outcome, ProtoKind, ProtoOutcome,
};
pub use generate::{
    derive_srlgs, generate_case, generate_mix, shared_fate_srlgs, FaultCase, FaultFamily,
    GeneratorConfig, Timing,
};
pub use hierarchy::{
    run_hierarchy, run_hierarchy_with_backend, DomainSlice, HierarchyCase, HierarchyCaseResult,
    HierarchyConfig, HierarchyLatency, HierarchyOutcome, HierarchyReport, HierarchyRun,
};
pub use protect::{
    evaluate_protect, run_protect, LossPointSummary, ModeOutcomeRow, ModeSummary, ProtectCase,
    ProtectCaseResult, ProtectCell, ProtectConfig, ProtectEval, ProtectMode, ProtectReport,
    ProtectRun, PROTECT_FAMILIES,
};
pub use report::{
    CampaignReport, CaseRow, FamilyLatency, GroupSummary, HealthSummary, LatencySummary,
    OutcomeCounts, Reproducer,
};
pub use trace::{dump_traces, golden_scenarios, GoldenTrace, TRACE_VERSION};
