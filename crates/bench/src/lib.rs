#![warn(missing_docs)]

//! Shared helpers for the benchmark targets.
//!
//! `cargo bench --workspace` regenerates every figure of the paper's
//! evaluation (in quick mode, so the whole suite stays fast) and runs
//! Criterion micro-benchmarks over the algorithmic building blocks. For
//! paper-scale sample counts, set `SMRP_BENCH_FULL=1` or run the binaries
//! in `smrp-experiments` without `--quick`.

use smrp_experiments::Effort;

/// Effort used by the figure benches: quick unless `SMRP_BENCH_FULL` is
/// set, so `cargo bench` finishes promptly by default.
pub fn bench_effort() -> Effort {
    if std::env::var_os("SMRP_BENCH_FULL").is_some() {
        Effort::Paper
    } else {
        Effort::Quick
    }
}

/// Prints the standard bench header.
pub fn header(figure: &str, claim: &str) {
    println!("==============================================================");
    println!("{figure}");
    println!("paper claim: {claim}");
    println!("==============================================================");
}
