//! `BENCH_scale`: the engine's perf trajectory across topology and group
//! scale.
//!
//! Sweeps n ∈ {400, 4k, 40k} transit-stub topologies × M ∈ {32, 256,
//! 1024} concurrent multicast groups. Each cell:
//!
//! 1. **builds** M shortest-path-tree sessions (timed → join throughput:
//!    arena-handle tree bookkeeping is the hot path);
//! 2. **cuts** one recoverable on-tree link from group 0's member path,
//!    identifies every group whose tree rides that link, plans each
//!    affected group's local detour and **audits** it against the
//!    faultlab invariants (cleanliness gate #1: zero violations) —
//!    unaffected sessions are dropped immediately so the resident set
//!    stays one tree, not M trees;
//! 3. **runs** the affected groups through the message-level simulator —
//!    integer-nanosecond clock, timer wheel, per-group router lanes —
//!    and checks that every affected member restores service with a
//!    zero-exhaustion reliable layer (cleanliness gates #2 and #3).
//!
//! The grid is reduced unless `SMRP_BENCH_FULL=1` (full sweep, the
//! committed `BENCH_scale.json`) — by default only the n=400 row runs so
//! `cargo bench` stays fast. `SMRP_SCALE_CELL=nxM` (e.g. `400x32`)
//! restricts the sweep to one cell for CI smoke jobs. Results append to
//! `BENCH_scale.json` at the repository root.

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;
use smrp_bench::header;
use smrp_core::recovery::DetourKind;
use smrp_faultlab::audit_recovery;
use smrp_net::transit_stub::TransitStubConfig;
use smrp_net::{FailureScenario, Graph, LinkId, NodeId};
use smrp_proto::{
    FailureTiming, InjectionTiming, MultiSession, ProtoSession, RecoveryStrategy, TreeProtocol,
};
use smrp_sim::{ChannelSpec, SimTime};

const GROUP_SIZE: usize = 8;
const FAIL_AT_MS: f64 = 100.0;
const RUN_UNTIL_MS: f64 = 1500.0;

/// Transit-stub shapes sized to land exactly on the sweep's node counts.
/// (Waxman is O(n²) in generation and too dense to sample at 40k.)
fn topology(n: usize) -> Graph {
    let cfg = match n {
        // 8 + 8·7·7
        400 => TransitStubConfig::new()
            .transit_nodes(8)
            .stubs_per_transit_node(7)
            .stub_nodes(7),
        // 40 + 40·9·11
        4_000 => TransitStubConfig::new()
            .transit_nodes(40)
            .stubs_per_transit_node(9)
            .stub_nodes(11),
        // 100 + 100·21·19
        40_000 => TransitStubConfig::new()
            .transit_nodes(100)
            .stubs_per_transit_node(21)
            .stub_nodes(19),
        other => panic!("no transit-stub shape for n={other}"),
    };
    let graph = cfg
        .seed(0x5CA1E + n as u64)
        .generate()
        .unwrap()
        .into_graph();
    assert_eq!(graph.node_count(), n, "shape must land on the target size");
    graph
}

/// Deterministic per-group membership: sources and members stride the id
/// space with a group-dependent offset (Knuth multiplicative hash), so
/// groups overlap on the substrate without coinciding.
fn group_nodes(n: usize, g: usize) -> (NodeId, Vec<NodeId>) {
    let base = (g.wrapping_mul(2_654_435_761)) % n;
    let step = (n / (GROUP_SIZE + 1)).max(1);
    let source = NodeId::new(base);
    let mut members = Vec::with_capacity(GROUP_SIZE);
    let mut idx = base;
    while members.len() < GROUP_SIZE {
        idx = (idx + step) % n;
        let cand = NodeId::new(idx);
        if cand == source || members.contains(&cand) {
            idx += 1;
            continue;
        }
        members.push(cand);
    }
    (source, members)
}

/// Picks the first link on group 0's member path whose cut has a local
/// detour for every fragment (the paper's recoverable-failure regime;
/// cornered and partitioned cuts are faultlab's department).
fn recoverable_cut(graph: &Graph, session: &ProtoSession<'_>, member: NodeId) -> LinkId {
    let path = session
        .tree()
        .path_from_source(member)
        .expect("member is on its own tree");
    for link in path.links(graph) {
        let plans = session.plan_recoveries(&FailureScenario::link(link), DetourKind::Local);
        if !plans.recoveries.is_empty()
            && plans.cornered_roots.is_empty()
            && plans.unrecoverable.is_empty()
        {
            return link;
        }
    }
    panic!("no recoverable link on group 0's member path");
}

#[derive(Serialize)]
struct Cell {
    nodes: usize,
    groups: usize,
    group_size: usize,
    build_ms: f64,
    joins_per_sec: f64,
    affected_groups: usize,
    plan_audit_ms: f64,
    violations: usize,
    sim_ms: f64,
    messages_delivered: u64,
    messages_per_sec: f64,
    affected_members: usize,
    restored_members: usize,
    retry_exhaustions: u64,
    clean: bool,
}

#[derive(Serialize)]
struct Report {
    sweep: String,
    fail_at_ms: f64,
    run_until_ms: f64,
    cells: Vec<Cell>,
}

fn run_cell(n: usize, m: usize) -> Cell {
    let graph = topology(n);

    // Phase 1+2 share one pass so at most one tree is resident per step.
    let mut build_ms = 0.0;
    let mut plan_audit_ms = 0.0;
    let mut violations = 0usize;
    let mut cut: Option<LinkId> = None;
    let mut affected = Vec::new();
    for g in 0..m {
        let (source, members) = group_nodes(n, g);
        let t = Instant::now();
        let session =
            ProtoSession::build(&graph, source, &members, TreeProtocol::Spf).expect("connected");
        build_ms += t.elapsed().as_secs_f64() * 1e3;

        let link = *cut.get_or_insert_with(|| recoverable_cut(&graph, &session, members[0]));
        let (a, b) = graph.link(link).endpoints();
        let tree = session.tree();
        let rides_cut = tree.parent(a) == Some(b) || tree.parent(b) == Some(a);
        if !rides_cut {
            continue; // session (and its tree) dropped here
        }

        let t = Instant::now();
        let scenario = FailureScenario::link(link);
        let plans = session.plan_recoveries(&scenario, DetourKind::Local);
        violations += audit_recovery(&graph, session.tree(), &scenario, &plans).len();
        plan_audit_ms += t.elapsed().as_secs_f64() * 1e3;
        affected.push(session);
    }
    let affected_groups = affected.len();
    assert!(affected_groups >= 1, "group 0 rides its own cut");

    // Phase 3: the affected groups contend in one shared simulator.
    let scenario = FailureScenario::link(cut.unwrap());
    let multi = MultiSession::from_sessions(affected);
    let t = Instant::now();
    let report = multi.run_failure_spec(
        &scenario,
        RecoveryStrategy::LocalDetour,
        InjectionTiming::Once(FailureTiming::persistent(SimTime::from_ms(FAIL_AT_MS))),
        &ChannelSpec::perfect(),
        SimTime::from_ms(RUN_UNTIL_MS),
    );
    let sim_ms = t.elapsed().as_secs_f64() * 1e3;
    black_box(&report);

    let affected_members: usize = report.groups.iter().map(|g| g.restorations.len()).sum();
    let restored_members: usize = report
        .groups
        .iter()
        .flat_map(|g| &g.restorations)
        .filter(|(_, l)| l.is_some())
        .count();
    Cell {
        nodes: n,
        groups: m,
        group_size: GROUP_SIZE,
        build_ms,
        joins_per_sec: (m * GROUP_SIZE) as f64 / (build_ms / 1e3),
        affected_groups,
        plan_audit_ms,
        violations,
        sim_ms,
        messages_delivered: report.messages_delivered,
        messages_per_sec: report.messages_delivered as f64 / (sim_ms / 1e3),
        affected_members,
        restored_members,
        retry_exhaustions: report.health.retry_exhaustions,
        clean: violations == 0
            && report.all_restored()
            && report.health.retry_exhaustions == 0
            && affected_members == restored_members,
    }
}

fn grid() -> Vec<(usize, usize)> {
    if let Ok(cell) = std::env::var("SMRP_SCALE_CELL") {
        let (n, m) = cell
            .split_once('x')
            .expect("SMRP_SCALE_CELL must look like 400x32");
        return vec![(n.parse().expect("nodes"), m.parse().expect("groups"))];
    }
    let ns: &[usize] = if std::env::var_os("SMRP_BENCH_FULL").is_some() {
        &[400, 4_000, 40_000]
    } else {
        &[400]
    };
    let mut cells = Vec::new();
    for &n in ns {
        for m in [32, 256, 1024] {
            cells.push((n, m));
        }
    }
    cells
}

fn main() {
    header(
        "BENCH_scale: n × M sweep over the integer-time wheel engine",
        "join throughput, detour planning + invariant audit, and shared \
         message-level recovery must stay clean as topology and group \
         count scale",
    );

    let mut report = Report {
        sweep: format!(
            "transit-stub topologies, {GROUP_SIZE}-member SPF groups, one \
             recoverable cut shared by every affected group"
        ),
        fail_at_ms: FAIL_AT_MS,
        run_until_ms: RUN_UNTIL_MS,
        cells: Vec::new(),
    };
    for (n, m) in grid() {
        let cell = run_cell(n, m);
        println!(
            "n={n:<6} M={m:<5} build {build:>9.1} ms ({joins:>9.0} joins/s)   \
             affected {aff:>3}   sim {sim:>8.1} ms ({msgs:>9.0} msg/s)   \
             restored {res}/{affm}   violations {v}   clean={clean}",
            build = cell.build_ms,
            joins = cell.joins_per_sec,
            aff = cell.affected_groups,
            sim = cell.sim_ms,
            msgs = cell.messages_per_sec,
            res = cell.restored_members,
            affm = cell.affected_members,
            v = cell.violations,
            clean = cell.clean,
        );
        assert!(cell.clean, "cell n={n} M={m} is not clean");
        report.cells.push(cell);
    }

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scale.json");
    smrp_experiments::report::write_json(&path, &report).expect("write BENCH_scale.json");
    println!("wrote {}", path.display());
}
