//! Criterion micro-benchmarks over the algorithmic building blocks.
//!
//! These quantify the per-operation costs that DESIGN.md's design notes
//! reason about: one sink-constrained Dijkstra per SMRP join, an `O(N)`
//! stats refresh per tree mutation, one multi-target Dijkstra per local
//! detour.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use smrp_core::recovery::{self, DetourKind};
use smrp_core::{SmrpConfig, SmrpSession, SpfSession};
use smrp_net::waxman::WaxmanConfig;
use smrp_net::{dijkstra, FailureScenario, Graph, NodeId};

fn topology() -> Graph {
    WaxmanConfig::new(100)
        .alpha(0.2)
        .seed(99)
        .generate()
        .expect("valid parameters")
        .into_graph()
}

fn members(graph: &Graph, count: usize) -> (NodeId, Vec<NodeId>) {
    // Deterministic spread: source is node 0, members stride the id space.
    let n = graph.node_count();
    let source = NodeId::new(0);
    let members = (1..=count)
        .map(|i| NodeId::new(i * (n - 1) / count))
        .collect();
    (source, members)
}

fn bench_dijkstra(c: &mut Criterion) {
    let g = topology();
    let src = NodeId::new(0);
    let dst = NodeId::new(g.node_count() - 1);
    c.bench_function("dijkstra/point_to_point_n100", |b| {
        b.iter(|| dijkstra::shortest_path(black_box(&g), src, dst))
    });
    c.bench_function("dijkstra/full_tree_n100", |b| {
        b.iter(|| dijkstra::ShortestPathTree::compute(black_box(&g), src))
    });
}

fn bench_tree_construction(c: &mut Criterion) {
    let g = topology();
    let (source, members) = members(&g, 30);
    c.bench_function("build/smrp_tree_30_members", |b| {
        b.iter(|| {
            let mut sess =
                SmrpSession::new(&g, source, SmrpConfig::default()).expect("valid session");
            for &m in &members {
                sess.join(m).expect("member joins");
            }
            black_box(sess.tree().member_count())
        })
    });
    c.bench_function("build/spf_tree_30_members", |b| {
        b.iter(|| {
            let mut sess = SpfSession::new(&g, source).expect("valid session");
            for &m in &members {
                sess.join(m).expect("member joins");
            }
            black_box(sess.tree().member_count())
        })
    });
}

fn bench_reshape(c: &mut Criterion) {
    let g = topology();
    let (source, members) = members(&g, 30);
    let mut base = SmrpSession::new(
        &g,
        source,
        SmrpConfig {
            auto_reshape: false,
            ..SmrpConfig::default()
        },
    )
    .expect("valid session");
    for &m in &members {
        base.join(m).expect("member joins");
    }
    c.bench_function("reshape/full_sweep_30_members", |b| {
        b.iter_batched(
            || base.clone(),
            |mut sess| black_box(sess.reshape_sweep()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_recovery(c: &mut Criterion) {
    let g = topology();
    let (source, members) = members(&g, 30);
    let mut sess = SmrpSession::new(&g, source, SmrpConfig::default()).expect("valid session");
    for &m in &members {
        sess.join(m).expect("member joins");
    }
    let tree = sess.tree();
    let member = members[0];
    let link = recovery::worst_case_failure_for(&g, tree, member).expect("worst-case link");
    let scenario = FailureScenario::link(link);
    c.bench_function("recovery/local_detour", |b| {
        b.iter(|| recovery::recover(&g, tree, &scenario, member, DetourKind::Local))
    });
    c.bench_function("recovery/global_detour", |b| {
        b.iter(|| recovery::recover(&g, tree, &scenario, member, DetourKind::Global))
    });
    c.bench_function("recovery/affected_members", |b| {
        b.iter(|| recovery::affected_members(&g, tree, &scenario))
    });
}

fn bench_topology_generation(c: &mut Criterion) {
    c.bench_function("waxman/generate_n100_a02", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            WaxmanConfig::new(100)
                .alpha(0.2)
                .seed(seed)
                .generate()
                .expect("valid parameters")
                .node_count()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_dijkstra,
        bench_tree_construction,
        bench_reshape,
        bench_recovery,
        bench_topology_generation
}
criterion_main!(benches);
