//! Regenerates Figure 10 (effect of group size `N_G`).

use smrp_bench::{bench_effort, header};
use smrp_experiments::fig10;

fn main() {
    header(
        "Figure 10: effect of group size N_G",
        "steady ~20% recovery-path reduction at ~5% overhead across group \
         sizes, with a slight decline for larger groups",
    );
    let result = fig10::run(bench_effort());
    println!("{}", result.table());
    println!("measured: {}", result.summary());
}
