//! Criterion micro-benchmarks over the integer-time engine's hot paths.
//!
//! Where `micro.rs` times the *algorithmic* building blocks (Dijkstra,
//! tree construction, detour computation), these benches time the
//! *engine*: raw timer-wheel schedule/cancel/pop churn (the soft-state
//! refresh pattern — every timer is re-armed or cancelled, none expires
//! in place), a message-level join handshake, and the full Figure 1
//! recovery experiment under both timer backends. The wheel-vs-heap pair
//! is the trajectory number: identical semantics (see the
//! backend-equivalence tests), different dispatch cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use smrp_core::SmrpConfig;
use smrp_net::{FailureScenario, Graph, NodeId};
use smrp_proto::{
    FailureTiming, InjectionTiming, ProtoSession, RecoveryStrategy, Router, RouterConfig,
    TreeProtocol,
};
use smrp_sim::{ChannelSpec, NetSim, SimTime, TimerBackend, TimerWheel};

/// Soft-state churn: schedule a working set of timers, then repeatedly
/// cancel-and-re-arm the whole set one interval later — the SMRP
/// refresh/hello/RTO pattern where timers almost never fire in place.
fn bench_wheel_churn(c: &mut Criterion) {
    const LIVE: usize = 1024;
    const ROUNDS: usize = 16;
    c.bench_function("wheel/rearm_1k_timers_16_rounds", |b| {
        b.iter(|| {
            let mut wheel: TimerWheel<u32> = TimerWheel::new();
            let mut seq = 0u64;
            let mut now = SimTime::ZERO;
            let mut handles: Vec<_> = (0..LIVE)
                .map(|i| {
                    seq += 1;
                    wheel.schedule(
                        now + SimTime::from_ms(10.0 + i as f64 * 0.01),
                        seq,
                        i as u32,
                    )
                })
                .collect();
            for _ in 0..ROUNDS {
                now += SimTime::from_ms(1.0);
                for (i, h) in handles.iter_mut().enumerate() {
                    assert!(wheel.cancel(*h), "live handle cancels");
                    seq += 1;
                    *h = wheel.schedule(
                        now + SimTime::from_ms(10.0 + i as f64 * 0.01),
                        seq,
                        i as u32,
                    );
                }
            }
            black_box(wheel.len())
        })
    });
    c.bench_function("wheel/drain_1k_timers", |b| {
        b.iter(|| {
            let mut wheel: TimerWheel<u32> = TimerWheel::new();
            for i in 0..LIVE {
                wheel.schedule(SimTime::from_ms(i as f64 * 0.37), i as u64, i as u32);
            }
            let mut popped = 0u32;
            while let Some((_, _, v)) = wheel.pop() {
                popped = popped.wrapping_add(v);
            }
            black_box(popped)
        })
    });
}

/// Message-level join: a member grafts onto a running source through a
/// relay — reliable Setup envelopes, acks, and the periodic chains the
/// handshake arms.
fn bench_protocol_join(c: &mut Criterion) {
    let mut g = Graph::with_nodes(3);
    let ids: Vec<NodeId> = g.node_ids().collect();
    g.add_link(ids[0], ids[1], 1.0).unwrap();
    g.add_link(ids[1], ids[2], 1.0).unwrap();
    c.bench_function("engine/message_level_join_50ms", |b| {
        b.iter(|| {
            let mut routers: Vec<Router> = (0..3)
                .map(|_| Router::new(RouterConfig::default()))
                .collect();
            routers[ids[0].index()].set_source();
            let mut sim = NetSim::new(&g, routers);
            sim.with_node(ids[0], |r, ctx| r.start_timers(ctx));
            sim.with_node(ids[2], |r, ctx| {
                r.initiate_setup(ctx, vec![ids[2], ids[1], ids[0]], true)
            });
            sim.run_until(SimTime::from_ms(50.0));
            black_box(sim.node(ids[2]).deliveries().len())
        })
    });
}

/// The canonical Figure 1 recovery experiment end to end, once per
/// backend: tree build, timer start-up, cut at 100 ms, detection, graft,
/// restoration — ~3 s of simulated soft-state traffic.
fn bench_recovery_run(c: &mut Criterion) {
    let (graph, nodes) = smrp_core::paper::figure1_graph();
    let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
    let scenario = FailureScenario::link(l_ad);
    for (backend, name) in [
        (TimerBackend::Wheel, "wheel"),
        (TimerBackend::ReferenceHeap, "reference_heap"),
    ] {
        c.bench_function(&format!("engine/figure1_recovery_{name}"), |b| {
            let mut session = ProtoSession::build(
                &graph,
                nodes.s,
                &[nodes.c, nodes.d],
                TreeProtocol::Smrp(SmrpConfig::default()),
            )
            .unwrap();
            session.set_timer_backend(backend);
            b.iter(|| {
                let report = session.run_failure_spec(
                    &scenario,
                    RecoveryStrategy::LocalDetour,
                    InjectionTiming::Once(FailureTiming::persistent(SimTime::from_ms(100.0))),
                    &ChannelSpec::perfect(),
                    SimTime::from_ms(3000.0),
                );
                assert!(report.all_restored());
                black_box(report.restorations.len())
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_wheel_churn, bench_protocol_join, bench_recovery_run
}
criterion_main!(benches);
