//! `BENCH_hierarchy`: wire-level N-level recovery-domain campaigns across
//! hierarchy depth and aggregated receiver population.
//!
//! Sweeps levels ∈ {2, 3, 4} × population ∈ {10⁴, 10⁶}. Every cell runs a
//! full `smrp_faultlab::hierarchy` campaign: one `MultiSession` group per
//! active recovery domain over the shared substrate, repairs installed
//! through the explicit-plan seam, every case's complete message trace
//! audited against the DomainLocality invariant. A cell is **clean** only
//! if the campaign reports zero border crossings, full audit coverage and
//! no member left unrestored — the headline being the 4-level cell serving
//! a million aggregated receivers without a single cross-border control
//! message.
//!
//! The grid is reduced unless `SMRP_BENCH_FULL=1` (full sweep, the
//! committed `BENCH_hierarchy.json`). `SMRP_HIERARCHY_CELL=LxP` (e.g.
//! `3x10000`) restricts the sweep to one cell for CI smoke jobs. Results
//! write to `BENCH_hierarchy.json` at the repository root.

use std::time::Instant;

use serde::Serialize;
use smrp_bench::header;
use smrp_faultlab::{run_hierarchy, HierarchyConfig, HierarchyReport};

/// Per-depth topology shapes. Deeper trees shrink the per-level fanout so
/// the *domain count* (and with it the group count on the wire) grows
/// with depth while the node count stays simulable; scale in receivers
/// comes from the aggregated populations, not from more routers — that is
/// the point of Eq. 2's weighting.
fn config(levels: u32, population: u64) -> HierarchyConfig {
    let (root_nodes, fanout, domain_nodes, scenarios) = match levels {
        2 => (6, 4, 10, 32),
        3 => (4, 2, 8, 32),
        4 => (2, 1, 5, 32),
        other => panic!("no bench shape for levels={other}"),
    };
    HierarchyConfig {
        levels,
        root_nodes,
        fanout,
        domain_nodes,
        population,
        scenarios,
        base_seed: 0xB_E4C8 ^ u64::from(levels),
        ..HierarchyConfig::default()
    }
}

#[derive(Serialize)]
struct Cell {
    levels: u32,
    population: u64,
    nodes: usize,
    active_domains: usize,
    total_population: u64,
    cases: u32,
    confined_repairs: u32,
    escalated_elections: u32,
    unrepairable: u32,
    restored_members: u64,
    restoration_mean_ms: f64,
    restoration_p95_ms: f64,
    border_crossings: u64,
    cases_unaudited: u64,
    campaign_ms: f64,
    clean: bool,
    report: HierarchyReport,
}

#[derive(Serialize)]
struct Report {
    sweep: String,
    cells: Vec<Cell>,
}

fn run_cell(levels: u32, population: u64, jobs: usize) -> Cell {
    let cfg = config(levels, population);
    let t = Instant::now();
    let run = run_hierarchy(&cfg, jobs).expect("hierarchy topology generates");
    let campaign_ms = t.elapsed().as_secs_f64() * 1e3;
    let report = HierarchyReport::from_run(&run);
    let outcome = |k: &str| report.outcomes.get(k).copied().unwrap_or(0);
    Cell {
        levels,
        population,
        nodes: report.nodes,
        active_domains: report.active_domains,
        total_population: report.total_population,
        cases: report.cases,
        confined_repairs: outcome("confined-repair"),
        escalated_elections: outcome("escalated-election"),
        unrepairable: outcome("unrepairable"),
        restored_members: report.restoration.count,
        restoration_mean_ms: report.restoration.mean_ms,
        restoration_p95_ms: report.restoration.p95_ms,
        border_crossings: report.locality.border_crossings,
        cases_unaudited: report.locality.cases_unaudited,
        campaign_ms,
        clean: report.is_clean(),
        report,
    }
}

fn grid() -> Vec<(u32, u64)> {
    if let Ok(cell) = std::env::var("SMRP_HIERARCHY_CELL") {
        let (l, p) = cell
            .split_once('x')
            .expect("SMRP_HIERARCHY_CELL must look like 3x10000");
        return vec![(l.parse().expect("levels"), p.parse().expect("population"))];
    }
    let full = std::env::var_os("SMRP_BENCH_FULL").is_some();
    let levels: &[u32] = if full { &[2, 3, 4] } else { &[2] };
    let populations: &[u64] = if full {
        &[10_000, 1_000_000]
    } else {
        &[10_000]
    };
    let mut cells = Vec::new();
    for &l in levels {
        for &p in populations {
            cells.push((l, p));
        }
    }
    cells
}

fn main() {
    header(
        "BENCH_hierarchy: N-level recovery domains x aggregated populations",
        "failure repair must stay confined to the owning recovery domain \
         (zero cross-border control messages) at every depth, while \
         aggregated member populations scale receivers to planetary counts \
         without adding routers",
    );

    let jobs = std::thread::available_parallelism().map_or(1, usize::from);
    let mut report = Report {
        sweep: "levels x aggregated population; one MultiSession group per \
                active recovery domain, explicit-plan installs, full-trace \
                DomainLocality audit per case"
            .to_string(),
        cells: Vec::new(),
    };
    for (levels, population) in grid() {
        let cell = run_cell(levels, population, jobs);
        println!(
            "levels={levels} pop={population:<8} nodes={nodes:<5} domains={doms:<4} \
             receivers={recv:<8} repairs {rep:>3}+{el} elections  restored {res:>3} \
             (mean {mean:>6.2} ms)  crossings {bc}  {ms:>8.1} ms  clean={clean}",
            nodes = cell.nodes,
            doms = cell.active_domains,
            recv = cell.total_population,
            rep = cell.confined_repairs,
            el = cell.escalated_elections,
            res = cell.restored_members,
            mean = cell.restoration_mean_ms,
            bc = cell.border_crossings,
            ms = cell.campaign_ms,
            clean = cell.clean,
        );
        assert!(
            cell.clean,
            "cell levels={levels} population={population} is not clean"
        );
        report.cells.push(cell);
    }

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hierarchy.json");
    smrp_experiments::report::write_json(&path, &report).expect("write BENCH_hierarchy.json");
    println!("wrote {}", path.display());
}
