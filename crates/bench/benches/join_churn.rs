//! Join/leave/reshape churn: incremental maintenance vs the seed scheme.
//!
//! Measures the end-to-end cost of driving an SMRP session through a
//! membership churn workload at n ∈ {100, 400, 1600} Waxman topologies,
//! comparing two implementations of the bookkeeping layer:
//!
//! * **incremental** — the current code path: Eq. 2 delta propagation on
//!   every tree mutation plus the session's cached source SPT for
//!   `D_SPF` lookups and neighbor-query relay routes.
//! * **naive** — the replaced scheme, emulated faithfully at the tree
//!   level: a full `recompute_stats()` after every mutation, one full
//!   source-SPT Dijkstra per join/reshape (the old
//!   `dijkstra::distance` call), and — under the §3.3.1 neighbor-query
//!   mode — one source-SPT Dijkstra per off-tree neighbor per candidate
//!   enumeration (the loop-invariant recomputation that used to sit
//!   inside `neighbor_query_candidates`).
//!
//! Both drivers execute the identical deterministic op sequence and the
//! bench asserts they produce byte-identical trees, so the timing diff
//! isolates the bookkeeping change. Results are printed and written to
//! `BENCH_join_churn.json` at the repository root.

use std::hint::black_box;
use std::time::Instant;

use serde::Serialize;
use smrp_bench::header;
use smrp_core::select::{self, SelectionMode};
use smrp_core::{MulticastTree, SmrpConfig, SmrpSession};
use smrp_net::dijkstra::ShortestPathTree;
use smrp_net::waxman::WaxmanConfig;
use smrp_net::{Graph, NodeId};

const D_THRESH: f64 = 0.3;
const GROUP: usize = 30;
const CHURN_ROUNDS: usize = 30;
const REPS: u32 = 3;

fn topology(nodes: usize) -> Graph {
    WaxmanConfig::new(nodes)
        .alpha(0.2)
        .seed(4242)
        .generate()
        .expect("valid parameters")
        .into_graph()
}

fn members(graph: &Graph) -> (NodeId, Vec<NodeId>) {
    let n = graph.node_count();
    let source = NodeId::new(0);
    let members = (1..=GROUP)
        .map(|i| NodeId::new(i * (n - 1) / GROUP))
        .collect();
    (source, members)
}

/// One churn op. The sequence is fixed up front so both drivers replay it.
#[derive(Clone, Copy)]
enum Op {
    Join(NodeId),
    Leave(NodeId),
    Reshape(NodeId),
}

fn workload(graph: &Graph) -> (NodeId, Vec<Op>) {
    let (source, group) = members(graph);
    let mut ops: Vec<Op> = group.iter().map(|&m| Op::Join(m)).collect();
    for i in 0..CHURN_ROUNDS {
        let a = group[i % group.len()];
        let b = group[(i * 7 + 3) % group.len()];
        ops.push(Op::Leave(a));
        ops.push(Op::Join(a));
        ops.push(Op::Reshape(b));
    }
    (source, ops)
}

/// Replays the workload on the current (incremental + cached-SPT) stack.
fn run_incremental(
    graph: &Graph,
    source: NodeId,
    ops: &[Op],
    mode: SelectionMode,
) -> MulticastTree {
    let config = SmrpConfig {
        d_thresh: D_THRESH,
        auto_reshape: false,
        selection: mode,
        ..SmrpConfig::default()
    };
    let mut sess = SmrpSession::new(graph, source, config).expect("valid session");
    for &op in ops {
        match op {
            Op::Join(n) => drop(sess.join(n)),
            Op::Leave(n) => drop(sess.leave(n)),
            Op::Reshape(n) => drop(sess.reshape_member(n)),
        }
    }
    sess.tree().clone()
}

/// Tree-level driver emulating the seed bookkeeping: same selection logic,
/// but with the per-call Dijkstras and per-mutation full recomputations the
/// incremental scheme removed.
struct Naive<'g> {
    graph: &'g Graph,
    tree: MulticastTree,
    mode: SelectionMode,
}

impl<'g> Naive<'g> {
    fn new(graph: &'g Graph, source: NodeId, mode: SelectionMode) -> Self {
        Naive {
            graph,
            tree: MulticastTree::new(graph, source).expect("valid source"),
            mode,
        }
    }

    /// The old `dijkstra::distance(graph, source, _)`: a full SPT per call.
    fn fresh_spt(&self) -> ShortestPathTree {
        ShortestPathTree::compute(self.graph, self.tree.source())
    }

    /// The loop-invariant SPT recomputation the seed ran once per off-tree
    /// neighbor inside `neighbor_query_candidates`.
    fn neighbor_loop_overhead(&self, nr: NodeId) {
        if self.mode == SelectionMode::NeighborQuery {
            for nb in self.graph.neighbors(nr) {
                if !self.tree.is_on_tree(nb) {
                    black_box(ShortestPathTree::compute(self.graph, self.tree.source()));
                }
            }
        }
    }

    fn join(&mut self, node: NodeId) {
        if self.tree.is_member(node) || node == self.tree.source() {
            return;
        }
        let spt = self.fresh_spt();
        if self.tree.is_on_tree(node) {
            self.tree.set_member(node, true).expect("known node");
            self.tree.recompute_stats();
            return;
        }
        self.neighbor_loop_overhead(node);
        let Ok(sel) =
            select::select_path(self.graph, &self.tree, &spt, node, D_THRESH, self.mode, &[])
        else {
            return;
        };
        self.tree.attach_path(&sel.candidate.approach);
        self.tree.recompute_stats();
        self.tree.set_member(node, true).expect("known node");
        self.tree.recompute_stats();
    }

    fn leave(&mut self, node: NodeId) {
        if !self.tree.is_member(node) {
            return;
        }
        self.tree.set_member(node, false).expect("known node");
        self.tree.recompute_stats();
        self.tree.prune_from(node);
        self.tree.recompute_stats();
    }

    /// Mirrors `SmrpSession::reshape_member` with seed-era bookkeeping.
    fn reshape(&mut self, member: NodeId) {
        if !self.tree.is_member(member) || self.tree.parent(member).is_none() {
            return;
        }
        let mut reduced = self.tree.clone();
        let Ok(old_merger) = reduced.detach_subtree(member) else {
            return;
        };
        reduced.recompute_stats();
        let subtree = reduced.subtree_nodes(member);
        let spt = self.fresh_spt();
        let Some(spf_delay) = spt.distance(member) else {
            return;
        };
        let mut excluded = subtree;
        excluded.retain(|&n| n != member);
        self.neighbor_loop_overhead(member);
        let candidates =
            select::enumerate_candidates(self.graph, &reduced, &spt, member, self.mode, &excluded);
        let Ok(sel) = select::apply_criterion(candidates, spf_delay, D_THRESH, member) else {
            return;
        };
        if !sel.within_bound || reduced.shr(sel.candidate.merger) >= reduced.shr(old_merger) {
            return;
        }
        self.tree.detach_subtree(member).expect("member has parent");
        self.tree.recompute_stats();
        self.tree.attach_path(&sel.candidate.approach);
        self.tree.recompute_stats();
    }
}

fn run_naive(graph: &Graph, source: NodeId, ops: &[Op], mode: SelectionMode) -> MulticastTree {
    let mut naive = Naive::new(graph, source, mode);
    for &op in ops {
        match op {
            Op::Join(n) => naive.join(n),
            Op::Leave(n) => naive.leave(n),
            Op::Reshape(n) => naive.reshape(n),
        }
    }
    naive.tree
}

fn time_ms<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

#[derive(Serialize)]
struct ModeRow {
    selection: &'static str,
    incremental_ms: f64,
    naive_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct SizeRow {
    nodes: usize,
    ops: usize,
    modes: Vec<ModeRow>,
}

#[derive(Serialize)]
struct Report {
    workload: String,
    group_size: usize,
    reps: u32,
    sizes: Vec<SizeRow>,
}

fn main() {
    header(
        "join_churn: incremental SHR/N + cached source SPT vs seed bookkeeping",
        "delta propagation and SPT reuse remove the per-operation full \
         recomputations; the gap widens with topology size",
    );

    let mut report = Report {
        workload: format!(
            "{GROUP} joins, then {CHURN_ROUNDS} rounds of leave + rejoin + reshape \
             on Waxman(alpha=0.2) topologies"
        ),
        group_size: GROUP,
        reps: REPS,
        sizes: Vec::new(),
    };

    for nodes in [100usize, 400, 1600] {
        let graph = topology(nodes);
        let (source, ops) = workload(&graph);
        let mut size_row = SizeRow {
            nodes,
            ops: ops.len(),
            modes: Vec::new(),
        };
        for (mode, name) in [
            (SelectionMode::FullTopology, "full-topology"),
            (SelectionMode::NeighborQuery, "neighbor-query"),
        ] {
            // Both drivers must agree before their timings mean anything.
            let inc_tree = run_incremental(&graph, source, &ops, mode);
            let naive_tree = run_naive(&graph, source, &ops, mode);
            assert_eq!(
                inc_tree.links(&graph),
                naive_tree.links(&graph),
                "incremental and naive drivers diverged (n={nodes}, {name})"
            );
            for u in inc_tree.source_connected_nodes() {
                assert_eq!(inc_tree.shr(u), naive_tree.shr(u));
            }

            let incremental_ms =
                time_ms(|| drop(black_box(run_incremental(&graph, source, &ops, mode))));
            let naive_ms = time_ms(|| drop(black_box(run_naive(&graph, source, &ops, mode))));
            let speedup = naive_ms / incremental_ms;
            println!(
                "n={nodes:<5} {name:<15} incremental {incremental_ms:>9.2} ms   \
                 naive {naive_ms:>9.2} ms   speedup {speedup:>6.2}x"
            );
            size_row.modes.push(ModeRow {
                selection: name,
                incremental_ms,
                naive_ms,
                speedup,
            });
        }
        report.sizes.push(size_row);
    }

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_join_churn.json");
    smrp_experiments::report::write_json(&path, &report).expect("write BENCH_join_churn.json");
    println!("wrote {}", path.display());
}
