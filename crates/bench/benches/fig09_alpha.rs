//! Regenerates Figure 9 (effect of `α` / average node degree).

use smrp_bench::{bench_effort, header};
use smrp_experiments::fig9;

fn main() {
    header(
        "Figure 9: effect of alpha (average node degree annotated)",
        "improvement diminishes slightly as degree grows; still ~12% \
         reduction for ~5% penalty at average degree ~10",
    );
    let result = fig9::run(bench_effort());
    println!("{}", result.table());
    println!("measured: {}", result.summary());
}
