//! Regenerates Figure 7 (local vs global detour recovery distances).

use smrp_bench::{bench_effort, header};
use smrp_experiments::fig7;

fn main() {
    header(
        "Figure 7: recovery distance via local detour (y) vs global detour (x)",
        "most points below y = x; local detours ~33% shorter on average",
    );
    let result = fig7::run(bench_effort());
    println!("{}", result.plot());
    println!("measured: {}", result.summary());
}
