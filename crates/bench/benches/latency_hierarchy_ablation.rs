//! Regenerates the non-figure evaluation artifacts: the §1 restoration
//! latency motivation, the §3.3.3 hierarchical confinement walkthrough
//! (Figure 6) and the design-choice ablations from DESIGN.md.

use smrp_bench::{bench_effort, header};
use smrp_experiments::{ablation, hierarchy_exp, latency};

fn main() {
    let effort = bench_effort();

    header(
        "Restoration latency: local detour vs PIM-over-OSPF global detour",
        "failure recovery time for PIM is dominated by unicast (OSPF) \
         reconvergence; a local detour only pays detection + signalling",
    );
    let rl = latency::run(effort);
    println!("{}", rl.table());
    println!("measured: {}\n", rl.summary());

    header(
        "Hierarchical recovery (Figure 6): failure confinement",
        "any failure inside a recovery domain is handled by that domain; \
         all tree reconfigurations stay inside it",
    );
    let rh = hierarchy_exp::run(effort);
    println!("{}", rh.table());
    println!("measured: {}\n", rh.summary());

    header(
        "Ablations: reshaping, query scheme, Condition I threshold",
        "(design-choice benches from DESIGN.md; no direct paper figure)",
    );
    let ra = ablation::run(effort);
    println!("{}", ra.table());
}
