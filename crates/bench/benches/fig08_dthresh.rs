//! Regenerates Figure 8 (effect of `D_thresh`).

use smrp_bench::{bench_effort, header};
use smrp_experiments::fig8;

fn main() {
    header(
        "Figure 8: effect of D_thresh on RD_rel / D_rel / Cost_rel",
        "~20% shorter recovery paths at D_thresh = 0.3 for ~5% delay and \
         cost penalties; improvement grows roughly linearly with D_thresh",
    );
    let result = fig8::run(bench_effort());
    println!("{}", result.table());
    println!("measured: {}", result.summary());
}
