//! Datagram transports for the daemon.
//!
//! A [`Transport`] moves opaque wire frames (see [`smrp_proto::wire`])
//! between router nodes. Two backends ship:
//!
//! * [`ChannelTransport`] — an in-process fabric of `std::sync::mpsc`
//!   channels, one receiver per node. Zero syscalls, useful for tests
//!   and for running many daemon instances inside one process.
//! * [`UdpTransport`] — one loopback UDP socket per node. This is the
//!   "real wire": frames actually leave the process boundary, the OS
//!   may reorder or (under load) drop them, and the conformance suite
//!   must still converge to the simulator's digest.
//!
//! Both are *unreliable* by design: the SMRP reliable lane
//! ([`smrp_proto::reliable`]) sits above the transport, exactly as it
//! sits above the simulator's lossy channel.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

use smrp_net::NodeId;

/// An unreliable, unordered datagram fabric endpoint owned by one node.
///
/// Implementations must be [`Send`] so each node's runtime can run on
/// its own thread.
pub trait Transport: Send {
    /// The node this endpoint belongs to.
    fn local_node(&self) -> NodeId;

    /// Fire-and-forget a frame towards `to`. Losing the frame is
    /// allowed (the protocol's soft state and reliable lane absorb it);
    /// only genuine I/O faults should surface as errors.
    fn send(&self, to: NodeId, frame: &[u8]) -> io::Result<()>;

    /// Blocks up to `timeout` for one inbound frame.
    ///
    /// Returns `Ok(None)` on timeout — the runtime uses that as its
    /// timer-driven heartbeat, so a timeout is the *common* path, not
    /// an error.
    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>>;
}

/// In-process transport: every node holds a `Sender` clone for every
/// peer and its own `Receiver`.
pub struct ChannelTransport {
    me: NodeId,
    peers: Vec<Sender<Vec<u8>>>,
    inbox: Receiver<Vec<u8>>,
}

impl ChannelTransport {
    /// Builds a fully-connected fabric of `n` endpoints, index `i`
    /// serving node `i`.
    pub fn fabric(n: usize) -> Vec<ChannelTransport> {
        let mut senders = Vec::with_capacity(n);
        let mut inboxes = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            inboxes.push(rx);
        }
        inboxes
            .into_iter()
            .enumerate()
            .map(|(i, inbox)| ChannelTransport {
                me: NodeId::new(i),
                peers: senders.clone(),
                inbox,
            })
            .collect()
    }
}

impl Transport for ChannelTransport {
    fn local_node(&self) -> NodeId {
        self.me
    }

    fn send(&self, to: NodeId, frame: &[u8]) -> io::Result<()> {
        match self.peers.get(to.index()) {
            // A hung-up peer (its runtime already exited) is equivalent
            // to a lossy wire, not an error.
            Some(tx) => {
                let _ = tx.send(frame.to_vec());
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such node {to}"),
            )),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>> {
        match self.inbox.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            // Every sender dropped: all peers shut down. Treat like a
            // silent wire so the runtime can finish its own horizon.
            Err(RecvTimeoutError::Disconnected) => {
                std::thread::sleep(timeout);
                Ok(None)
            }
        }
    }
}

/// Loopback UDP transport: one `UdpSocket` per node, bound to an
/// ephemeral 127.0.0.1 port; the address map is exchanged at build time.
pub struct UdpTransport {
    me: NodeId,
    socket: UdpSocket,
    peers: Vec<SocketAddr>,
    buf: Box<[u8; 64 * 1024]>,
}

impl UdpTransport {
    /// Binds `n` loopback sockets and wires the shared address map.
    pub fn fabric(n: usize) -> io::Result<Vec<UdpTransport>> {
        let sockets: Vec<UdpSocket> = (0..n)
            .map(|_| UdpSocket::bind("127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let peers: Vec<SocketAddr> = sockets
            .iter()
            .map(|s| s.local_addr())
            .collect::<io::Result<_>>()?;
        sockets
            .into_iter()
            .enumerate()
            .map(|(i, socket)| {
                Ok(UdpTransport {
                    me: NodeId::new(i),
                    socket,
                    peers: peers.clone(),
                    buf: Box::new([0u8; 64 * 1024]),
                })
            })
            .collect()
    }

    /// The socket address frames for this node should be sent to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }
}

impl Transport for UdpTransport {
    fn local_node(&self) -> NodeId {
        self.me
    }

    fn send(&self, to: NodeId, frame: &[u8]) -> io::Result<()> {
        let addr = self
            .peers
            .get(to.index())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no such node {to}")))?;
        // Kernel-side drops (full socket buffers under burst load) are
        // the wire being lossy, which the protocol tolerates.
        match self.socket.send_to(frame, addr) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> io::Result<Option<Vec<u8>>> {
        // set_read_timeout(Some(ZERO)) is an error on every platform;
        // clamp to the smallest meaningful wait.
        let timeout = timeout.max(Duration::from_micros(50));
        self.socket.set_read_timeout(Some(timeout))?;
        match self.socket.recv_from(&mut self.buf[..]) {
            Ok((len, _from)) => Ok(Some(self.buf[..len].to_vec())),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_fabric_routes_between_endpoints() {
        let mut fabric = ChannelTransport::fabric(3);
        let c = fabric.pop().unwrap();
        let mut b = fabric.pop().unwrap();
        let a = fabric.pop().unwrap();
        assert_eq!(a.local_node(), NodeId::new(0));
        a.send(NodeId::new(1), b"hi").unwrap();
        c.send(NodeId::new(1), b"yo").unwrap();
        let first = b.recv_timeout(Duration::from_millis(100)).unwrap();
        let second = b.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(first.as_deref(), Some(&b"hi"[..]));
        assert_eq!(second.as_deref(), Some(&b"yo"[..]));
        assert_eq!(b.recv_timeout(Duration::from_millis(5)).unwrap(), None);
    }

    #[test]
    fn udp_fabric_routes_over_loopback() {
        let mut fabric = UdpTransport::fabric(2).unwrap();
        let mut b = fabric.pop().unwrap();
        let a = fabric.pop().unwrap();
        a.send(NodeId::new(1), b"frame").unwrap();
        let mut got = None;
        for _ in 0..50 {
            if let Some(f) = b.recv_timeout(Duration::from_millis(20)).unwrap() {
                got = Some(f);
                break;
            }
        }
        assert_eq!(got.as_deref(), Some(&b"frame"[..]));
    }
}
