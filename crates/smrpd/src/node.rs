//! Per-node runtime: one thread owning one [`MultiRouter`], driven by
//! real time and a [`Transport`].
//!
//! The runtime is the daemon-side mirror of the simulator's event loop
//! for a single node. The router code is *identical* — the same
//! [`MultiRouter`] the simulator schedules is dispatched here through
//! [`Ctx::standalone`], so the protocol cannot diverge by construction;
//! only the surrounding machinery differs:
//!
//! * **Clock** — a [`MonotonicClock`] maps wall time onto protocol
//!   [`SimTime`], optionally sped up, all nodes anchored to one shared
//!   origin instant.
//! * **Timers** — [`TimerDriver`] reproduces the engine's token
//!   semantics (never-reused tokens, O(1) cancel, re-arm supersedes).
//! * **Failures** — each node holds the scripted injection schedule and
//!   applies it to a local [`FailureScenario`] view as its clock passes
//!   each injection, mirroring the simulator's global oracle:
//!   frames over failed links are dropped on both send and receive, a
//!   down node neither dispatches timers nor processes frames (due
//!   timers elapsing while down are *discarded*, ones due after repair
//!   still fire), and repair triggers `on_reboot`.
//! * **Loss** — a seeded Bernoulli drop per transmitted frame stands in
//!   for the simulator's channel model on lossy scenarios.

use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smrp_net::{FailureScenario, Graph, LinkId, NodeId};
use smrp_proto::wire;
use smrp_proto::{GroupMsg, GroupTimer, MultiRouter};
use smrp_sim::{Clock, Ctx, MonotonicClock, NodeBehavior, NodeCommand, SimTime};

use crate::status::{NodeStatus, StatusBoard};
use crate::timer::TimerDriver;
use crate::transport::Transport;

/// One scripted change to the shared failure state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Cut a link.
    FailLink(LinkId),
    /// Restore a link.
    RepairLink(LinkId),
    /// Crash a node (it stops processing and sending).
    FailNode(NodeId),
    /// Repair a node (it reboots with empty soft state).
    RepairNode(NodeId),
}

/// An [`Injection`] with its protocol-time deadline.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledInjection {
    /// When the change takes effect.
    pub at: SimTime,
    /// What changes.
    pub what: Injection,
}

/// Seeded uniform per-frame loss, the daemon analogue of the sim's
/// lossy channel lane.
struct LossModel {
    p: f64,
    rng: SmallRng,
}

/// Everything needed to run one node; [`run`](NodeRuntime::run)
/// consumes it and returns the final router state.
pub struct NodeRuntime {
    me: NodeId,
    graph: Arc<Graph>,
    router: MultiRouter,
    transport: Box<dyn Transport>,
    clock: MonotonicClock,
    horizon: SimTime,
    timers: TimerDriver<GroupTimer>,
    tokens: Cell<u64>,
    failures: FailureScenario,
    schedule: Vec<ScheduledInjection>,
    next_injection: usize,
    down: bool,
    loss: Option<LossModel>,
    board: Arc<StatusBoard>,
    status_interval: SimTime,
    next_status_at: SimTime,
    frames_sent: u64,
    frames_dropped: u64,
}

impl NodeRuntime {
    /// Builds a runtime for `me`.
    ///
    /// `schedule` must be sorted by `at` (it is shared verbatim by all
    /// nodes, mirroring the simulator's single failure oracle). A
    /// positive `loss` enables seeded per-frame drops; the seed is
    /// decorrelated per node so parallel nodes don't drop in lockstep.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: NodeId,
        graph: Arc<Graph>,
        router: MultiRouter,
        transport: Box<dyn Transport>,
        clock: MonotonicClock,
        horizon: SimTime,
        schedule: Vec<ScheduledInjection>,
        loss: f64,
        loss_seed: u64,
        board: Arc<StatusBoard>,
    ) -> NodeRuntime {
        debug_assert!(schedule.windows(2).all(|w| w[0].at <= w[1].at));
        let loss = (loss > 0.0).then(|| LossModel {
            p: loss,
            rng: SmallRng::seed_from_u64(
                loss_seed ^ (me.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
        });
        NodeRuntime {
            me,
            graph,
            router,
            transport,
            clock,
            horizon,
            timers: TimerDriver::new(),
            tokens: Cell::new(0),
            failures: FailureScenario::none(),
            schedule,
            next_injection: 0,
            down: false,
            loss,
            board,
            status_interval: SimTime::from_ms(25.0),
            next_status_at: SimTime::ZERO,
            frames_sent: 0,
            frames_dropped: 0,
        }
    }

    /// Runs the node until its clock passes the horizon; returns the
    /// final router state for snapshotting.
    pub fn run(mut self) -> MultiRouter {
        // Arm the protocol's periodic timers exactly as the simulator
        // does before injecting anything.
        let now = self.clock.now();
        self.dispatch(now, |router, ctx| {
            let groups: Vec<_> = router.groups().collect();
            for g in groups {
                router.with_lane(ctx, g, |r, ictx| r.start_timers(ictx));
            }
        });

        loop {
            let now = self.clock.now();
            if now >= self.horizon {
                break;
            }
            self.apply_injections(now);
            self.fire_due_timers(now);
            if now >= self.next_status_at {
                self.publish_status(now);
                self.next_status_at = now + self.status_interval;
            }

            let mut next = self.horizon;
            if let Some(d) = self.timers.next_deadline() {
                next = next.min(d);
            }
            if let Some(inj) = self.schedule.get(self.next_injection) {
                next = next.min(inj.at);
            }
            next = next.min(self.next_status_at);
            // `Sub` on SimTime saturates, so a deadline already behind
            // `now` degrades to a minimal poll, not a panic.
            let wall = self.clock.to_wall(next - now);
            match self
                .transport
                .recv_timeout(wall.max(Duration::from_micros(20)))
            {
                Ok(Some(frame)) => self.handle_frame(frame),
                Ok(None) => {}
                // Transport faults (not timeouts) end the run early;
                // final state will show as divergence in conformance.
                Err(_) => break,
            }
        }

        let now = self.clock.now();
        self.publish_status(now);
        self.router
    }

    /// Frames sent and dropped (by failed links or the loss model).
    pub fn wire_stats(&self) -> (u64, u64) {
        (self.frames_sent, self.frames_dropped)
    }

    fn publish_status(&self, now: SimTime) {
        self.board
            .publish(NodeStatus::capture(self.me, self.down, now, &self.router));
    }

    /// Applies every scripted injection whose deadline has passed.
    fn apply_injections(&mut self, now: SimTime) {
        while let Some(&ScheduledInjection { at, what }) = self.schedule.get(self.next_injection) {
            if at > now {
                break;
            }
            self.next_injection += 1;
            match what {
                Injection::FailLink(l) => {
                    self.failures.fail_link(l);
                }
                Injection::RepairLink(l) => {
                    self.failures.repair_link(l);
                }
                Injection::FailNode(n) => {
                    self.failures.fail_node(n);
                    if n == self.me {
                        self.down = true;
                    }
                }
                Injection::RepairNode(n) => {
                    self.failures.repair_node(n);
                    if n == self.me {
                        self.down = false;
                        // Reboot with whatever durable state the router
                        // kept, mirroring the engine's repair path.
                        self.dispatch(now, |router, ctx| router.on_reboot(ctx));
                    }
                }
            }
        }
    }

    /// Pops and dispatches every due timer; timers coming due while the
    /// node is down are discarded, matching the engine (the node was
    /// not running when they elapsed).
    fn fire_due_timers(&mut self, now: SimTime) {
        while let Some((_token, timer)) = self.timers.pop_due(now) {
            if self.down {
                continue;
            }
            self.dispatch(now, |router, ctx| router.on_timer(ctx, timer));
        }
    }

    /// Decodes and dispatches one inbound frame, applying the same
    /// delivery gates as the simulator: down receivers and unusable
    /// links eat the frame.
    fn handle_frame(&mut self, frame: Vec<u8>) {
        if self.down {
            return;
        }
        let Ok((from, msg)) = wire::decode_datagram(&frame) else {
            return; // Malformed or foreign-version frame: drop.
        };
        let Some(link) = self.graph.link_between(from, self.me) else {
            return; // Not a neighbor in this topology.
        };
        if !self.failures.link_usable(&self.graph, link) {
            return;
        }
        let now = self.clock.now();
        self.dispatch(now, |router, ctx| router.on_message(ctx, from, msg));
    }

    /// Runs `f` over the router with a standalone engine context, then
    /// applies the commands it produced (sends, timer arms, cancels).
    fn dispatch(
        &mut self,
        now: SimTime,
        f: impl FnOnce(&mut MultiRouter, &mut Ctx<'_, MultiRouter>),
    ) {
        let commands = {
            let mut ctx = Ctx::standalone(now, self.me, &self.graph, &self.failures, &self.tokens);
            f(&mut self.router, &mut ctx);
            ctx.into_commands()
        };
        for cmd in commands {
            match cmd {
                NodeCommand::Send { to, msg } => self.send_frame(to, msg),
                NodeCommand::Timer {
                    delay,
                    timer,
                    token,
                } => self.timers.schedule(now + delay, token, timer),
                NodeCommand::CancelTimer { token } => self.timers.cancel(token),
            }
        }
    }

    /// Encodes and transmits one protocol message, subject to the
    /// failure view (frames onto failed links vanish, as in the sim's
    /// delivery check) and the loss model.
    fn send_frame(&mut self, to: NodeId, msg: GroupMsg) {
        let Some(link) = self.graph.link_between(self.me, to) else {
            return;
        };
        if !self.failures.link_usable(&self.graph, link) {
            self.frames_dropped += 1;
            return;
        }
        if let Some(loss) = &mut self.loss {
            if loss.rng.gen_bool(loss.p) {
                self.frames_dropped += 1;
                return;
            }
        }
        let bytes = wire::encode_datagram(self.me, &msg);
        self.frames_sent += 1;
        let _ = self.transport.send(to, &bytes);
    }
}
