//! The `smrpd` daemon binary.
//!
//! Two modes:
//!
//! * **Replay** — conformance-check a golden trace against the sim:
//!
//!   ```text
//!   smrpd --replay crates/smrpd/tests/golden/figure1.json \
//!         --transport udp --speed 5 --assert-digest
//!   ```
//!
//! * **Demo** — free-running multicast sessions with live introspection:
//!
//!   ```text
//!   smrpd --nodes 8 --topology ring --groups 2 \
//!         --duration-ms 2000 --introspect 127.0.0.1:7171
//!   curl http://127.0.0.1:7171/groups/0/tree
//!   ```

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use smrp_faultlab::GoldenTrace;
use smrp_sim::SimTime;
use smrpd::daemon::{launch_demo, replay, DemoOptions, ReplayOptions, Topology, TransportKind};

const USAGE: &str = "\
smrpd - SMRP control-plane daemon

Replay mode (golden-trace conformance):
  --replay <trace.json>     replay a faultlab --dump-trace file
  --assert-digest           exit non-zero unless the digest matches the sim

Demo mode:
  --nodes <n>               router count [8]
  --topology ring|line|star shape [ring]
  --groups <n>              concurrent multicast groups [2]
  --duration-ms <ms>        protocol-time runtime [2000]

Common:
  --transport channel|udp   datagram fabric [channel]
  --speed <x>               protocol seconds per wall second [5]
  --introspect <addr>       serve HTTP introspection (e.g. 127.0.0.1:0)
  --help                    this text
";

struct Args {
    replay: Option<PathBuf>,
    assert_digest: bool,
    nodes: usize,
    topology: Topology,
    groups: usize,
    duration: SimTime,
    transport: TransportKind,
    speed: f64,
    introspect: Option<SocketAddr>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        replay: None,
        assert_digest: false,
        nodes: 8,
        topology: Topology::Ring,
        groups: 2,
        duration: SimTime::from_ms(2000.0),
        transport: TransportKind::Channel,
        speed: 5.0,
        introspect: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} expects a value\n\n{USAGE}"))
        };
        match flag.as_str() {
            "--replay" => args.replay = Some(PathBuf::from(value("--replay")?)),
            "--assert-digest" => args.assert_digest = true,
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?
            }
            "--topology" => {
                args.topology = match value("--topology")?.as_str() {
                    "ring" => Topology::Ring,
                    "line" => Topology::Line,
                    "star" => Topology::Star,
                    other => return Err(format!("unknown topology {other:?}")),
                }
            }
            "--groups" => {
                args.groups = value("--groups")?
                    .parse()
                    .map_err(|e| format!("--groups: {e}"))?
            }
            "--duration-ms" => {
                let ms: f64 = value("--duration-ms")?
                    .parse()
                    .map_err(|e| format!("--duration-ms: {e}"))?;
                args.duration = SimTime::from_ms(ms);
            }
            "--transport" => {
                args.transport = match value("--transport")?.as_str() {
                    "channel" => TransportKind::Channel,
                    "udp" => TransportKind::Udp,
                    other => return Err(format!("unknown transport {other:?}")),
                }
            }
            "--speed" => {
                args.speed = value("--speed")?
                    .parse()
                    .map_err(|e| format!("--speed: {e}"))?
            }
            "--introspect" => {
                args.introspect = Some(
                    value("--introspect")?
                        .parse()
                        .map_err(|e| format!("--introspect: {e}"))?,
                )
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run_replay(args: &Args, trace_path: &Path) -> Result<ExitCode, String> {
    let trace = GoldenTrace::load(trace_path)
        .map_err(|e| format!("loading {}: {e}", trace_path.display()))?;
    let opts = ReplayOptions {
        transport: args.transport,
        speed: args.speed,
        introspect: args.introspect,
    };
    eprintln!(
        "replaying {:?}: {} nodes, {} group(s), horizon {:.0} ms at {}x over {:?}",
        trace.name,
        trace.nodes,
        trace.groups.len(),
        SimTime::from_ns(trace.horizon_ns).as_ms(),
        opts.speed,
        opts.transport,
    );
    let outcome = replay(&trace, &opts).map_err(|e| format!("replay failed: {e}"))?;
    println!(
        "{}",
        serde_json::to_string_pretty(&outcome.state).expect("state serializes")
    );
    eprintln!(
        "digest {} (sim expected {}) — {}",
        outcome.digest,
        outcome.expected_digest,
        if outcome.matches() {
            "CONFORMANT"
        } else {
            "DIVERGED"
        }
    );
    if args.assert_digest && !outcome.matches() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn run_demo(args: &Args) -> Result<ExitCode, String> {
    let opts = DemoOptions {
        nodes: args.nodes,
        topology: args.topology,
        groups: args.groups,
        duration: args.duration,
        speed: args.speed,
        transport: args.transport,
        introspect: args.introspect,
    };
    let daemon = launch_demo(&opts).map_err(|e| format!("launch failed: {e}"))?;
    if let Some(addr) = daemon.introspect_addr() {
        eprintln!(
            "introspection at http://{addr}/status (also /nodes/<i>, /groups/<g>/tree, /health)"
        );
    }
    eprintln!(
        "demo: {} nodes ({:?}), {} group(s), running {:.0} ms of protocol time at {}x...",
        opts.nodes,
        opts.topology,
        opts.groups,
        opts.duration.as_ms(),
        opts.speed
    );
    let board = daemon.board();
    daemon
        .join()
        .map_err(|e| format!("node thread failed: {e}"))?;
    let final_view = smrpd::StatusView {
        nodes: board.snapshot(),
    };
    println!(
        "{}",
        serde_json::to_string_pretty(&final_view).expect("view serializes")
    );
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &args.replay {
        Some(path) => run_replay(&args, path),
        None => run_demo(&args),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
