//! Shared introspection state.
//!
//! Each node runtime periodically publishes a [`NodeStatus`] snapshot of
//! its router state into the [`StatusBoard`]; the HTTP introspection
//! server (see [`crate::introspect`]) reads the board without ever
//! touching live router state, so observation can never perturb the
//! protocol.

use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use smrp_metrics::ControlHealth;
use smrp_net::NodeId;
use smrp_proto::MultiRouter;
use smrp_sim::SimTime;

/// One group lane's tree state as seen by one router.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupStatus {
    /// Group id.
    pub group: u32,
    /// Whether this node currently forwards for the group.
    pub on_tree: bool,
    /// Whether this node is a subscribed member.
    pub member: bool,
    /// Upstream (parent) node, if any.
    pub upstream: Option<u32>,
    /// Downstream (children) nodes, sorted.
    pub downstream: Vec<u32>,
    /// The Sub-tree Height Rank this node advertises in query replies.
    pub shr: u32,
    /// Whether a local-detour recovery is in flight.
    pub recovering: bool,
    /// Multicast data packets delivered to the member application.
    pub deliveries: u64,
}

/// One node's published state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeStatus {
    /// Node id.
    pub node: u32,
    /// Whether the node is currently failed (crashed).
    pub down: bool,
    /// The node's protocol clock when the snapshot was taken, in ns.
    pub now_ns: u64,
    /// Per-group lane state.
    pub groups: Vec<GroupStatus>,
    /// Reliable-lane health aggregated over all lanes.
    pub health: ControlHealth,
}

impl NodeStatus {
    /// Snapshots `router` as seen at `now`.
    pub fn capture(me: NodeId, down: bool, now: SimTime, router: &MultiRouter) -> NodeStatus {
        let mut groups = Vec::new();
        let mut health = ControlHealth::default();
        for g in router.groups() {
            let lane = router.lane(g).expect("groups() yields live lanes");
            let mut downstream: Vec<u32> =
                lane.downstream().iter().map(|n| n.index() as u32).collect();
            downstream.sort_unstable();
            groups.push(GroupStatus {
                group: g.index() as u32,
                on_tree: lane.is_on_tree(),
                member: lane.is_member(),
                upstream: lane.upstream().map(|n| n.index() as u32),
                downstream,
                shr: lane.advertised_shr(),
                recovering: lane.is_recovering(),
                deliveries: lane.deliveries().len() as u64,
            });
            let r = lane.reliability();
            health.absorb_lane(r.retransmits, r.dup_drops, r.retry_exhaustions, r.acks_sent);
        }
        NodeStatus {
            node: me.index() as u32,
            down,
            now_ns: now.as_ns(),
            groups,
            health,
        }
    }
}

/// Lock-per-slot bulletin board: node `i` writes slot `i`, readers take
/// a point-in-time copy.
#[derive(Debug)]
pub struct StatusBoard {
    slots: Vec<Mutex<Option<NodeStatus>>>,
}

/// Locks a slot, recovering from poison: a publisher that panicked
/// mid-write leaves at worst a stale-but-structurally-intact snapshot
/// (the slot holds an `Option` that is replaced wholesale, never edited
/// in place), so introspection must keep serving rather than cascade the
/// panic into every `/health` probe.
fn lock_slot(slot: &Mutex<Option<NodeStatus>>) -> std::sync::MutexGuard<'_, Option<NodeStatus>> {
    slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl StatusBoard {
    /// A board with `n` empty slots.
    pub fn new(n: usize) -> StatusBoard {
        StatusBoard {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the board has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Publishes `status` into its node's slot.
    pub fn publish(&self, status: NodeStatus) {
        let idx = status.node as usize;
        if let Some(slot) = self.slots.get(idx) {
            *lock_slot(slot) = Some(status);
        }
    }

    /// Copies every slot. `None` entries are nodes that have not
    /// published yet.
    pub fn snapshot(&self) -> Vec<Option<NodeStatus>> {
        self.slots.iter().map(|s| lock_slot(s).clone()).collect()
    }

    /// Copies one node's slot.
    pub fn node(&self, idx: usize) -> Option<NodeStatus> {
        self.slots.get(idx).and_then(|s| lock_slot(s).clone())
    }

    /// Test hook: poisons slot `idx` by panicking while holding its lock,
    /// simulating a publisher that died mid-write.
    #[cfg(test)]
    pub(crate) fn poison_slot_for_test(&self, idx: usize) {
        std::thread::scope(|s| {
            let _ = s
                .spawn(|| {
                    let _guard = self.slots[idx].lock().unwrap();
                    panic!("poison the slot on purpose");
                })
                .join();
        });
        assert!(self.slots[idx].is_poisoned(), "setup must actually poison");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(node: u32) -> NodeStatus {
        NodeStatus {
            node,
            down: false,
            now_ns: 1,
            groups: Vec::new(),
            health: ControlHealth::default(),
        }
    }

    #[test]
    fn poisoned_slot_still_publishes_and_reads() {
        let board = StatusBoard::new(2);
        board.publish(status(0));
        board.poison_slot_for_test(0);
        // The board keeps serving: reads see the pre-poison snapshot,
        // writes land, and whole-board snapshots include the slot.
        assert_eq!(board.node(0).unwrap().now_ns, 1);
        let mut updated = status(0);
        updated.now_ns = 2;
        board.publish(updated);
        assert_eq!(board.node(0).unwrap().now_ns, 2);
        let snap = board.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].as_ref().unwrap().now_ns, 2);
        assert!(snap[1].is_none());
    }
}
