//! Shared introspection state.
//!
//! Each node runtime periodically publishes a [`NodeStatus`] snapshot of
//! its router state into the [`StatusBoard`]; the HTTP introspection
//! server (see [`crate::introspect`]) reads the board without ever
//! touching live router state, so observation can never perturb the
//! protocol.

use std::sync::Mutex;

use serde::{Deserialize, Serialize};
use smrp_metrics::ControlHealth;
use smrp_net::NodeId;
use smrp_proto::MultiRouter;
use smrp_sim::SimTime;

/// One group lane's tree state as seen by one router.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupStatus {
    /// Group id.
    pub group: u32,
    /// Whether this node currently forwards for the group.
    pub on_tree: bool,
    /// Whether this node is a subscribed member.
    pub member: bool,
    /// Upstream (parent) node, if any.
    pub upstream: Option<u32>,
    /// Downstream (children) nodes, sorted.
    pub downstream: Vec<u32>,
    /// The Sub-tree Height Rank this node advertises in query replies.
    pub shr: u32,
    /// Whether a local-detour recovery is in flight.
    pub recovering: bool,
    /// Multicast data packets delivered to the member application.
    pub deliveries: u64,
}

/// One node's published state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeStatus {
    /// Node id.
    pub node: u32,
    /// Whether the node is currently failed (crashed).
    pub down: bool,
    /// The node's protocol clock when the snapshot was taken, in ns.
    pub now_ns: u64,
    /// Per-group lane state.
    pub groups: Vec<GroupStatus>,
    /// Reliable-lane health aggregated over all lanes.
    pub health: ControlHealth,
}

impl NodeStatus {
    /// Snapshots `router` as seen at `now`.
    pub fn capture(me: NodeId, down: bool, now: SimTime, router: &MultiRouter) -> NodeStatus {
        let mut groups = Vec::new();
        let mut health = ControlHealth::default();
        for g in router.groups() {
            let lane = router.lane(g).expect("groups() yields live lanes");
            let mut downstream: Vec<u32> =
                lane.downstream().iter().map(|n| n.index() as u32).collect();
            downstream.sort_unstable();
            groups.push(GroupStatus {
                group: g.index() as u32,
                on_tree: lane.is_on_tree(),
                member: lane.is_member(),
                upstream: lane.upstream().map(|n| n.index() as u32),
                downstream,
                shr: lane.advertised_shr(),
                recovering: lane.is_recovering(),
                deliveries: lane.deliveries().len() as u64,
            });
            let r = lane.reliability();
            health.absorb_lane(r.retransmits, r.dup_drops, r.retry_exhaustions, r.acks_sent);
        }
        NodeStatus {
            node: me.index() as u32,
            down,
            now_ns: now.as_ns(),
            groups,
            health,
        }
    }
}

/// Lock-per-slot bulletin board: node `i` writes slot `i`, readers take
/// a point-in-time copy.
#[derive(Debug)]
pub struct StatusBoard {
    slots: Vec<Mutex<Option<NodeStatus>>>,
}

impl StatusBoard {
    /// A board with `n` empty slots.
    pub fn new(n: usize) -> StatusBoard {
        StatusBoard {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the board has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Publishes `status` into its node's slot.
    pub fn publish(&self, status: NodeStatus) {
        let idx = status.node as usize;
        if let Some(slot) = self.slots.get(idx) {
            *slot.lock().expect("status slot poisoned") = Some(status);
        }
    }

    /// Copies every slot. `None` entries are nodes that have not
    /// published yet.
    pub fn snapshot(&self) -> Vec<Option<NodeStatus>> {
        self.slots
            .iter()
            .map(|s| s.lock().expect("status slot poisoned").clone())
            .collect()
    }

    /// Copies one node's slot.
    pub fn node(&self, idx: usize) -> Option<NodeStatus> {
        self.slots
            .get(idx)
            .and_then(|s| s.lock().expect("status slot poisoned").clone())
    }
}
