//! Minimal HTTP/1.1 introspection server.
//!
//! Serves JSON views of the [`StatusBoard`] a running daemon's nodes
//! publish into. Deliberately tiny — a hand-rolled request-line parser
//! over `TcpListener`, `Connection: close` on every response — because
//! the build environment has no async runtime or HTTP stack, and four
//! read-only GET routes don't justify one:
//!
//! | route | body |
//! |---|---|
//! | `GET /status` | every node's [`NodeStatus`] (null until first publish) |
//! | `GET /nodes/<id>` | one node's [`NodeStatus`] |
//! | `GET /groups/<id>/tree` | the group's tree, one row per participating node |
//! | `GET /health` | fleet-merged [`ControlHealth`] plus down/published counts |

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use serde::{Deserialize, Serialize};
use smrp_metrics::ControlHealth;

use crate::status::{NodeStatus, StatusBoard};

/// Body of `GET /status`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatusView {
    /// Slot per node; `null` until that node first publishes.
    pub nodes: Vec<Option<NodeStatus>>,
}

/// One node's row in a `GET /groups/<g>/tree` view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeRow {
    /// Node id.
    pub node: u32,
    /// Whether the node is currently failed.
    pub down: bool,
    /// Forwarding state for the group.
    pub on_tree: bool,
    /// Member subscription.
    pub member: bool,
    /// Parent on the tree.
    pub upstream: Option<u32>,
    /// Children on the tree, sorted.
    pub downstream: Vec<u32>,
    /// Advertised Sub-tree Height Rank.
    pub shr: u32,
    /// Local-detour recovery in flight.
    pub recovering: bool,
    /// Data packets delivered to the member application.
    pub deliveries: u64,
}

/// Body of `GET /groups/<g>/tree`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeView {
    /// Group id.
    pub group: u32,
    /// Rows for every published node participating in the group.
    pub rows: Vec<TreeRow>,
}

/// Body of `GET /health`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthView {
    /// Total node slots.
    pub nodes: usize,
    /// Nodes that have published at least once.
    pub published: usize,
    /// Nodes currently down.
    pub down: usize,
    /// Reliable-lane health merged across the fleet.
    pub health: ControlHealth,
}

/// Handle to the background server thread.
pub struct Introspector {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl Introspector {
    /// The bound listening address (useful with a `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the server thread and waits for it to exit.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

/// Starts serving `board` on `bind` (use port 0 for an ephemeral port).
pub fn serve(board: Arc<StatusBoard>, bind: SocketAddr) -> io::Result<Introspector> {
    let listener = TcpListener::bind(bind)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let handle = thread::Builder::new()
        .name("smrpd-introspect".into())
        .spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = handle_connection(stream, &board);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        })?;
    Ok(Introspector {
        addr,
        shutdown,
        handle,
    })
}

fn handle_connection(mut stream: TcpStream, board: &StatusBoard) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let mut request_line = String::new();
    BufReader::new(&stream).read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (code, body) = if method != "GET" {
        (405, "{\"error\":\"method not allowed\"}".to_string())
    } else {
        route(path, board)
    };
    let reason = match code {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {code} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Resolves a request path to `(status code, JSON body)`.
fn route(path: &str, board: &StatusBoard) -> (u16, String) {
    let not_found = || (404, "{\"error\":\"not found\"}".to_string());
    let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
    match segments.as_slice() {
        ["status"] => {
            let view = StatusView {
                nodes: board.snapshot(),
            };
            (200, serde_json::to_string(&view).expect("view serializes"))
        }
        ["health"] => {
            let snapshot = board.snapshot();
            let mut health = ControlHealth::default();
            let mut published = 0;
            let mut down = 0;
            for status in snapshot.iter().flatten() {
                published += 1;
                down += usize::from(status.down);
                health.merge(&status.health);
            }
            let view = HealthView {
                nodes: board.len(),
                published,
                down,
                health,
            };
            (200, serde_json::to_string(&view).expect("view serializes"))
        }
        ["nodes", id] => match id.parse::<usize>().ok().and_then(|i| board.node(i)) {
            Some(status) => (
                200,
                serde_json::to_string(&status).expect("status serializes"),
            ),
            None => not_found(),
        },
        ["groups", id, "tree"] => {
            let Ok(group) = id.parse::<u32>() else {
                return not_found();
            };
            let mut rows = Vec::new();
            for status in board.snapshot().into_iter().flatten() {
                if let Some(g) = status.groups.iter().find(|g| g.group == group) {
                    rows.push(TreeRow {
                        node: status.node,
                        down: status.down,
                        on_tree: g.on_tree,
                        member: g.member,
                        upstream: g.upstream,
                        downstream: g.downstream.clone(),
                        shr: g.shr,
                        recovering: g.recovering,
                        deliveries: g.deliveries,
                    });
                }
            }
            if rows.is_empty() {
                return not_found();
            }
            let view = TreeView { group, rows };
            (200, serde_json::to_string(&view).expect("view serializes"))
        }
        _ => not_found(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::status::NodeStatus;

    #[test]
    fn health_keeps_serving_over_a_poisoned_slot() {
        let board = StatusBoard::new(2);
        board.publish(NodeStatus {
            node: 0,
            down: false,
            now_ns: 7,
            groups: Vec::new(),
            health: ControlHealth::default(),
        });
        board.poison_slot_for_test(0);
        let (code, body) = route("/health", &board);
        assert_eq!(code, 200, "a dead publisher must not take down /health");
        let view: HealthView = serde_json::from_str(&body).unwrap();
        assert_eq!(view.nodes, 2);
        assert_eq!(view.published, 1);
        // The other endpoints cross the same lock and must survive too.
        assert_eq!(route("/status", &board).0, 200);
        assert_eq!(route("/nodes/0", &board).0, 200);
    }
}
