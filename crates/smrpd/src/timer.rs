//! A monotonic-clock timer driver mirroring the simulator's
//! [`smrp_sim::TimerToken`] semantics.
//!
//! The simulator's engine gives every armed timer a never-reused token;
//! cancelling a token silences exactly that entry, and a timer armed
//! *before* a node crash but due *after* its repair still fires. The
//! daemon needs identical semantics on wall-clock time, so this driver
//! keeps the same token-keyed bookkeeping over a binary heap:
//!
//! * [`schedule`](TimerDriver::schedule) files a `(deadline, payload)`
//!   entry under a caller-supplied token (the one the router saw from
//!   its [`smrp_sim::Ctx`]);
//! * [`cancel`](TimerDriver::cancel) tombstones the token — stale heap
//!   entries are skipped lazily on pop, the standard lazy-deletion
//!   pattern, so cancel is O(1);
//! * re-arming an existing token replaces its payload and deadline
//!   (matching the engine, where `set_timer_with_token` supersedes the
//!   previous entry for that token).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use smrp_sim::{SimTime, TimerToken};

/// Pending-timer store keyed by [`TimerToken`], generic over the
/// router's timer payload.
#[derive(Debug)]
pub struct TimerDriver<T> {
    /// Min-heap of `(deadline, epoch)`; `epoch` disambiguates re-armed
    /// tokens (only the latest epoch for a token is live).
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    /// epoch → (token, payload) for live entries.
    live: HashMap<u64, (TimerToken, T)>,
    /// token → its current epoch.
    by_token: HashMap<TimerToken, u64>,
    next_epoch: u64,
}

impl<T> Default for TimerDriver<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerDriver<T> {
    /// An empty driver.
    pub fn new() -> Self {
        TimerDriver {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
            by_token: HashMap::new(),
            next_epoch: 0,
        }
    }

    /// Arms (or re-arms) `token` to deliver `payload` at `deadline`.
    pub fn schedule(&mut self, deadline: SimTime, token: TimerToken, payload: T) {
        if let Some(old) = self.by_token.remove(&token) {
            self.live.remove(&old);
        }
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        self.heap.push(Reverse((deadline, epoch)));
        self.live.insert(epoch, (token, payload));
        self.by_token.insert(token, epoch);
    }

    /// Silences `token` if it is armed; unknown tokens are a no-op,
    /// matching the engine's tolerance for cancelling already-fired
    /// timers.
    pub fn cancel(&mut self, token: TimerToken) {
        if let Some(epoch) = self.by_token.remove(&token) {
            self.live.remove(&epoch);
        }
    }

    /// Earliest live deadline, if any.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        while let Some(Reverse((at, epoch))) = self.heap.peek().copied() {
            if self.live.contains_key(&epoch) {
                return Some(at);
            }
            self.heap.pop();
        }
        None
    }

    /// Pops one timer whose deadline is `<= now`, in deadline order.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(TimerToken, T)> {
        while let Some(Reverse((at, epoch))) = self.heap.peek().copied() {
            if at > now {
                return None;
            }
            self.heap.pop();
            if let Some((token, payload)) = self.live.remove(&epoch) {
                self.by_token.remove(&token);
                return Some((token, payload));
            }
            // Tombstoned entry — keep draining.
        }
        None
    }

    /// Number of live (non-cancelled) timers.
    pub fn pending(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(ctx: &mut u64) -> TimerToken {
        // Tokens in the daemon come from `Ctx::standalone`'s shared
        // counter; tests fabricate the same monotone sequence.
        let t = TimerToken::from_raw(*ctx);
        *ctx += 1;
        t
    }

    #[test]
    fn fires_in_deadline_order() {
        let mut c = 0;
        let mut d = TimerDriver::new();
        let (t1, t2, t3) = (tok(&mut c), tok(&mut c), tok(&mut c));
        d.schedule(SimTime::from_ms(30.0), t3, "late");
        d.schedule(SimTime::from_ms(10.0), t1, "early");
        d.schedule(SimTime::from_ms(20.0), t2, "mid");
        assert_eq!(d.next_deadline(), Some(SimTime::from_ms(10.0)));
        assert_eq!(d.pop_due(SimTime::from_ms(25.0)), Some((t1, "early")));
        assert_eq!(d.pop_due(SimTime::from_ms(25.0)), Some((t2, "mid")));
        assert_eq!(d.pop_due(SimTime::from_ms(25.0)), None);
        assert_eq!(d.pop_due(SimTime::from_ms(30.0)), Some((t3, "late")));
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn cancel_tombstones_without_disturbing_others() {
        let mut c = 0;
        let mut d = TimerDriver::new();
        let (t1, t2) = (tok(&mut c), tok(&mut c));
        d.schedule(SimTime::from_ms(5.0), t1, 'a');
        d.schedule(SimTime::from_ms(6.0), t2, 'b');
        d.cancel(t1);
        assert_eq!(d.pending(), 1);
        assert_eq!(d.next_deadline(), Some(SimTime::from_ms(6.0)));
        assert_eq!(d.pop_due(SimTime::from_ms(10.0)), Some((t2, 'b')));
        // Cancelling something already gone is a no-op.
        d.cancel(t2);
        assert_eq!(d.pop_due(SimTime::from_ms(10.0)), None);
    }

    #[test]
    fn rearming_a_token_supersedes_the_old_entry() {
        let mut c = 0;
        let mut d = TimerDriver::new();
        let t = tok(&mut c);
        d.schedule(SimTime::from_ms(5.0), t, 1u32);
        d.schedule(SimTime::from_ms(50.0), t, 2u32);
        assert_eq!(d.pending(), 1);
        // The old 5 ms deadline is dead; nothing fires before 50 ms.
        assert_eq!(d.pop_due(SimTime::from_ms(40.0)), None);
        assert_eq!(d.pop_due(SimTime::from_ms(50.0)), Some((t, 2u32)));
    }
}
