//! Daemon assembly: spawn one [`NodeRuntime`] thread per router, wire a
//! transport fabric, and (for replays) check the final state against a
//! golden simulator digest.
//!
//! Two entry modes:
//!
//! * [`replay`] / [`launch_replay`] — conformance mode. A
//!   [`GoldenTrace`] (dumped by `faultlab --dump-trace`) carries the
//!   topology, preloaded trees, recovery plans, failure schedule, and
//!   the simulator's expected post-recovery state. The daemon re-runs
//!   the scenario on real threads and real (or in-process) datagrams;
//!   [`ReplayOutcome::matches`] is the conformance verdict.
//! * [`launch_demo`] — a free-running multicast session over a
//!   synthetic topology, for poking at the introspection API.
//!
//! All node clocks are anchored to one origin [`Instant`] slightly in
//! the future, so every thread observes protocol time 0 simultaneously
//! regardless of spawn order ([`MonotonicClock`] saturates to zero
//! before its anchor).

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use smrp_faultlab::GoldenTrace;
use smrp_net::{Graph, NodeId};
use smrp_proto::snapshot::SessionState;
use smrp_proto::{MultiRouter, ProtoSession, RecoveryPlan, RouterConfig, TreeProtocol};
use smrp_sim::{MonotonicClock, SimTime};

use crate::introspect::{self, Introspector};
use crate::node::{Injection, NodeRuntime, ScheduledInjection};
use crate::status::StatusBoard;
use crate::transport::{ChannelTransport, Transport, UdpTransport};

/// Which datagram fabric carries protocol traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process `mpsc` channels.
    Channel,
    /// Loopback UDP sockets — frames leave the process.
    Udp,
}

/// Tunables for a conformance replay.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Fabric to run over.
    pub transport: TransportKind,
    /// Protocol-time acceleration: `speed` protocol seconds per wall
    /// second. 5× turns the standard 3 s scenario horizon into 600 ms
    /// of wall time while keeping a 10 ms hello tick a comfortable 2 ms
    /// apart on the wire.
    pub speed: f64,
    /// Bind address for the HTTP introspection server, if wanted.
    pub introspect: Option<SocketAddr>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            transport: TransportKind::Channel,
            speed: 5.0,
            introspect: None,
        }
    }
}

/// A daemon with its node threads in flight.
pub struct RunningDaemon {
    board: Arc<StatusBoard>,
    handles: Vec<JoinHandle<MultiRouter>>,
    introspector: Option<Introspector>,
}

impl RunningDaemon {
    /// The live status board (shared with the node threads).
    pub fn board(&self) -> Arc<StatusBoard> {
        Arc::clone(&self.board)
    }

    /// Where the introspection server is listening, if it was enabled.
    pub fn introspect_addr(&self) -> Option<SocketAddr> {
        self.introspector.as_ref().map(|i| i.addr())
    }

    /// Waits for every node to pass its horizon; returns final router
    /// states in node-id order and stops the introspection server.
    pub fn join(self) -> io::Result<Vec<MultiRouter>> {
        let mut routers = Vec::with_capacity(self.handles.len());
        for h in self.handles {
            routers.push(
                h.join()
                    .map_err(|_| io::Error::other("a node runtime panicked"))?,
            );
        }
        if let Some(i) = self.introspector {
            i.stop();
        }
        Ok(routers)
    }
}

/// The verdict of a conformance replay.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The daemon's final per-group state.
    pub state: SessionState,
    /// Digest of `state`.
    pub digest: String,
    /// The simulator digest committed in the trace.
    pub expected_digest: String,
}

impl ReplayOutcome {
    /// Whether the daemon reproduced the simulator's outcome exactly.
    pub fn matches(&self) -> bool {
        self.digest == self.expected_digest
    }
}

fn boxed_fabric(kind: TransportKind, n: usize) -> io::Result<Vec<Box<dyn Transport>>> {
    Ok(match kind {
        TransportKind::Channel => ChannelTransport::fabric(n)
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Transport>)
            .collect(),
        TransportKind::Udp => UdpTransport::fabric(n)?
            .into_iter()
            .map(|t| Box::new(t) as Box<dyn Transport>)
            .collect(),
    })
}

/// Builds the per-node router processes a trace describes: tree state
/// loaded lane by lane, sources marked, recovery plans installed —
/// exactly the preload the simulator run started from.
fn preload_processes(trace: &GoldenTrace, config: RouterConfig) -> Vec<MultiRouter> {
    let mut procs: Vec<MultiRouter> = (0..trace.nodes as usize)
        .map(|_| MultiRouter::new(config))
        .collect();
    for g in &trace.groups {
        let group = smrp_net::GroupId::new(g.group as usize);
        for ns in &g.nodes {
            let downstream: Vec<NodeId> = ns
                .downstream
                .iter()
                .map(|&d| NodeId::new(d as usize))
                .collect();
            procs[ns.node as usize].lane_mut(group).load_state(
                ns.upstream.map(|u| NodeId::new(u as usize)),
                &downstream,
                ns.member,
            );
        }
        procs[g.source as usize].lane_mut(group).set_source();
        for plan in &g.plans {
            procs[plan.member as usize]
                .lane_mut(group)
                .install_recovery_plan(RecoveryPlan {
                    path: plan.path.iter().map(|&n| NodeId::new(n as usize)).collect(),
                    wait: SimTime::from_ns(plan.wait_ns),
                    path_delay: SimTime::from_ns(plan.path_delay_ns),
                });
        }
    }
    procs
}

/// The scripted injection schedule shared verbatim by every node.
fn injection_schedule(trace: &GoldenTrace) -> Vec<ScheduledInjection> {
    let fail_at = SimTime::from_ns(trace.failure.fail_at_ns);
    let mut schedule = Vec::new();
    for &l in &trace.failure.links {
        schedule.push(ScheduledInjection {
            at: fail_at,
            what: Injection::FailLink(smrp_net::LinkId::new(l as usize)),
        });
    }
    for &n in &trace.failure.nodes {
        schedule.push(ScheduledInjection {
            at: fail_at,
            what: Injection::FailNode(NodeId::new(n as usize)),
        });
    }
    if let Some(up_ns) = trace.failure.repair_at_ns {
        let up_at = SimTime::from_ns(up_ns);
        for &l in &trace.failure.links {
            schedule.push(ScheduledInjection {
                at: up_at,
                what: Injection::RepairLink(smrp_net::LinkId::new(l as usize)),
            });
        }
        for &n in &trace.failure.nodes {
            schedule.push(ScheduledInjection {
                at: up_at,
                what: Injection::RepairNode(NodeId::new(n as usize)),
            });
        }
    }
    schedule.sort_by_key(|s| s.at);
    schedule
}

#[allow(clippy::too_many_arguments)]
fn spawn_nodes(
    graph: Arc<Graph>,
    procs: Vec<MultiRouter>,
    transports: Vec<Box<dyn Transport>>,
    schedule: &[ScheduledInjection],
    horizon: SimTime,
    speed: f64,
    loss: f64,
    loss_seed: u64,
    board: &Arc<StatusBoard>,
) -> io::Result<Vec<JoinHandle<MultiRouter>>> {
    // Anchor far enough out that every thread is parked in its event
    // loop before protocol time starts moving.
    let origin = Instant::now() + Duration::from_millis(50);
    procs
        .into_iter()
        .zip(transports)
        .enumerate()
        .map(|(i, (router, transport))| {
            let rt = NodeRuntime::new(
                NodeId::new(i),
                Arc::clone(&graph),
                router,
                transport,
                MonotonicClock::anchored_at(origin, speed),
                horizon,
                schedule.to_vec(),
                loss,
                loss_seed,
                Arc::clone(board),
            );
            thread::Builder::new()
                .name(format!("smrpd-node-{i}"))
                .spawn(move || rt.run())
        })
        .collect()
}

/// Starts a conformance replay of `trace`; returns with the node
/// threads running.
pub fn launch_replay(trace: &GoldenTrace, opts: &ReplayOptions) -> io::Result<RunningDaemon> {
    let graph = Arc::new(trace.graph());
    let n = graph.node_count();
    // The simulator hardened its router config against the scripted
    // channel loss; the daemon must run the identical config or its
    // soft-state timing diverges from the digest's provenance.
    let config = RouterConfig::default().hardened_for_loss(trace.channel.loss);
    let procs = preload_processes(trace, config);
    let schedule = injection_schedule(trace);
    let transports = boxed_fabric(opts.transport, n)?;
    let board = Arc::new(StatusBoard::new(n));
    let introspector = match opts.introspect {
        Some(bind) => Some(introspect::serve(board.clone(), bind)?),
        None => None,
    };
    let handles = spawn_nodes(
        graph,
        procs,
        transports,
        &schedule,
        SimTime::from_ns(trace.horizon_ns),
        opts.speed,
        trace.channel.loss,
        trace.channel.seed,
        &board,
    )?;
    Ok(RunningDaemon {
        board,
        handles,
        introspector,
    })
}

/// Runs a conformance replay to completion and captures the verdict.
pub fn replay(trace: &GoldenTrace, opts: &ReplayOptions) -> io::Result<ReplayOutcome> {
    let routers = launch_replay(trace, opts)?.join()?;
    let state = SessionState::capture(
        &routers,
        &trace.affected(),
        &trace.down_nodes(),
        SimTime::from_ns(trace.failure.fail_at_ns),
        // Restoration is judged on the *paper* data cadence, matching
        // the simulator's report (hardening never touches it).
        RouterConfig::default().data_interval,
    );
    let digest = state.digest();
    Ok(ReplayOutcome {
        state,
        digest,
        expected_digest: trace.expected_digest.clone(),
    })
}

/// Synthetic topology shapes for demo mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// A cycle: node `i` links to `i + 1 (mod n)`.
    Ring,
    /// A path: node `i` links to `i + 1`.
    Line,
    /// A hub: node 0 links to every other node.
    Star,
}

impl Topology {
    /// Builds the shape over `n` nodes with unit link delays.
    pub fn build(self, n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        let ids: Vec<NodeId> = g.node_ids().collect();
        match self {
            Topology::Ring => {
                for i in 0..n {
                    g.add_link(ids[i], ids[(i + 1) % n], 1.0)
                        .expect("ring links are simple");
                }
            }
            Topology::Line => {
                for i in 0..n.saturating_sub(1) {
                    g.add_link(ids[i], ids[i + 1], 1.0)
                        .expect("line links are simple");
                }
            }
            Topology::Star => {
                for i in 1..n {
                    g.add_link(ids[0], ids[i], 1.0)
                        .expect("star links are simple");
                }
            }
        }
        g
    }
}

/// Tunables for a free-running demo daemon.
#[derive(Debug, Clone)]
pub struct DemoOptions {
    /// Router count.
    pub nodes: usize,
    /// Topology shape.
    pub topology: Topology,
    /// Number of concurrent multicast groups.
    pub groups: usize,
    /// How long (protocol time) the daemon runs.
    pub duration: SimTime,
    /// Protocol-time acceleration (see [`ReplayOptions::speed`]).
    pub speed: f64,
    /// Fabric to run over.
    pub transport: TransportKind,
    /// Bind address for the HTTP introspection server.
    pub introspect: Option<SocketAddr>,
}

impl Default for DemoOptions {
    fn default() -> Self {
        DemoOptions {
            nodes: 8,
            topology: Topology::Ring,
            groups: 2,
            duration: SimTime::from_ms(1000.0),
            speed: 1.0,
            transport: TransportKind::Channel,
            introspect: None,
        }
    }
}

/// Starts a demo daemon: `groups` SPF multicast sessions over a
/// synthetic topology, each group sourced at node `g mod nodes` with
/// three members spread around the topology.
pub fn launch_demo(opts: &DemoOptions) -> io::Result<RunningDaemon> {
    let n = opts.nodes;
    if n < 2 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "demo needs at least 2 nodes",
        ));
    }
    let graph = opts.topology.build(n);
    let ids: Vec<NodeId> = graph.node_ids().collect();
    let config = RouterConfig::default();
    let mut procs: Vec<MultiRouter> = (0..n).map(|_| MultiRouter::new(config)).collect();
    for gi in 0..opts.groups {
        let group = smrp_net::GroupId::new(gi);
        let source = ids[gi % n];
        let members: Vec<NodeId> = (1..=3.min(n - 1))
            .map(|k| ids[(gi + k * (n / 3).max(1)) % n])
            .filter(|&m| m != source)
            .collect();
        let session = ProtoSession::build(&graph, source, &members, TreeProtocol::Spf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{e:?}")))?;
        let tree = session.tree();
        for node in tree.on_tree_nodes() {
            let lane = procs[node.index()].lane_mut(group);
            lane.load_state(tree.parent(node), tree.children(node), tree.is_member(node));
            lane.set_tree_metadata(tree.shr(node), 0.0);
        }
        procs[source.index()].lane_mut(group).set_source();
    }

    let graph = Arc::new(graph);
    let transports = boxed_fabric(opts.transport, n)?;
    let board = Arc::new(StatusBoard::new(n));
    let introspector = match opts.introspect {
        Some(bind) => Some(introspect::serve(board.clone(), bind)?),
        None => None,
    };
    let handles = spawn_nodes(
        graph,
        procs,
        transports,
        &[],
        opts.duration,
        opts.speed,
        0.0,
        0,
        &board,
    )?;
    Ok(RunningDaemon {
        board,
        handles,
        introspector,
    })
}
