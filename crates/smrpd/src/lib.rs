#![warn(missing_docs)]

//! `smrpd` — the SMRP control plane as a real daemon.
//!
//! The rest of the workspace proves the protocol inside a deterministic
//! discrete-event simulator. This crate runs the *same* router code
//! ([`smrp_proto::MultiRouter`], unmodified) outside the simulator: one
//! thread per router, wall-clock timers, and actual datagrams — either
//! in-process channels or loopback UDP. The point is conformance, not a
//! parallel implementation:
//!
//! * [`transport`] — the [`Transport`] seam with [`ChannelTransport`]
//!   and [`UdpTransport`] backends;
//! * [`timer`] — a wall-clock [`TimerDriver`] mirroring the engine's
//!   [`smrp_sim::TimerToken`] semantics;
//! * [`node`] — the per-node event loop, dispatching the router through
//!   [`smrp_sim::Ctx::standalone`] exactly as the engine would;
//! * [`daemon`] — assembly plus the conformance entry point
//!   [`replay`]: re-run a golden trace dumped by
//!   `faultlab --dump-trace` and compare final-state digests against
//!   the simulator;
//! * [`status`] / [`introspect`] — a live HTTP view (per-group tree,
//!   SHR, reliable-lane health) of a running daemon.
//!
//! ```no_run
//! use smrp_faultlab::golden_scenarios;
//! use smrpd::daemon::{replay, ReplayOptions, TransportKind};
//!
//! let trace = golden_scenarios().remove(0);
//! let outcome = replay(
//!     &trace,
//!     &ReplayOptions {
//!         transport: TransportKind::Udp,
//!         ..ReplayOptions::default()
//!     },
//! )
//! .unwrap();
//! assert!(outcome.matches(), "daemon diverged from the simulator");
//! ```

pub mod daemon;
pub mod introspect;
pub mod node;
pub mod status;
pub mod timer;
pub mod transport;

pub use daemon::{
    launch_demo, launch_replay, replay, DemoOptions, ReplayOptions, ReplayOutcome, RunningDaemon,
    Topology, TransportKind,
};
pub use introspect::{HealthView, Introspector, StatusView, TreeRow, TreeView};
pub use status::{GroupStatus, NodeStatus, StatusBoard};
pub use timer::TimerDriver;
pub use transport::{ChannelTransport, Transport, UdpTransport};
