//! Live-introspection integration test: boot a demo daemon, poke the
//! HTTP API over real TCP, and check the views describe a coherent
//! multicast session (tree shape, SHR, member deliveries, health).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use smrp_sim::SimTime;
use smrpd::daemon::{launch_demo, DemoOptions, Topology, TransportKind};
use smrpd::{HealthView, NodeStatus, StatusView, TreeView};

/// One-shot HTTP GET, returning `(status code, body)`.
fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("introspection server reachable");
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: smrpd\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("full response");
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1
        .to_string();
    (code, body)
}

#[test]
fn introspection_reports_live_tree_shr_and_health() {
    let daemon = launch_demo(&DemoOptions {
        nodes: 8,
        topology: Topology::Ring,
        groups: 2,
        duration: SimTime::from_ms(1500.0),
        speed: 2.0,
        transport: TransportKind::Channel,
        introspect: Some("127.0.0.1:0".parse().unwrap()),
    })
    .expect("demo launches");
    let addr = daemon.introspect_addr().expect("introspection enabled");

    // Wait until every node has published and group 0's members have
    // seen multicast data flow.
    let deadline = Instant::now() + Duration::from_secs(5);
    let tree: TreeView = loop {
        assert!(Instant::now() < deadline, "introspection never went live");
        let (code, body) = get(addr, "/status");
        assert_eq!(code, 200);
        let status: StatusView = serde_json::from_str(&body).expect("/status parses");
        assert_eq!(status.nodes.len(), 8);
        if status.nodes.iter().any(|n| n.is_none()) {
            std::thread::sleep(Duration::from_millis(20));
            continue;
        }
        let (code, body) = get(addr, "/groups/0/tree");
        assert_eq!(code, 200);
        let tree: TreeView = serde_json::from_str(&body).expect("/groups/0/tree parses");
        if tree
            .rows
            .iter()
            .any(|r| r.member && r.upstream.is_some() && r.deliveries > 0)
        {
            break tree;
        }
        std::thread::sleep(Duration::from_millis(20));
    };

    // The rows must describe a coherent tree: one root (the source
    // side), parent/child pointers that agree, and non-trivial SHR
    // metadata on interior nodes.
    assert_eq!(tree.group, 0);
    let roots: Vec<_> = tree
        .rows
        .iter()
        .filter(|r| r.on_tree && r.upstream.is_none())
        .collect();
    assert_eq!(roots.len(), 1, "exactly one tree root, got {tree:#?}");
    for row in &tree.rows {
        if let Some(up) = row.upstream {
            let parent = tree
                .rows
                .iter()
                .find(|r| r.node == up)
                .unwrap_or_else(|| panic!("node {}'s parent {up} missing from view", row.node));
            assert!(
                parent.downstream.contains(&row.node),
                "parent {up} does not list child {}",
                row.node
            );
        }
    }
    assert!(
        tree.rows.iter().any(|r| r.shr > 0),
        "SHR metadata missing from every row: {tree:#?}"
    );

    // Per-node view agrees with the fleet view.
    let member = tree
        .rows
        .iter()
        .find(|r| r.member && r.deliveries > 0)
        .expect("a member saw data");
    let (code, body) = get(addr, &format!("/nodes/{}", member.node));
    assert_eq!(code, 200);
    let node: NodeStatus = serde_json::from_str(&body).expect("/nodes/<i> parses");
    assert_eq!(node.node, member.node);
    assert!(!node.down);
    assert!(node.groups.iter().any(|g| g.group == 0 && g.member));

    // Health rolls the fleet up.
    let (code, body) = get(addr, "/health");
    assert_eq!(code, 200);
    let health: HealthView = serde_json::from_str(&body).expect("/health parses");
    assert_eq!(health.nodes, 8);
    assert_eq!(health.published, 8);
    assert_eq!(health.down, 0);

    // Unknown routes 404 without wedging the server.
    assert_eq!(get(addr, "/groups/99/tree").0, 404);
    assert_eq!(get(addr, "/nodes/not-a-node").0, 404);
    assert_eq!(get(addr, "/flux-capacitor").0, 404);

    daemon.join().expect("clean shutdown");
}
