//! Golden-trace conformance: the daemon must reproduce the simulator.
//!
//! Each committed trace under `tests/golden/` carries the final
//! tree/outcome state (and its digest) that the deterministic simulator
//! produced for a scripted scenario. Replaying the scenario through the
//! daemon — real threads, wall-clock timers, actual datagrams — must
//! converge to a digest-identical state over *both* transports. The
//! digest is deliberately timing-free (tree shape + restored/stranded
//! sets), so thread scheduling and wire jitter cannot excuse a
//! divergence: a mismatch means the daemon's protocol behavior drifted
//! from the engine's.

use std::path::{Path, PathBuf};

use smrp_faultlab::GoldenTrace;
use smrpd::daemon::{replay, ReplayOptions, TransportKind};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn load(name: &str) -> GoldenTrace {
    let path = golden_dir().join(format!("{name}.json"));
    GoldenTrace::load(&path).unwrap_or_else(|e| {
        panic!(
            "loading {}: {e} — regenerate with \
             `cargo run --bin faultlab -- --dump-trace crates/smrpd/tests/golden`",
            path.display()
        )
    })
}

fn assert_conformant(name: &str, transport: TransportKind) {
    let trace = load(name);
    let outcome = replay(
        &trace,
        &ReplayOptions {
            transport,
            ..ReplayOptions::default()
        },
    )
    .expect("replay runs");
    assert!(
        outcome.matches(),
        "{name} over {transport:?} diverged from the simulator:\n\
         daemon digest   {}\n\
         sim digest      {}\n\
         daemon state: {:#?}",
        outcome.digest,
        outcome.expected_digest,
        outcome.state,
    );
}

#[test]
fn figure1_over_channels_matches_the_sim() {
    assert_conformant("figure1", TransportKind::Channel);
}

#[test]
fn figure1_over_udp_matches_the_sim() {
    assert_conformant("figure1", TransportKind::Udp);
}

#[test]
fn shared_fate_srlg_over_channels_matches_the_sim() {
    assert_conformant("shared_fate_srlg", TransportKind::Channel);
}

#[test]
fn shared_fate_srlg_over_udp_matches_the_sim() {
    assert_conformant("shared_fate_srlg", TransportKind::Udp);
}

#[test]
fn lossy_figure1_over_channels_matches_the_sim() {
    assert_conformant("figure1_lossy", TransportKind::Channel);
}

#[test]
fn lossy_figure1_over_udp_matches_the_sim() {
    assert_conformant("figure1_lossy", TransportKind::Udp);
}

#[test]
fn divergence_is_actually_detectable() {
    // Sanity for the harness itself: a tampered expectation must fail,
    // otherwise "6 conformant replays" proves nothing.
    let mut trace = load("figure1");
    trace.expected_digest = "0000000000000000".into();
    let outcome = replay(&trace, &ReplayOptions::default()).expect("replay runs");
    assert!(!outcome.matches());
}
