//! Ablations over SMRP's design choices (DESIGN.md's design-choice
//! benches).
//!
//! Three axes, all evaluated on the Figure 8 base setup
//! (`N = 100`, `N_G = 30`, `α = 0.2`, `D_thresh = 0.3`):
//!
//! * **Reshaping** (§3.2.3) on vs off — how much of the recovery-distance
//!   improvement is attributable to tree reshaping rather than join-time
//!   selection alone;
//! * **Candidate discovery** — full topology knowledge (§3.2.2) vs the
//!   neighbor-relayed query scheme (§3.3.1), quantifying the paper's
//!   warning that the query scheme "does not guarantee to obtain SHR for
//!   all on-tree nodes and the selected multicast path may not be optimal";
//! * **Condition I threshold** — how aggressive reshaping should be.

use smrp_core::select::SelectionMode;
use smrp_core::SmrpConfig;
use smrp_metrics::csvout::Csv;
use smrp_metrics::table::{percent, Table};

use crate::scenario::ScenarioConfig;
use crate::sweep::{self, SweepPoint};
use crate::Effort;

/// One ablation variant and its measurements.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Human-readable variant name.
    pub name: &'static str,
    /// Aggregated metrics.
    pub point: SweepPoint,
}

/// Results of the ablation study.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// All measured variants, first one is the full protocol.
    pub variants: Vec<Variant>,
}

fn config(selection: SelectionMode, auto_reshape: bool, threshold: u32) -> SmrpConfig {
    SmrpConfig {
        d_thresh: 0.3,
        reshape_threshold: threshold,
        auto_reshape,
        selection,
    }
}

/// Runs the ablation grid.
pub fn run(effort: Effort) -> AblationResult {
    // Like the figure sweeps, variant comparisons are mean-vs-mean over a
    // high-variance per-scenario metric; keep a floor of 5×3 scenarios so
    // `Effort::Quick` stays statistically meaningful.
    let topologies = effort.scale(10).max(5) as u32;
    let member_sets = effort.scale(5).max(3) as u32;
    let base = ScenarioConfig::default();

    let variants = [
        (
            "full protocol",
            config(SelectionMode::FullTopology, true, 1),
        ),
        (
            "no reshaping",
            config(SelectionMode::FullTopology, false, 1),
        ),
        (
            "lazy reshaping (threshold 4)",
            config(SelectionMode::FullTopology, true, 4),
        ),
        (
            "neighbor-query selection",
            config(SelectionMode::NeighborQuery, true, 1),
        ),
        (
            "neighbor-query, no reshaping",
            config(SelectionMode::NeighborQuery, false, 1),
        ),
    ];

    let variants = variants
        .into_iter()
        .enumerate()
        .map(|(i, (name, cfg))| Variant {
            name,
            point: sweep::run_point(i as f64, &base, cfg, topologies, member_sets),
        })
        .collect();
    AblationResult { variants }
}

impl AblationResult {
    /// Renders the comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["variant", "RD_rel", "D_rel", "Cost_rel"]);
        for v in &self.variants {
            t.row(vec![
                v.name.to_string(),
                percent(v.point.rd_rel.mean),
                percent(v.point.delay_rel.mean),
                percent(v.point.cost_rel.mean),
            ]);
        }
        t
    }

    /// CSV artifact.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(vec!["variant", "rd_rel", "delay_rel", "cost_rel"]);
        for v in &self.variants {
            csv.row(vec![
                v.name.to_string(),
                format!("{}", v.point.rd_rel.mean),
                format!("{}", v.point.delay_rel.mean),
                format!("{}", v.point.cost_rel.mean),
            ]);
        }
        csv
    }

    /// The full-protocol variant.
    pub fn full(&self) -> &Variant {
        &self.variants[0]
    }

    /// Looks a variant up by name.
    pub fn variant(&self, name: &str) -> Option<&Variant> {
        self.variants.iter().find(|v| v.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_improve_over_spf() {
        let r = run(Effort::Quick);
        assert_eq!(r.variants.len(), 5);
        for v in &r.variants {
            assert!(
                v.point.rd_rel.mean > -0.05,
                "variant {} regressed: {:.3}",
                v.name,
                v.point.rd_rel.mean
            );
        }
    }

    #[test]
    fn full_protocol_beats_or_matches_the_query_scheme() {
        let r = run(Effort::Quick);
        let full = r.full().point.rd_rel.mean;
        let query = r
            .variant("neighbor-query selection")
            .expect("variant exists")
            .point
            .rd_rel
            .mean;
        // The paper predicts the query scheme degrades path optimality; at
        // quick sample sizes we only require it not to *beat* the full
        // scheme by a margin.
        assert!(
            query <= full + 0.05,
            "query scheme ({query:.3}) implausibly beats full topology ({full:.3})"
        );
    }

    #[test]
    fn artifacts_render() {
        let r = run(Effort::Quick);
        assert!(r.table().render().contains("variant"));
        assert_eq!(r.to_csv().len(), 5);
    }
}
