//! Hierarchical recovery confinement (§3.3.3, Figure 6).
//!
//! On transit-stub topologies, compares flat SMRP recovery against the
//! 2-level hierarchical architecture: for every tree link of the flat
//! session, fail it and record (a) how many members lose service and
//! (b) whether the hierarchical repair stays inside one recovery domain.

use smrp_core::recovery::{self, DetourKind};
use smrp_core::{SmrpConfig, SmrpSession};
use smrp_metrics::csvout::Csv;
use smrp_metrics::table::Table;
use smrp_metrics::Stats;
use smrp_net::transit_stub::{TransitStubConfig, TransitStubTopology};
use smrp_net::FailureScenario;
use smrp_proto::hierarchy::{FailureScope, HierarchicalSession};

use crate::Effort;

/// Results of the confinement experiment.
#[derive(Debug, Clone)]
pub struct HierarchyResult {
    /// Link-failure cases evaluated.
    pub cases: usize,
    /// Cases the hierarchy confined to a single recovery domain.
    pub confined: usize,
    /// Cases the hierarchy could not repair inside the owning domain.
    pub unrepairable: usize,
    /// Members affected per failure under the flat session.
    pub flat_affected: Stats,
    /// Members affected per failure under the hierarchy.
    pub hier_affected: Stats,
    /// Flat local-detour recovery distance per failure.
    pub flat_rd: Stats,
    /// Hierarchical (in-domain) recovery distance per failure.
    pub hier_rd: Stats,
}

fn build_topology(seed: u64) -> TransitStubTopology {
    TransitStubConfig::new()
        .transit_nodes(4)
        .stubs_per_transit_node(2)
        .stub_nodes(8)
        .extra_edge_prob(0.45)
        .seed(seed)
        .generate()
        .expect("valid transit-stub parameters")
}

/// Runs the confinement comparison over several seeded topologies.
pub fn run(effort: Effort) -> HierarchyResult {
    let seeds = effort.scale(5).max(1) as u64;
    let mut result = HierarchyResult {
        cases: 0,
        confined: 0,
        unrepairable: 0,
        flat_affected: Stats::new(),
        hier_affected: Stats::new(),
        flat_rd: Stats::new(),
        hier_rd: Stats::new(),
    };

    for seed in 0..seeds {
        let topo = build_topology(seed * 71 + 13);
        let graph = topo.graph();
        // Source in the first stub; members spread over stubs.
        let stubs: Vec<_> = topo.stub_domains().collect();
        let source = stubs[0].nodes()[0];
        let members: Vec<_> = stubs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .flat_map(|(_, s)| s.nodes().iter().copied().skip(2).take(2))
            .filter(|&m| m != source)
            .collect();

        // Flat session over the whole graph.
        let mut flat =
            SmrpSession::new(graph, source, SmrpConfig::default()).expect("flat session builds");
        for &m in &members {
            flat.join(m).expect("member joins flat session");
        }
        // Hierarchical session.
        let hier = HierarchicalSession::build(&topo, source, &members, SmrpConfig::default())
            .expect("hierarchy builds");

        // Fail every flat tree link once.
        for link in flat.tree().links(graph) {
            let scenario = FailureScenario::link(link);
            let affected = recovery::affected_members(graph, flat.tree(), &scenario);
            if affected.is_empty() {
                continue;
            }
            result.cases += 1;
            result.flat_affected.push(affected.len() as f64);

            // Flat recovery: fragment-root local detours.
            let mut flat_rd = 0.0;
            for n in flat.tree().on_tree_nodes() {
                let Some(p) = flat.tree().parent(n) else {
                    continue;
                };
                if graph.link_between(n, p) != Some(link) {
                    continue;
                }
                if let Ok(rec) =
                    recovery::recover(graph, flat.tree(), &scenario, n, DetourKind::Local)
                {
                    flat_rd += rec.recovery_distance();
                }
            }
            result.flat_rd.push(flat_rd);

            // Hierarchical recovery.
            match hier.recover(link) {
                Ok(rec) => {
                    result.hier_affected.push(rec.affected_members.len() as f64);
                    result.hier_rd.push(rec.recovery_distance);
                    if rec.domains_involved <= 1 {
                        result.confined += 1;
                    }
                    let _ = matches!(rec.scope, FailureScope::Stub(_));
                }
                Err(_) => result.unrepairable += 1,
            }
        }
    }
    result
}

impl HierarchyResult {
    /// Renders the comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["metric", "flat", "hierarchical"]);
        t.row(vec![
            "mean affected members per failure".into(),
            format!("{:.2}", self.flat_affected.mean()),
            format!("{:.2}", self.hier_affected.mean()),
        ]);
        t.row(vec![
            "mean recovery distance".into(),
            format!("{:.2}", self.flat_rd.mean()),
            format!("{:.2}", self.hier_rd.mean()),
        ]);
        t.row(vec![
            "failures confined to one domain".into(),
            "-".into(),
            format!("{}/{}", self.confined, self.cases),
        ]);
        t
    }

    /// CSV artifact.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(vec![
            "cases",
            "confined",
            "unrepairable",
            "flat_affected_mean",
            "hier_affected_mean",
            "flat_rd_mean",
            "hier_rd_mean",
        ]);
        csv.row_f64(&[
            self.cases as f64,
            self.confined as f64,
            self.unrepairable as f64,
            self.flat_affected.mean(),
            self.hier_affected.mean(),
            self.flat_rd.mean(),
            self.hier_rd.mean(),
        ]);
        csv
    }

    /// Textual summary against the paper's claim.
    pub fn summary(&self) -> String {
        format!(
            "{}/{} failures confined to a single recovery domain ({} unrepairable \
             in-domain); paper §3.3.3: \"all tree reconfigurations are confined inside\" \
             the owning domain",
            self.confined, self.cases, self.unrepairable
        )
    }
}

/// Results of the N-level (3-level) confinement experiment.
#[derive(Debug, Clone)]
pub struct NLevelResult {
    /// Link-failure cases where the hierarchy's tree was affected.
    pub cases: usize,
    /// Cases repaired inside exactly one domain.
    pub confined: usize,
    /// Cases with no in-domain detour (gateway cuts and sparse domains).
    pub unrepairable: usize,
    /// Active domains per topology.
    pub active_domains: Stats,
}

/// Runs the §3.3.3 generalization on 3-level hierarchies: every graph link
/// is failed once and the repair is attributed/confined by the N-level
/// session.
pub fn run_nlevel(effort: Effort) -> NLevelResult {
    use smrp_net::nlevel::NLevelConfig;
    use smrp_proto::hierarchy::NLevelSession;

    let seeds = effort.scale(5).max(1) as u64;
    let mut result = NLevelResult {
        cases: 0,
        confined: 0,
        unrepairable: 0,
        active_domains: Stats::new(),
    };
    for seed in 0..seeds {
        let topo = NLevelConfig::new(3)
            .level(2, 5)
            .level(2, 4)
            .extra_edge_prob(0.5)
            .seed(seed * 131 + 7)
            .generate()
            .expect("valid hierarchy parameters");
        let leaves: Vec<_> = topo.leaf_domains().collect();
        let source = leaves[0].nodes()[0];
        let source_parent = leaves[0].parent();
        let far: Vec<_> = leaves
            .iter()
            .filter(|l| l.parent() != source_parent)
            .step_by(7)
            .take(3)
            .collect();
        let members: Vec<_> = far
            .iter()
            .flat_map(|l| l.nodes().iter().copied().take(2))
            .collect();
        let session =
            NLevelSession::build(&topo, source, &members, smrp_core::SmrpConfig::default())
                .expect("hierarchy builds");
        result.active_domains.push(session.active_domains() as f64);
        for link in topo.graph().link_ids() {
            match session.recover(link) {
                Ok(rec) if rec.domains_involved > 0 => {
                    result.cases += 1;
                    result.confined += usize::from(rec.domains_involved == 1);
                }
                Ok(_) => {}
                Err(_) => {
                    result.cases += 1;
                    result.unrepairable += 1;
                }
            }
        }
    }
    result
}

impl NLevelResult {
    /// Renders the result table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["metric", "value"]);
        t.row(vec![
            "tree-affecting failures".into(),
            format!("{}", self.cases),
        ]);
        t.row(vec![
            "confined to one domain".into(),
            format!("{}", self.confined),
        ]);
        t.row(vec![
            "unrepairable in-domain".into(),
            format!("{}", self.unrepairable),
        ]);
        t.row(vec![
            "active domains per run".into(),
            format!("{:.1}", self.active_domains.mean()),
        ]);
        t
    }

    /// Textual summary.
    pub fn summary(&self) -> String {
        format!(
            "3-level hierarchy: {}/{} tree-affecting failures repaired inside exactly \
             one recovery domain ({} unrepairable, dominated by single-attachment \
             gateway cuts) — the N-level generalization of §3.3.3 behaves like the \
             2-level instantiation",
            self.confined, self.cases, self.unrepairable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_level_confinement_holds() {
        let r = run_nlevel(Effort::Quick);
        assert!(r.cases > 0);
        // Every repaired failure stayed inside its domain.
        assert_eq!(r.confined + r.unrepairable, r.cases);
        assert!(r.active_domains.mean() >= 4.0);
    }

    #[test]
    fn repairable_failures_are_confined() {
        let r = run(Effort::Quick);
        assert!(r.cases > 0, "no failure cases were generated");
        // Gateway links are single attachments: failing one cannot be
        // repaired inside the owning domain (the paper's architecture would
        // elect a new agent — out of scope), so confinement is measured
        // over the repairable cases.
        let repairable = r.cases - r.unrepairable;
        assert!(repairable > 0, "every failure was a gateway cut");
        let confined_frac = r.confined as f64 / repairable as f64;
        assert!(
            confined_frac > 0.95,
            "only {:.0}% of repairable failures confined ({} of {repairable})",
            confined_frac * 100.0,
            r.confined,
        );
    }

    #[test]
    fn artifacts_render() {
        let r = run(Effort::Quick);
        assert!(r.table().render().contains("confined"));
        assert_eq!(r.to_csv().len(), 1);
        assert!(r.summary().contains("domain"));
    }
}
