//! Shared parameter-sweep machinery for Figures 8–10.
//!
//! Each figure varies one knob (`D_thresh`, `α`, `N_G`) while holding the
//! rest at the paper's base configuration, runs `topologies × member_sets`
//! scenarios per point (10 × 10 = 100 in the paper), and reports the three
//! relative metrics with 95% confidence intervals.

use serde::Serialize;
use smrp_core::SmrpConfig;
use smrp_metrics::csvout::Csv;
use smrp_metrics::table::{percent, Table};
use smrp_metrics::{ConfidenceInterval, Stats};

use crate::measure::measure_scenario;
use crate::scenario::ScenarioConfig;

/// Aggregated metrics for one sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// The swept parameter's value at this point.
    pub x: f64,
    /// `RD^relative` (recovery-distance improvement) with CI.
    pub rd_rel: ConfidenceInterval,
    /// `D^relative` (delay penalty) with CI.
    pub delay_rel: ConfidenceInterval,
    /// `Cost^relative` (tree-cost penalty) with CI.
    pub cost_rel: ConfidenceInterval,
    /// Scenarios measured.
    pub scenarios: usize,
    /// Mean average node degree across the point's topologies.
    pub avg_degree: f64,
}

/// Runs the measurement kernel over `topologies × member_sets` scenarios
/// for one parameter point.
///
/// # Panics
///
/// Panics on scenario-generation or tree-construction failures, which
/// cannot occur with validated parameters on connected topologies.
pub fn run_point(
    x: f64,
    scenario_config: &ScenarioConfig,
    smrp_config: SmrpConfig,
    topologies: u32,
    member_sets: u32,
) -> SweepPoint {
    let scenarios = scenario_config
        .scenarios(topologies, member_sets)
        .expect("valid scenario parameters");
    let mut rd = Stats::new();
    let mut delay = Stats::new();
    let mut cost = Stats::new();
    let mut degree = Stats::new();
    for s in &scenarios {
        if s.provenance.1 == 0 {
            degree.push(s.graph.average_degree());
        }
        let out = measure_scenario(s, smrp_config).expect("scenario measures");
        if let Some(v) = out.mean_rd_relative() {
            rd.push(v);
        }
        if let Some(v) = out.mean_delay_relative() {
            delay.push(v);
        }
        cost.push(out.cost_relative());
    }
    SweepPoint {
        x,
        rd_rel: ConfidenceInterval::from_stats(&rd),
        delay_rel: ConfidenceInterval::from_stats(&delay),
        cost_rel: ConfidenceInterval::from_stats(&cost),
        scenarios: scenarios.len(),
        avg_degree: degree.mean(),
    }
}

/// Renders sweep points as a paper-style table.
pub fn table(x_name: &str, points: &[SweepPoint]) -> Table {
    let mut t = Table::new(vec![
        x_name,
        "avg_degree",
        "RD_rel (95% CI)",
        "D_rel (95% CI)",
        "Cost_rel (95% CI)",
        "scenarios",
    ]);
    for p in points {
        t.row(vec![
            format!("{}", p.x),
            format!("{:.2}", p.avg_degree),
            format!(
                "{} ± {}",
                percent(p.rd_rel.mean),
                percent(p.rd_rel.half_width)
            ),
            format!(
                "{} ± {}",
                percent(p.delay_rel.mean),
                percent(p.delay_rel.half_width)
            ),
            format!(
                "{} ± {}",
                percent(p.cost_rel.mean),
                percent(p.cost_rel.half_width)
            ),
            format!("{}", p.scenarios),
        ]);
    }
    t
}

/// CSV artifact with one row per sweep point.
pub fn to_csv(x_name: &str, points: &[SweepPoint]) -> Csv {
    let mut csv = Csv::new(vec![
        x_name,
        "avg_degree",
        "rd_rel_mean",
        "rd_rel_ci",
        "delay_rel_mean",
        "delay_rel_ci",
        "cost_rel_mean",
        "cost_rel_ci",
        "scenarios",
    ]);
    for p in points {
        csv.row_f64(&[
            p.x,
            p.avg_degree,
            p.rd_rel.mean,
            p.rd_rel.half_width,
            p.delay_rel.mean,
            p.delay_rel.half_width,
            p.cost_rel.mean,
            p.cost_rel.half_width,
            p.scenarios as f64,
        ]);
    }
    csv
}
