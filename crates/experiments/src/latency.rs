//! Restoration-latency experiment (the §1 motivation, protocol level).
//!
//! The paper's opening argument: PIM-based recovery is dominated by the
//! underlying unicast (OSPF) reconvergence — measured in the tens of
//! seconds by Wang et al. (ICNP 2000) — while a local detour only pays
//! heartbeat detection plus graft signalling. This experiment runs both
//! strategies through the message-level protocol on the same trees and
//! failures and reports wall-clock (simulated) restoration latencies.

use smrp_core::recovery;
use smrp_metrics::csvout::Csv;
use smrp_metrics::table::Table;
use smrp_metrics::Stats;
use smrp_net::FailureScenario;
use smrp_proto::{ProtoSession, RecoveryStrategy, TreeProtocol};
use smrp_sim::SimTime;

use crate::measure::smrp_config;
use crate::scenario::ScenarioConfig;
use crate::Effort;

/// Modelled OSPF reconvergence delay (milliseconds). Wang et al. report
/// PIM-over-OSPF recovery in the tens of seconds; 30 s is the
/// conservative middle of their range.
pub const RECONVERGENCE_MS: f64 = 30_000.0;

/// Results of the restoration-latency experiment.
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// Distribution of per-member local-detour latencies (ms).
    pub local_histogram: smrp_metrics::Histogram,
    /// Per-failure mean latency (ms) via local detour.
    pub local_ms: Stats,
    /// Per-failure mean latency (ms) via global detour.
    pub global_ms: Stats,
    /// Failures where the local detour failed to restore everyone.
    pub local_incomplete: usize,
    /// Failures where the global detour failed to restore everyone.
    pub global_incomplete: usize,
    /// Number of failure cases run.
    pub cases: usize,
}

/// Runs the experiment: for several scenarios, apply the worst-case
/// failure of a sampled member and measure both strategies.
pub fn run(effort: Effort) -> LatencyResult {
    let scenario_config = ScenarioConfig {
        nodes: 60,
        group_size: 12,
        ..ScenarioConfig::default()
    };
    // Some scenarios draw a physically unrecoverable worst case (degree-1
    // source) and are skipped, so oversample relative to the target count.
    let cases = effort.scale(20).max(6) as u32;
    let scenarios = scenario_config
        .scenarios(cases, 1)
        .expect("valid scenario parameters");

    let mut local_ms = Stats::new();
    let mut global_ms = Stats::new();
    let mut local_histogram = smrp_metrics::Histogram::new(0.0, 1_000.0, 20);
    let mut local_incomplete = 0;
    let mut global_incomplete = 0;
    let mut ran = 0;

    for scenario in &scenarios {
        let session = ProtoSession::build(
            &scenario.graph,
            scenario.source,
            &scenario.members,
            TreeProtocol::Smrp(smrp_config(0.3)),
        )
        .expect("session builds");
        // Worst-case failure of the first member.
        let member = scenario.members[0];
        let Some(link) = recovery::worst_case_failure_for(&scenario.graph, session.tree(), member)
        else {
            continue;
        };
        let fail = FailureScenario::link(link);
        // Skip physically unrecoverable cases (e.g. the failed link was the
        // source's only link): no strategy can restore them and the paper's
        // metric is undefined there.
        if recovery::recover(
            &scenario.graph,
            session.tree(),
            &fail,
            member,
            recovery::DetourKind::Local,
        )
        .is_err()
        {
            continue;
        }
        let fail_at = SimTime::from_ms(200.0);
        let until = SimTime::from_ms(RECONVERGENCE_MS + 5_000.0);

        let local = session.run_failure(&fail, RecoveryStrategy::LocalDetour, fail_at, until);
        let global = session.run_failure(
            &fail,
            RecoveryStrategy::GlobalDetour {
                reconvergence: SimTime::from_ms(RECONVERGENCE_MS),
            },
            fail_at,
            until,
        );
        ran += 1;
        for (_, latency) in &local.restorations {
            if let Some(t) = latency {
                local_histogram.push(t.as_ms());
            }
        }
        match local.mean_latency_ms() {
            Some(ms) if local.all_restored() => local_ms.push(ms),
            _ => local_incomplete += 1,
        }
        match global.mean_latency_ms() {
            Some(ms) if global.all_restored() => global_ms.push(ms),
            _ => global_incomplete += 1,
        }
    }

    LatencyResult {
        local_histogram,
        local_ms,
        global_ms,
        local_incomplete,
        global_incomplete,
        cases: ran,
    }
}

impl LatencyResult {
    /// Mean speedup of the local detour over the global detour.
    pub fn speedup(&self) -> Option<f64> {
        if self.local_ms.count() == 0 || self.global_ms.count() == 0 {
            return None;
        }
        Some(self.global_ms.mean() / self.local_ms.mean())
    }

    /// Renders the comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["strategy", "mean latency (ms)", "restored cases"]);
        t.row(vec![
            "local detour (SMRP)".into(),
            format!("{:.1}", self.local_ms.mean()),
            format!("{}/{}", self.local_ms.count(), self.cases),
        ]);
        t.row(vec![
            "global detour (PIM over OSPF)".into(),
            format!("{:.1}", self.global_ms.mean()),
            format!("{}/{}", self.global_ms.count(), self.cases),
        ]);
        t
    }

    /// CSV artifact.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(vec!["strategy", "mean_latency_ms", "restored", "cases"]);
        csv.row(vec![
            "local".into(),
            format!("{}", self.local_ms.mean()),
            format!("{}", self.local_ms.count()),
            format!("{}", self.cases),
        ]);
        csv.row(vec![
            "global".into(),
            format!("{}", self.global_ms.mean()),
            format!("{}", self.global_ms.count()),
            format!("{}", self.cases),
        ]);
        csv
    }

    /// Renders the local-latency distribution.
    pub fn histogram_text(&self) -> String {
        let mut out = String::from("local-detour restoration latency distribution (ms):\n");
        out.push_str(&self.local_histogram.render(40));
        if let Some(p95) = self.local_histogram.quantile(0.95) {
            out.push_str(&format!("p95 ~= {p95:.0} ms\n"));
        }
        out
    }

    /// Textual summary against the paper's motivation.
    pub fn summary(&self) -> String {
        match self.speedup() {
            Some(s) => format!(
                "local detour restores in {:.0} ms vs {:.0} ms for the global detour — \
                 {s:.0}× faster (paper §1: recovery is dominated by OSPF reconvergence)",
                self.local_ms.mean(),
                self.global_ms.mean()
            ),
            None => "insufficient restored cases to compare".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_detour_is_orders_of_magnitude_faster() {
        let r = run(Effort::Quick);
        assert!(r.cases >= 1, "every sampled case was unrecoverable");
        let speedup = r.speedup().expect("both strategies restored some cases");
        assert!(
            speedup > 20.0,
            "expected a large speedup, got {speedup:.1}x \
             (local {:.1} ms, global {:.1} ms)",
            r.local_ms.mean(),
            r.global_ms.mean()
        );
        // Local restoration is sub-second: detection (~30 ms) + signalling.
        assert!(r.local_ms.mean() < 1_000.0);
        // Global restoration cannot beat the reconvergence delay.
        assert!(r.global_ms.mean() >= RECONVERGENCE_MS);
    }

    #[test]
    fn artifacts_render() {
        let r = run(Effort::Quick);
        assert!(r.table().render().contains("local detour"));
        assert_eq!(r.to_csv().len(), 2);
        assert!(r.summary().contains("faster"));
    }
}
