//! Figure 7: recovery distance, local detour vs global detour (§4.3.1).
//!
//! Setup (from the paper): `N = 100`, `N_G = 30`, `α = 0.2`,
//! `D_thresh = 0.3`; five random topologies, one random member set each.
//! For every member the worst-case failure — the source-incident link of
//! its multicast path — is applied, and the recovery distance is computed
//! via the global detour (x-axis) and the local detour (y-axis). The
//! paper observes most points below `y = x` and an average reduction of
//! about 33%.

use serde::Serialize;
use smrp_core::recovery::{self, DetourKind};
use smrp_metrics::csvout::Csv;
use smrp_metrics::scatter::ScatterPlot;
use smrp_metrics::Stats;
use smrp_net::FailureScenario;

use crate::measure::{build_smrp_tree, smrp_config};
use crate::scenario::ScenarioConfig;
use crate::Effort;

/// One scatter point: a member's recovery distances under both detours.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DetourPoint {
    /// Recovery distance via global detour (post-reconvergence SPF
    /// re-join).
    pub global: f64,
    /// Recovery distance via local detour (nearest connected on-tree
    /// node).
    pub local: f64,
}

/// Results of the Figure 7 experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Result {
    /// All member points across topologies.
    pub points: Vec<DetourPoint>,
    /// Fraction of points with `local < global`.
    pub below_diagonal: f64,
    /// Mean relative reduction `(global − local) / global`.
    pub mean_reduction: f64,
}

/// Runs the Figure 7 experiment.
///
/// # Panics
///
/// Panics only on internal errors (topology generation with validated
/// parameters).
pub fn run(effort: Effort) -> Fig7Result {
    let config = ScenarioConfig::default(); // N=100, N_G=30, alpha=0.2.
    let topologies = effort.scale(5).max(2) as u32;
    let scenarios = config
        .scenarios(topologies, 1)
        .expect("valid scenario parameters");

    let mut points = Vec::new();
    let mut reduction = Stats::new();
    for scenario in &scenarios {
        let tree = build_smrp_tree(scenario, smrp_config(0.3)).expect("tree builds");
        for &member in &scenario.members {
            let Some(link) = recovery::worst_case_failure_for(&scenario.graph, &tree, member)
            else {
                continue;
            };
            let fail = FailureScenario::link(link);
            let local = recovery::recover(&scenario.graph, &tree, &fail, member, DetourKind::Local);
            let global =
                recovery::recover(&scenario.graph, &tree, &fail, member, DetourKind::Global);
            let (Ok(local), Ok(global)) = (local, global) else {
                continue; // unaffected or unrecoverable members carry no point.
            };
            let p = DetourPoint {
                global: global.recovery_distance(),
                local: local.recovery_distance(),
            };
            if p.global > 0.0 {
                reduction.push((p.global - p.local) / p.global);
            }
            points.push(p);
        }
    }

    let below = points.iter().filter(|p| p.local < p.global).count();
    let below_diagonal = if points.is_empty() {
        0.0
    } else {
        below as f64 / points.len() as f64
    };
    Fig7Result {
        points,
        below_diagonal,
        mean_reduction: reduction.mean(),
    }
}

impl Fig7Result {
    /// Renders the paper-style scatter plot.
    pub fn plot(&self) -> String {
        let mut plot = ScatterPlot::new(
            "Figure 7: recovery distance, local vs global detour (worst-case failures)",
        )
        .labels("RD via global detour", "RD via local detour")
        .with_diagonal()
        .size(64, 26);
        plot.extend(self.points.iter().map(|p| (p.global, p.local)));
        plot.render()
    }

    /// CSV artifact with one row per member point.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(vec!["global_rd", "local_rd"]);
        for p in &self.points {
            csv.row_f64(&[p.global, p.local]);
        }
        csv
    }

    /// One-paragraph textual summary comparing against the paper's claims.
    pub fn summary(&self) -> String {
        format!(
            "{} member recovery points; {:.0}% below y = x (paper: \"most\"); \
             mean local-detour reduction {:.1}% (paper: ~33%)",
            self.points.len(),
            self.below_diagonal * 100.0,
            self.mean_reduction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_the_shape() {
        let result = run(Effort::Quick);
        assert!(
            result.points.len() >= 30,
            "too few points: {}",
            result.points.len()
        );
        // The paper's headline shape: local detours are shorter for the
        // majority of members, with a substantial mean reduction.
        assert!(
            result.below_diagonal > 0.5,
            "only {:.0}% below the diagonal",
            result.below_diagonal * 100.0
        );
        assert!(
            result.mean_reduction > 0.1,
            "mean reduction only {:.1}%",
            result.mean_reduction * 100.0
        );
        // Local detour can never exceed the global one by definition of
        // "nearest connected on-tree node" vs "prefix of the new SPF path".
        for p in &result.points {
            assert!(p.local <= p.global + 1e-9);
        }
    }

    #[test]
    fn artifacts_render() {
        let result = run(Effort::Quick);
        assert!(result.plot().contains('*'));
        assert!(result.to_csv().render().starts_with("global_rd,local_rd\n"));
        assert!(result.summary().contains("paper"));
    }
}
