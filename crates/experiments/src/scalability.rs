//! Scalability with network size (engineering extension).
//!
//! The paper fixes `N = 100` and answers scalability with the hierarchical
//! architecture (§3.3.3). This experiment measures how the *flat* protocol
//! behaves as `N` grows — both the quality metrics (does the improvement
//! persist?) and the computational cost of the implementation (join-time
//! path selection is one sink-constrained Dijkstra; reshaping clones the
//! tree per evaluation), providing the numbers behind DESIGN.md's "O(N)
//! refresh is never the bottleneck" claim.

use std::time::Instant;

use smrp_metrics::csvout::Csv;
use smrp_metrics::table::{percent, Table};
use smrp_metrics::Stats;

use crate::measure::{measure_scenario, smrp_config};
use crate::scenario::ScenarioConfig;
use crate::Effort;

/// Measurements at one network size.
#[derive(Debug, Clone)]
pub struct SizePoint {
    /// Number of nodes `N`.
    pub nodes: usize,
    /// Members `N_G` (scaled with `N`).
    pub group_size: usize,
    /// Mean `RD^relative`.
    pub rd_rel: Stats,
    /// Mean `D^relative`.
    pub delay_rel: Stats,
    /// Wall-clock milliseconds per full scenario measurement (build both
    /// trees + every member's worst-case recovery, both trees).
    pub ms_per_scenario: Stats,
}

/// Results of the scalability sweep.
#[derive(Debug, Clone)]
pub struct ScalabilityResult {
    /// One point per network size.
    pub points: Vec<SizePoint>,
}

/// The swept sizes.
pub const SIZES: [usize; 4] = [50, 100, 200, 400];

/// Runs the sweep; the group size scales with `N` (30% of the nodes) to
/// keep member density comparable across sizes.
pub fn run(effort: Effort) -> ScalabilityResult {
    let scenarios_per_size = effort.scale(10).max(2) as u32;
    let points = SIZES
        .iter()
        .map(|&n| {
            let group = (n * 3 / 10).max(5);
            let cfg = ScenarioConfig {
                nodes: n,
                group_size: group,
                ..ScenarioConfig::default()
            };
            let mut point = SizePoint {
                nodes: n,
                group_size: group,
                rd_rel: Stats::new(),
                delay_rel: Stats::new(),
                ms_per_scenario: Stats::new(),
            };
            for scenario in cfg
                .scenarios(scenarios_per_size, 1)
                .expect("valid scenario parameters")
            {
                let start = Instant::now();
                let out = measure_scenario(&scenario, smrp_config(0.3)).expect("measures");
                point
                    .ms_per_scenario
                    .push(start.elapsed().as_secs_f64() * 1000.0);
                if let Some(v) = out.mean_rd_relative() {
                    point.rd_rel.push(v);
                }
                if let Some(v) = out.mean_delay_relative() {
                    point.delay_rel.push(v);
                }
            }
            point
        })
        .collect();
    ScalabilityResult { points }
}

impl ScalabilityResult {
    /// Renders the sweep table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["N", "N_G", "RD_rel", "D_rel", "ms/scenario"]);
        for p in &self.points {
            t.row(vec![
                format!("{}", p.nodes),
                format!("{}", p.group_size),
                percent(p.rd_rel.mean()),
                percent(p.delay_rel.mean()),
                format!("{:.1}", p.ms_per_scenario.mean()),
            ]);
        }
        t
    }

    /// CSV artifact.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(vec![
            "nodes",
            "group",
            "rd_rel",
            "delay_rel",
            "ms_per_scenario",
        ]);
        for p in &self.points {
            csv.row_f64(&[
                p.nodes as f64,
                p.group_size as f64,
                p.rd_rel.mean(),
                p.delay_rel.mean(),
                p.ms_per_scenario.mean(),
            ]);
        }
        csv
    }

    /// Textual summary.
    pub fn summary(&self) -> String {
        let first = &self.points[0];
        let last = self.points.last().expect("non-empty sweep");
        format!(
            "RD_rel holds from {:.1}% at N={} to {:.1}% at N={}; a full scenario \
             measurement costs {:.0} ms at N={} — flat SMRP stays practical well \
             beyond the paper's 100 nodes",
            first.rd_rel.mean() * 100.0,
            first.nodes,
            last.rd_rel.mean() * 100.0,
            last.nodes,
            last.ms_per_scenario.mean(),
            last.nodes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_persists_across_sizes() {
        let r = run(Effort::Quick);
        assert_eq!(r.points.len(), 4);
        for p in &r.points {
            assert!(
                p.rd_rel.mean() > -0.05,
                "N={} regressed: {:.3}",
                p.nodes,
                p.rd_rel.mean()
            );
            assert!(p.ms_per_scenario.mean() > 0.0);
        }
        // Bigger networks cost more, but sub-quadratically enough to stay
        // usable; guard only against runaway blowup in CI.
        let small = r.points[0].ms_per_scenario.mean();
        let large = r.points[3].ms_per_scenario.mean();
        assert!(
            large < small * 2_000.0,
            "cost exploded: {small:.1} ms -> {large:.1} ms"
        );
    }

    #[test]
    fn artifacts_render() {
        let r = run(Effort::Quick);
        assert!(r.table().render().contains("ms/scenario"));
        assert_eq!(r.to_csv().len(), 4);
        assert!(r.summary().contains("practical"));
    }
}
