//! Figure 10: the effect of group size `N_G` (§4.3.4).
//!
//! Setup: `N = 100`, `α = 0.2`, `D_thresh = 0.3`; `N_G` swept over
//! {20, 30, 40, 50}; 100 scenarios per point. The paper's observations:
//!
//! * performance is steady across group sizes — ≈20% shorter recovery
//!   paths for ≈5% overhead;
//! * a slight decline of the improvement with larger groups (more members
//!   means everyone already has close neighbors, shrinking SMRP's edge).

use crate::measure::smrp_config;
use crate::scenario::ScenarioConfig;
use crate::sweep::{self, SweepPoint};
use crate::Effort;

/// The `N_G` values swept by the paper.
pub const GROUP_SIZES: [usize; 4] = [20, 30, 40, 50];

/// Results of the Figure 10 experiment.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig10Result {
    /// One aggregated point per group size (x = `N_G`).
    pub points: Vec<SweepPoint>,
}

/// Runs the Figure 10 sweep.
pub fn run(effort: Effort) -> Fig10Result {
    let topologies = effort.scale(10).max(2) as u32;
    let member_sets = effort.scale(10).max(2) as u32;
    let base = ScenarioConfig::default();
    let points = GROUP_SIZES
        .iter()
        .map(|&ng| {
            let cfg = ScenarioConfig {
                group_size: ng,
                ..base
            };
            sweep::run_point(ng as f64, &cfg, smrp_config(0.3), topologies, member_sets)
        })
        .collect();
    Fig10Result { points }
}

impl Fig10Result {
    /// Paper-style table.
    pub fn table(&self) -> smrp_metrics::table::Table {
        sweep::table("N_G", &self.points)
    }

    /// CSV artifact.
    pub fn to_csv(&self) -> smrp_metrics::csvout::Csv {
        sweep::to_csv("n_g", &self.points)
    }

    /// Textual summary against the paper's claims.
    pub fn summary(&self) -> String {
        let mins = self
            .points
            .iter()
            .map(|p| p.rd_rel.mean)
            .fold(f64::INFINITY, f64::min);
        let maxs = self
            .points
            .iter()
            .map(|p| p.rd_rel.mean)
            .fold(f64::NEG_INFINITY, f64::max);
        format!(
            "RD_rel across N_G in {{20..50}}: {:.1}%..{:.1}% (paper: steady ~20% with a \
             slight decline as the group grows)",
            mins * 100.0,
            maxs * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_steady() {
        let r = run(Effort::Quick);
        assert_eq!(r.points.len(), 4);
        for p in &r.points {
            assert!(
                p.rd_rel.mean > 0.0,
                "no improvement at N_G {}: {:.3}",
                p.x,
                p.rd_rel.mean
            );
            assert!(p.delay_rel.mean < 0.25);
        }
        // Steadiness: the spread across group sizes stays moderate.
        let means: Vec<f64> = r.points.iter().map(|p| p.rd_rel.mean).collect();
        let spread = means.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - means.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(spread < 0.25, "improvement varies too wildly: {spread:.3}");
    }

    #[test]
    fn artifacts_render() {
        let r = run(Effort::Quick);
        assert!(r.table().render().contains("N_G"));
        assert_eq!(r.to_csv().len(), 4);
        assert!(r.summary().contains("paper"));
    }
}
