//! Node-failure extension: the paper's failure model explicitly covers
//! router crashes (§1 footnote 1: "physical breakdown of the node" or
//! "service unavailability under heavy congestion"), but §4 evaluates link
//! cuts only. This experiment repeats the Figure 8 headline measurement
//! with the worst-case *node* failure instead: for each member, the
//! on-tree router adjacent to the source on its path crashes, taking all
//! of its links down at once.

use smrp_core::recovery::{self, DetourKind};
use smrp_core::MulticastTree;
use smrp_metrics::csvout::Csv;
use smrp_metrics::table::{percent, Table};
use smrp_metrics::{ConfidenceInterval, Stats};
use smrp_net::{FailureScenario, Graph, NodeId};

use crate::measure::{build_smrp_tree, build_spf_tree, smrp_config};
use crate::scenario::ScenarioConfig;
use crate::Effort;

/// Results of the node-failure comparison.
#[derive(Debug, Clone)]
pub struct NodeFailureResult {
    /// `RD^relative` under worst-case node failures.
    pub rd_rel: ConfidenceInterval,
    /// Fraction of (member, failure) cases recoverable on the SPF tree.
    pub spf_recoverable: f64,
    /// Fraction recoverable on the SMRP tree.
    pub smrp_recoverable: f64,
    /// Scenarios measured.
    pub scenarios: usize,
}

/// The worst-case node failure for `member`: the first on-tree router
/// after the source on the member's path. `None` when the member is
/// directly adjacent to the source (there is no intermediate router to
/// crash).
pub fn worst_case_node_failure(tree: &MulticastTree, member: NodeId) -> Option<NodeId> {
    let path = tree.path_from_source(member)?;
    let nodes = path.nodes();
    // nodes[0] is the source; nodes[1] is the first router. Crashing the
    // member itself is not a recovery scenario.
    let candidate = *nodes.get(1)?;
    (candidate != member).then_some(candidate)
}

fn rd_under_node_failure(graph: &Graph, tree: &MulticastTree, member: NodeId) -> Option<f64> {
    let crash = worst_case_node_failure(tree, member)?;
    let scenario = FailureScenario::node(crash);
    match recovery::recover(graph, tree, &scenario, member, DetourKind::Local) {
        Ok(rec) => Some(rec.recovery_distance()),
        Err(recovery::RecoveryError::NotAffected(_)) => Some(0.0),
        Err(recovery::RecoveryError::Unrecoverable(_)) => None,
    }
}

/// Runs the node-failure experiment on the Figure 8 base setup.
pub fn run(effort: Effort) -> NodeFailureResult {
    let config = ScenarioConfig::default();
    let topologies = effort.scale(10).max(2) as u32;
    let member_sets = effort.scale(5).max(1) as u32;
    let scenarios = config
        .scenarios(topologies, member_sets)
        .expect("valid scenario parameters");

    let mut rel = Stats::new();
    let mut spf_cases = 0u64;
    let mut spf_ok = 0u64;
    let mut smrp_cases = 0u64;
    let mut smrp_ok = 0u64;

    for scenario in &scenarios {
        let smrp = build_smrp_tree(scenario, smrp_config(0.3)).expect("tree builds");
        let spf = build_spf_tree(scenario).expect("tree builds");
        let graph = &scenario.graph;
        let mut per_scenario = Stats::new();
        for &m in &scenario.members {
            let rd_spf = if worst_case_node_failure(&spf, m).is_some() {
                spf_cases += 1;
                let rd = rd_under_node_failure(graph, &spf, m);
                if rd.is_some() {
                    spf_ok += 1;
                }
                rd
            } else {
                None
            };
            let rd_smrp = if worst_case_node_failure(&smrp, m).is_some() {
                smrp_cases += 1;
                let rd = rd_under_node_failure(graph, &smrp, m);
                if rd.is_some() {
                    smrp_ok += 1;
                }
                rd
            } else {
                None
            };
            if let (Some(spf_rd), Some(smrp_rd)) = (rd_spf, rd_smrp) {
                if spf_rd > 0.0 {
                    per_scenario.push((spf_rd - smrp_rd) / spf_rd);
                }
            }
        }
        if per_scenario.count() > 0 {
            rel.push(per_scenario.mean());
        }
    }

    NodeFailureResult {
        rd_rel: ConfidenceInterval::from_stats(&rel),
        spf_recoverable: if spf_cases == 0 {
            0.0
        } else {
            spf_ok as f64 / spf_cases as f64
        },
        smrp_recoverable: if smrp_cases == 0 {
            0.0
        } else {
            smrp_ok as f64 / smrp_cases as f64
        },
        scenarios: scenarios.len(),
    }
}

impl NodeFailureResult {
    /// Renders the result table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["metric", "value"]);
        t.row(vec![
            "RD_rel under worst-case node crash".into(),
            format!(
                "{} ± {}",
                percent(self.rd_rel.mean),
                percent(self.rd_rel.half_width)
            ),
        ]);
        t.row(vec![
            "recoverable cases (SPF tree)".into(),
            percent(self.spf_recoverable),
        ]);
        t.row(vec![
            "recoverable cases (SMRP tree)".into(),
            percent(self.smrp_recoverable),
        ]);
        t.row(vec!["scenarios".into(), format!("{}", self.scenarios)]);
        t
    }

    /// CSV artifact.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(vec![
            "rd_rel_mean",
            "rd_rel_ci",
            "spf_recoverable",
            "smrp_recoverable",
            "scenarios",
        ]);
        csv.row_f64(&[
            self.rd_rel.mean,
            self.rd_rel.half_width,
            self.spf_recoverable,
            self.smrp_recoverable,
            self.scenarios as f64,
        ]);
        csv
    }

    /// Textual summary.
    pub fn summary(&self) -> String {
        format!(
            "under worst-case router crashes SMRP still shortens recovery paths by \
             {:.1}% and keeps {:.0}% of cases recoverable (SPF: {:.0}%) — the link-cut \
             advantage of §4.3 extends to the paper's full failure model",
            self.rd_rel.mean * 100.0,
            self.smrp_recoverable * 100.0,
            self.spf_recoverable * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_crashes_are_survivable_and_improved() {
        let r = run(Effort::Quick);
        assert!(r.scenarios >= 2);
        // A crash is strictly worse than a cut, but SMRP should still help.
        assert!(
            r.rd_rel.mean > -0.05,
            "node-failure RD_rel regressed: {:.3}",
            r.rd_rel.mean
        );
        assert!(r.spf_recoverable > 0.7);
        assert!(r.smrp_recoverable > 0.7);
    }

    #[test]
    fn worst_case_node_is_the_first_router() {
        use smrp_net::Path;
        let mut g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        g.add_link(ids[1], ids[2], 1.0).unwrap();
        g.add_link(ids[0], ids[3], 1.0).unwrap();
        let mut t = MulticastTree::new(&g, ids[0]).unwrap();
        t.attach_path(&Path::new(vec![ids[2], ids[1], ids[0]]));
        t.set_member(ids[2], true).unwrap();
        assert_eq!(worst_case_node_failure(&t, ids[2]), Some(ids[1]));
        // A member adjacent to the source has no router to crash.
        t.attach_path(&Path::new(vec![ids[3], ids[0]]));
        t.set_member(ids[3], true).unwrap();
        assert_eq!(worst_case_node_failure(&t, ids[3]), None);
    }

    #[test]
    fn artifacts_render() {
        let r = run(Effort::Quick);
        assert!(r.table().render().contains("node crash"));
        assert_eq!(r.to_csv().len(), 1);
        assert!(r.summary().contains("router crashes"));
    }
}
