//! Figure 8: the effect of `D_thresh` (§4.3.2).
//!
//! Setup: `N = 100`, `N_G = 30`, `α = 0.2`; `D_thresh` swept over four
//! values; ten topologies × ten member sets = 100 scenarios per point,
//! error bars at 95% confidence. The paper's observations:
//!
//! * at `D_thresh = 0.3`, recovery paths shorten by ≈20% for ≈5% delay and
//!   cost penalties;
//! * the improvement grows roughly linearly with `D_thresh`, as do the
//!   penalties.

use crate::measure::smrp_config;
use crate::scenario::ScenarioConfig;
use crate::sweep::{self, SweepPoint};
use crate::Effort;

/// The `D_thresh` values swept (the paper plots four; 0.0–0.4 covers the
/// interesting range and 0.0 is the degenerate "SPF-delays only" corner).
pub const D_THRESH_VALUES: [f64; 4] = [0.1, 0.2, 0.3, 0.4];

/// Results of the Figure 8 experiment.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig8Result {
    /// One aggregated point per `D_thresh` value.
    pub points: Vec<SweepPoint>,
}

/// Runs the Figure 8 sweep.
///
/// The headline claim is a *comparison of means* (RD improvement vs delay
/// penalty) over scenarios whose per-scenario `RD^relative` spread is large
/// (σ ≈ 19%); below ~25 scenarios per point the two means are statistically
/// indistinguishable, so even `Effort::Quick` keeps a 5×5 scenario floor.
pub fn run(effort: Effort) -> Fig8Result {
    let topologies = effort.scale(10).max(5) as u32;
    let member_sets = effort.scale(10).max(5) as u32;
    let scenario_config = ScenarioConfig::default();
    let points = D_THRESH_VALUES
        .iter()
        .map(|&d| sweep::run_point(d, &scenario_config, smrp_config(d), topologies, member_sets))
        .collect();
    Fig8Result { points }
}

impl Fig8Result {
    /// Paper-style table.
    pub fn table(&self) -> smrp_metrics::table::Table {
        sweep::table("D_thresh", &self.points)
    }

    /// CSV artifact.
    pub fn to_csv(&self) -> smrp_metrics::csvout::Csv {
        sweep::to_csv("d_thresh", &self.points)
    }

    /// The point at `D_thresh = 0.3` (the paper's headline configuration).
    pub fn headline(&self) -> &SweepPoint {
        self.points
            .iter()
            .find(|p| (p.x - 0.3).abs() < 1e-9)
            .expect("0.3 is part of the sweep")
    }

    /// Textual summary against the paper's claims.
    pub fn summary(&self) -> String {
        let h = self.headline();
        format!(
            "at D_thresh=0.3: RD reduced {:.1}% (paper ~20%), delay penalty {:.1}% \
             (paper ~5%), cost penalty {:.1}% (paper ~5%)",
            h.rd_rel.mean * 100.0,
            h.delay_rel.mean * 100.0,
            h.cost_rel.mean * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shows_the_tradeoff() {
        let r = run(Effort::Quick);
        assert_eq!(r.points.len(), 4);
        // Improvement exists at the headline point...
        let h = r.headline();
        assert!(
            h.rd_rel.mean > 0.05,
            "RD improvement too small: {:.3}",
            h.rd_rel.mean
        );
        // ...and the penalties stay moderate.
        assert!(
            h.delay_rel.mean < 0.25,
            "delay penalty {:.3}",
            h.delay_rel.mean
        );
        assert!(
            h.cost_rel.mean < 0.25,
            "cost penalty {:.3}",
            h.cost_rel.mean
        );
        // The improvement should not *shrink* drastically as D_thresh
        // grows: the last point is at least as good as the first.
        assert!(r.points[3].rd_rel.mean >= r.points[0].rd_rel.mean - 0.05);
        // Penalties grow (weakly) with D_thresh.
        assert!(r.points[3].delay_rel.mean >= r.points[0].delay_rel.mean - 0.02);
    }

    #[test]
    fn artifacts_render() {
        let r = run(Effort::Quick);
        let table = r.table().render();
        assert!(table.contains("D_thresh"));
        assert!(table.contains('±'));
        assert_eq!(r.to_csv().len(), 4);
        assert!(r.summary().contains("paper"));
    }
}
