//! Runs the membership-churn / reshaping-value experiment (§3.2.3).
//!
//! Usage: `cargo run -p smrp-experiments --release --bin churn [--quick]`

use smrp_experiments::{churn, results_dir, Effort};

fn main() {
    let effort = Effort::from_args();
    let result = churn::run(effort);
    println!("{}", result.table());
    println!("{}", result.summary());
    let path = results_dir().join("churn.csv");
    match result.to_csv().write_to(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
