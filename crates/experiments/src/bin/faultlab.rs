//! Correlated fault-injection campaigns (the `smrp-faultlab` subsystem).
//!
//! Evaluates thousands of seeded correlated-failure scenarios against both
//! SMRP (local detour) and the SPF baseline (global detour), audits every
//! recovery against the protocol's safety invariants, and writes a stable
//! JSON campaign report. Exits non-zero if any invariant is violated, so
//! CI can gate on it.
//!
//! Usage:
//! `cargo run -p smrp-experiments --release --bin faultlab -- [options]`
//!
//! * `--smoke` — small CI campaign (n=100, 240 scenarios);
//! * `--smoke-lossy` — small CI campaign under 5% ambient control-plane
//!   loss (n=100, 203 scenarios — a multiple of the 7 fault families);
//! * `--smoke-multi` — small CI campaign with 8 concurrent sessions
//!   sharing the topology (n=60, 28 scenarios);
//! * `--bench` — acceptance benchmark: runs the configured campaign twice
//!   (lossless, then under `--loss` ambient loss, default 10%), plus the
//!   protection-vs-restoration sweep, and writes one artifact with all
//!   reports, the per-protocol restoration-latency inflation factor and
//!   the per-loss-point protection-vs-reactive medians (this is how
//!   `BENCH_faultlab.json` is produced);
//! * `--protect` — the protection-vs-restoration axis on its own: SMRP
//!   with precomputed backup detours against SMRP with on-demand search,
//!   swept over single-link, single-node and shared-risk-group failures
//!   at each ambient-loss point. Exits non-zero unless the sweep is
//!   healthy *and* activation strictly beats search at every loss point;
//! * `--protect-smoke` — small CI protection sweep (n=18, 36 cases),
//!   byte-identical for any `--jobs`;
//! * `--search-ms X` — modelled on-demand detour-search delay charged to
//!   the reactive arm of a protection sweep (default 25);
//! * `--bench-multi` — multi-session benchmark sweep: the campaign at
//!   M ∈ {1, 8, 32} concurrent sessions, each at 0% and at `--loss`
//!   (default 10%) ambient loss, writing one artifact with aggregate
//!   restoration latency and per-group control-message overhead per
//!   cell (this is how `BENCH_multisession.json` is produced). Presets
//!   70 scenarios of 12-member sessions on the default 400-node
//!   topology — a 32-session case simulates 32 trees in one event
//!   queue, so the sweep trades scenario count for session count;
//!   later flags override the preset;
//! * `--hierarchy` — wire-level N-level recovery-domain campaign: every
//!   active domain's session runs as one group over the shared topology,
//!   repairs stay confined to the owning domain, and the full message
//!   trace of every case is audited against the DomainLocality invariant.
//!   Exits non-zero unless the campaign is clean (zero border crossings,
//!   full audit coverage, every member restored);
//! * `--levels N` — depth of the `--hierarchy` domain tree (default 3,
//!   minimum 2 — the paper's transit-stub shape);
//! * `--population N` — aggregated receivers spread over the hierarchy's
//!   leaf domains, weighted into `SHR/N` per Eq. 2 (default 10000);
//! * `--dump-trace DIR` — instead of a campaign, emit the golden scripted
//!   scenario files (`figure1`, `shared_fate_srlg`, `figure1_lossy`) into
//!   DIR: self-contained JSON traces with the sim's converged outcome and
//!   its digest embedded, replayable through the `smrpd` daemon and handy
//!   standalone as minimal reproducers. Byte-identical for any `--jobs`;
//! * `--loss P` — ambient control-plane loss probability applied to every
//!   case that doesn't carry its own degraded channel (default 0);
//! * `--scenarios N` — number of fault cases (default 1000);
//! * `--nodes N` — topology size (default 400);
//! * `--group N` — multicast group size (default 30);
//! * `--groups M` — concurrent multicast sessions over one topology
//!   (default 1); every fault case is injected once against all of them;
//! * `--seed S` — base seed (default 0x5EED);
//! * `--jobs N` — worker threads (default: available parallelism);
//! * `--out PATH` — report path (default `results/faultlab.json`).
//!
//! The report depends only on the configuration — never on `--jobs`, the
//! machine, or wall-clock — so identical seeds yield byte-identical files.
//! The exit code gates on *health*, not just invariants: any invariant
//! violation or any retry-budget exhaustion outside gray-link cases fails
//! the run.

use std::process::ExitCode;

use serde::Serialize;
use smrp_experiments::results_dir;
use smrp_faultlab::{
    run_campaign, run_hierarchy, run_protect, CampaignConfig, CampaignReport, HierarchyConfig,
    HierarchyReport, ProtectConfig, ProtectReport, ProtoKind,
};

struct Args {
    config: CampaignConfig,
    protect_config: ProtectConfig,
    hierarchy_config: HierarchyConfig,
    jobs: usize,
    bench: bool,
    bench_multi: bool,
    protect: bool,
    hierarchy: bool,
    dump_trace: Option<std::path::PathBuf>,
    out: std::path::PathBuf,
}

/// One protocol's restoration-latency inflation under ambient loss.
#[derive(Serialize)]
struct Inflation {
    proto: ProtoKind,
    lossless_mean_ms: f64,
    lossy_mean_ms: f64,
    factor: f64,
}

/// The `--bench` artifact: the same campaign lossless and lossy, plus the
/// latency inflation the ambient loss costs each protocol, plus the
/// protection-vs-restoration sweep (precomputed activation against
/// on-demand search over the same seeds).
#[derive(Serialize)]
struct BenchReport {
    ambient_loss: f64,
    latency_inflation: Vec<Inflation>,
    lossless: CampaignReport,
    lossy: CampaignReport,
    protection: ProtectReport,
}

fn inflation(lossless: &CampaignReport, lossy: &CampaignReport) -> Vec<Inflation> {
    let mean = |r: &CampaignReport, proto: ProtoKind| {
        r.latencies
            .iter()
            .find(|l| l.proto == proto)
            .map(|l| l.mean_ms)
    };
    [ProtoKind::Smrp, ProtoKind::Spf]
        .into_iter()
        .filter_map(|proto| {
            let (a, b) = (mean(lossless, proto)?, mean(lossy, proto)?);
            Some(Inflation {
                proto,
                lossless_mean_ms: a,
                lossy_mean_ms: b,
                factor: if a > 0.0 { b / a } else { f64::NAN },
            })
        })
        .collect()
}

/// One (session count, ambient loss) cell of the `--bench-multi` sweep,
/// with the headline numbers lifted out of the full report.
#[derive(Serialize)]
struct MultiCell {
    groups: usize,
    ambient_loss: f64,
    /// Aggregate SMRP restoration-latency distribution across all groups.
    smrp_mean_latency_ms: f64,
    smrp_p95_latency_ms: f64,
    smrp_restored_members: u64,
    /// Mean control messages one group's SMRP lanes spend over the whole
    /// campaign — the per-group overhead of sharing the substrate.
    smrp_control_messages_per_group: f64,
    total_violations: u32,
    report: CampaignReport,
}

/// The `--bench-multi` artifact: the same campaign swept over session
/// counts and ambient-loss levels.
#[derive(Serialize)]
struct MultiBenchReport {
    group_counts: Vec<usize>,
    loss_levels: Vec<f64>,
    cells: Vec<MultiCell>,
}

fn multi_cell(groups: usize, ambient_loss: f64, report: CampaignReport) -> MultiCell {
    let smrp = report
        .latencies
        .iter()
        .find(|l| l.proto == ProtoKind::Smrp)
        .expect("smrp latency row exists");
    let smrp_groups: Vec<_> = report
        .group_summaries
        .iter()
        .filter(|g| g.proto == ProtoKind::Smrp)
        .collect();
    let per_group = smrp_groups.iter().map(|g| g.control_messages).sum::<u64>() as f64
        / smrp_groups.len().max(1) as f64;
    MultiCell {
        groups,
        ambient_loss,
        smrp_mean_latency_ms: smrp.mean_ms,
        smrp_p95_latency_ms: smrp.p95_ms,
        smrp_restored_members: smrp.count,
        smrp_control_messages_per_group: per_group,
        total_violations: report.total_violations,
        report,
    }
}

/// The `--bench-multi` path: sweep M ∈ {1, 8, 32} sessions, each at 0%
/// and at the configured ambient loss.
fn run_bench_multi(args: &Args) -> ExitCode {
    let ambient_loss = if args.config.ambient_loss > 0.0 {
        args.config.ambient_loss
    } else {
        0.1
    };
    let group_counts = vec![1usize, 8, 32];
    let loss_levels = vec![0.0, ambient_loss];
    let mut cells = Vec::new();
    let mut healthy = true;
    for &groups in &group_counts {
        for &loss in &loss_levels {
            let config = CampaignConfig {
                groups,
                ambient_loss: loss,
                ..args.config.clone()
            };
            let started = std::time::Instant::now();
            let run = match run_campaign(&config, args.jobs) {
                Ok(run) => run,
                Err(e) => {
                    eprintln!("faultlab: campaign failed: {e}");
                    return ExitCode::from(2);
                }
            };
            let report = CampaignReport::from_run(&run);
            println!("=== M={groups} sessions, ambient loss {loss} ===");
            print!("{}", report.synopsis());
            println!(
                "  ({:.2}s on {} jobs)",
                started.elapsed().as_secs_f64(),
                args.jobs
            );
            if !report.is_healthy() {
                report_failures(&report, &args.out);
                healthy = false;
            }
            cells.push(multi_cell(groups, loss, report));
        }
    }
    for c in &cells {
        println!(
            "cell M={:<2} loss={}: smrp mean={:.2}ms p95={:.2}ms control-msgs/group={:.0}",
            c.groups,
            c.ambient_loss,
            c.smrp_mean_latency_ms,
            c.smrp_p95_latency_ms,
            c.smrp_control_messages_per_group,
        );
    }
    let bench = MultiBenchReport {
        group_counts,
        loss_levels,
        cells,
    };
    let json = serde_json::to_string_pretty(&bench).expect("multi bench report serializes");
    if let Err(code) = write_out(&args.out, json) {
        return code;
    }
    if healthy {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse_args() -> Result<Args, String> {
    let mut config = CampaignConfig {
        nodes: 400,
        group_size: 30,
        scenarios: 1000,
        ..CampaignConfig::default()
    };
    let mut protect_config = ProtectConfig::default();
    let mut hierarchy_config = HierarchyConfig::default();
    let mut jobs = std::thread::available_parallelism().map_or(1, usize::from);
    let mut bench = false;
    let mut bench_multi = false;
    let mut protect = false;
    let mut hierarchy = false;
    let mut dump_trace: Option<std::path::PathBuf> = None;
    let mut out: Option<std::path::PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--smoke" => {
                config.nodes = 100;
                config.scenarios = 240;
            }
            "--smoke-lossy" => {
                config.nodes = 100;
                config.scenarios = 203;
                config.ambient_loss = 0.05;
            }
            "--smoke-multi" => {
                config.nodes = 60;
                config.group_size = 10;
                config.scenarios = 28;
                config.groups = 8;
            }
            "--bench" => {
                bench = true;
            }
            "--protect" => {
                protect = true;
            }
            "--hierarchy" => {
                hierarchy = true;
            }
            "--levels" => {
                hierarchy_config.levels = value("--levels")?
                    .parse()
                    .map_err(|e| format!("--levels: {e}"))?;
                if hierarchy_config.levels < 2 {
                    return Err("--levels expects a depth of at least 2".into());
                }
            }
            "--population" => {
                hierarchy_config.population = value("--population")?
                    .parse()
                    .map_err(|e| format!("--population: {e}"))?;
            }
            "--protect-smoke" => {
                protect = true;
                protect_config.nodes = 18;
                protect_config.group_size = 10;
                protect_config.scenarios_per_cell = 6;
                protect_config.base_seed = 11;
                protect_config.run_until_ms = 2000.0;
            }
            "--search-ms" => {
                protect_config.search_ms = value("--search-ms")?
                    .parse()
                    .map_err(|e| format!("--search-ms: {e}"))?;
                if !(protect_config.search_ms.is_finite() && protect_config.search_ms >= 0.0) {
                    return Err("--search-ms expects a non-negative delay".into());
                }
            }
            "--dump-trace" => {
                dump_trace = Some(value("--dump-trace")?.into());
            }
            "--bench-multi" => {
                bench_multi = true;
                config.group_size = 12;
                config.scenarios = 70;
            }
            "--loss" => {
                config.ambient_loss = value("--loss")?
                    .parse()
                    .map_err(|e| format!("--loss: {e}"))?;
                if !(0.0..1.0).contains(&config.ambient_loss) {
                    return Err("--loss expects a probability in [0, 1)".into());
                }
                // The protection sweep always keeps the lossless baseline
                // point; `--loss` moves its degraded point.
                protect_config.loss_points = vec![0.0, config.ambient_loss];
            }
            "--scenarios" => {
                config.scenarios = value("--scenarios")?
                    .parse()
                    .map_err(|e| format!("--scenarios: {e}"))?;
                protect_config.scenarios_per_cell = config.scenarios;
                hierarchy_config.scenarios = config.scenarios;
            }
            "--nodes" => {
                config.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
                protect_config.nodes = config.nodes;
            }
            "--group" => {
                config.group_size = value("--group")?
                    .parse()
                    .map_err(|e| format!("--group: {e}"))?;
                protect_config.group_size = config.group_size;
            }
            "--groups" => {
                config.groups = value("--groups")?
                    .parse()
                    .map_err(|e| format!("--groups: {e}"))?;
                if config.groups == 0 {
                    return Err("--groups expects at least 1 session".into());
                }
            }
            "--seed" => {
                let raw = value("--seed")?;
                config.base_seed = raw
                    .strip_prefix("0x")
                    .map_or_else(|| raw.parse(), |hex| u64::from_str_radix(hex, 16))
                    .map_err(|e| format!("--seed: {e}"))?;
                protect_config.base_seed = config.base_seed;
                hierarchy_config.base_seed = config.base_seed;
            }
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--out" => {
                out = Some(value("--out")?.into());
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args {
        config,
        protect_config,
        hierarchy_config,
        jobs,
        bench,
        bench_multi,
        protect,
        hierarchy,
        dump_trace,
        out: out.unwrap_or_else(|| {
            results_dir().join(if bench_multi {
                "faultlab-multisession.json"
            } else if bench {
                "faultlab-bench.json"
            } else if protect {
                "faultlab-protect.json"
            } else if hierarchy {
                "faultlab-hierarchy.json"
            } else {
                "faultlab.json"
            })
        }),
    })
}

fn write_out(out: &std::path::Path, json: String) -> Result<(), ExitCode> {
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("faultlab: could not create {}: {e}", dir.display());
                return Err(ExitCode::from(2));
            }
        }
    }
    if let Err(e) = std::fs::write(out, json + "\n") {
        eprintln!("faultlab: could not write {}: {e}", out.display());
        return Err(ExitCode::from(2));
    }
    println!("wrote {}", out.display());
    Ok(())
}

fn report_failures(report: &CampaignReport, out: &std::path::Path) {
    for repro in &report.reproducers {
        eprintln!(
            "violation: case {} ({}, seed {:#x}) under {}: {:?}",
            repro.case.id, repro.case.family, repro.case.seed, repro.proto, repro.violations
        );
    }
    if !report.is_clean() {
        eprintln!(
            "faultlab: {} invariant violations — reproducers are in {}",
            report.total_violations,
            out.display()
        );
    }
    if report.clear_channel_exhaustions() > 0 {
        eprintln!(
            "faultlab: {} retry-budget exhaustions outside gray-link cases — \
             the reliable layer gave up on reachable neighbors",
            report.clear_channel_exhaustions()
        );
    }
}

/// Runs the protection-vs-restoration sweep and prints its synopsis.
fn protect_report(args: &Args) -> Result<ProtectReport, ExitCode> {
    let started = std::time::Instant::now();
    let run = match run_protect(&args.protect_config, args.jobs) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("faultlab: protection sweep failed: {e}");
            return Err(ExitCode::from(2));
        }
    };
    let report = ProtectReport::from_run(&run);
    print!("{}", report.synopsis());
    println!(
        "  ({:.2}s on {} jobs)",
        started.elapsed().as_secs_f64(),
        args.jobs
    );
    Ok(report)
}

/// Gate shared by `--protect` and the bench's protection section: the
/// sweep must be healthy *and* activation must strictly beat search at
/// every loss point.
fn protect_gate(report: &ProtectReport) -> bool {
    if !report.is_healthy() {
        eprintln!("faultlab: protection sweep is unhealthy");
        return false;
    }
    if !report.protection_wins() {
        eprintln!(
            "faultlab: precomputed activation did not strictly beat on-demand \
             search at every loss point"
        );
        return false;
    }
    true
}

/// The `--protect` path: the protection sweep alone, written as its own
/// artifact.
fn run_protect_cli(args: &Args) -> ExitCode {
    let report = match protect_report(args) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let json = report.to_json();
    if let Err(code) = write_out(&args.out, json) {
        return code;
    }
    if protect_gate(&report) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `--bench` path: the configured campaign lossless, then under
/// ambient loss, reporting the latency inflation between them.
fn run_bench(args: &Args) -> ExitCode {
    let ambient_loss = if args.config.ambient_loss > 0.0 {
        args.config.ambient_loss
    } else {
        0.1
    };
    let mut reports = Vec::new();
    for loss in [0.0, ambient_loss] {
        let config = CampaignConfig {
            ambient_loss: loss,
            ..args.config.clone()
        };
        let started = std::time::Instant::now();
        let run = match run_campaign(&config, args.jobs) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("faultlab: campaign failed: {e}");
                return ExitCode::from(2);
            }
        };
        let report = CampaignReport::from_run(&run);
        println!("=== ambient loss {loss} ===");
        print!("{}", report.synopsis());
        println!(
            "  ({:.2}s on {} jobs)",
            started.elapsed().as_secs_f64(),
            args.jobs
        );
        reports.push(report);
    }
    let lossy = reports.pop().expect("two runs");
    let lossless = reports.pop().expect("two runs");
    let protection = match protect_report(args) {
        Ok(r) => r,
        Err(code) => return code,
    };
    let bench = BenchReport {
        ambient_loss,
        latency_inflation: inflation(&lossless, &lossy),
        lossless,
        lossy,
        protection,
    };
    for i in &bench.latency_inflation {
        println!(
            "latency inflation[{}]: {:.2}ms -> {:.2}ms (x{:.3})",
            i.proto, i.lossless_mean_ms, i.lossy_mean_ms, i.factor
        );
    }
    for lp in &bench.protection.loss_points {
        println!(
            "protection[loss={:.0}%]: activation p50={:.2}ms vs search p50={:.2}ms",
            lp.loss * 100.0,
            lp.protection_p50_ms,
            lp.reactive_p50_ms,
        );
    }
    let json = serde_json::to_string_pretty(&bench).expect("bench report serializes");
    if let Err(code) = write_out(&args.out, json) {
        return code;
    }
    let healthy =
        bench.lossless.is_healthy() && bench.lossy.is_healthy() && protect_gate(&bench.protection);
    if healthy {
        ExitCode::SUCCESS
    } else {
        report_failures(&bench.lossless, &args.out);
        report_failures(&bench.lossy, &args.out);
        ExitCode::FAILURE
    }
}

/// The `--hierarchy` path: one wire-level N-level campaign, gated on the
/// DomainLocality verdict.
fn run_hierarchy_cli(args: &Args) -> ExitCode {
    let started = std::time::Instant::now();
    let run = match run_hierarchy(&args.hierarchy_config, args.jobs) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("faultlab: hierarchy campaign failed: {e}");
            return ExitCode::from(2);
        }
    };
    let report = HierarchyReport::from_run(&run);
    print!("{}", report.synopsis());
    println!(
        "  ({:.2}s on {} jobs)",
        started.elapsed().as_secs_f64(),
        args.jobs
    );
    if let Err(code) = write_out(&args.out, report.to_json()) {
        return code;
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "faultlab: hierarchy campaign is not clean — {} border crossings, \
             {} unaudited cases, {} members never restored",
            report.locality.border_crossings,
            report.locality.cases_unaudited,
            report
                .outcomes
                .get("detection-missed")
                .copied()
                .unwrap_or(0),
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("faultlab: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(dir) = &args.dump_trace {
        return match smrp_faultlab::dump_traces(dir, args.jobs) {
            Ok(paths) => {
                for p in &paths {
                    println!("wrote {}", p.display());
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("faultlab: trace dump failed: {e}");
                ExitCode::from(2)
            }
        };
    }
    if args.bench_multi {
        return run_bench_multi(&args);
    }
    if args.bench {
        return run_bench(&args);
    }
    if args.protect {
        return run_protect_cli(&args);
    }
    if args.hierarchy {
        return run_hierarchy_cli(&args);
    }

    let started = std::time::Instant::now();
    let run = match run_campaign(&args.config, args.jobs) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("faultlab: campaign failed: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed();
    let report = CampaignReport::from_run(&run);

    // Timing goes to the terminal only; the report file stays byte-stable.
    print!("{}", report.synopsis());
    println!(
        "  {} cases in {:.2}s on {} jobs ({:.1} cases/s)",
        report.cases,
        elapsed.as_secs_f64(),
        args.jobs,
        f64::from(report.cases) / elapsed.as_secs_f64().max(1e-9)
    );

    if let Err(code) = write_out(&args.out, report.to_json()) {
        return code;
    }

    if report.is_healthy() {
        ExitCode::SUCCESS
    } else {
        report_failures(&report, &args.out);
        ExitCode::FAILURE
    }
}
