//! Correlated fault-injection campaigns (the `smrp-faultlab` subsystem).
//!
//! Evaluates thousands of seeded correlated-failure scenarios against both
//! SMRP (local detour) and the SPF baseline (global detour), audits every
//! recovery against the protocol's safety invariants, and writes a stable
//! JSON campaign report. Exits non-zero if any invariant is violated, so
//! CI can gate on it.
//!
//! Usage:
//! `cargo run -p smrp-experiments --release --bin faultlab -- [options]`
//!
//! * `--smoke` — small CI campaign (n=100, 240 scenarios);
//! * `--scenarios N` — number of fault cases (default 1000);
//! * `--nodes N` — topology size (default 400);
//! * `--group N` — multicast group size (default 30);
//! * `--seed S` — base seed (default 0x5EED);
//! * `--jobs N` — worker threads (default: available parallelism);
//! * `--out PATH` — report path (default `results/faultlab.json`).
//!
//! The report depends only on the configuration — never on `--jobs`, the
//! machine, or wall-clock — so identical seeds yield byte-identical files.

use std::process::ExitCode;

use smrp_experiments::results_dir;
use smrp_faultlab::{run_campaign, CampaignConfig, CampaignReport};

struct Args {
    config: CampaignConfig,
    jobs: usize,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut config = CampaignConfig {
        nodes: 400,
        group_size: 30,
        scenarios: 1000,
        ..CampaignConfig::default()
    };
    let mut jobs = std::thread::available_parallelism().map_or(1, usize::from);
    let mut out: Option<std::path::PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match arg.as_str() {
            "--smoke" => {
                config.nodes = 100;
                config.scenarios = 240;
            }
            "--scenarios" => {
                config.scenarios = value("--scenarios")?
                    .parse()
                    .map_err(|e| format!("--scenarios: {e}"))?;
            }
            "--nodes" => {
                config.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--group" => {
                config.group_size = value("--group")?
                    .parse()
                    .map_err(|e| format!("--group: {e}"))?;
            }
            "--seed" => {
                let raw = value("--seed")?;
                config.base_seed = raw
                    .strip_prefix("0x")
                    .map_or_else(|| raw.parse(), |hex| u64::from_str_radix(hex, 16))
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--jobs" => {
                jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--out" => {
                out = Some(value("--out")?.into());
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(Args {
        config,
        jobs,
        out: out.unwrap_or_else(|| results_dir().join("faultlab.json")),
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("faultlab: {e}");
            return ExitCode::from(2);
        }
    };

    let started = std::time::Instant::now();
    let run = match run_campaign(&args.config, args.jobs) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("faultlab: campaign failed: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed();
    let report = CampaignReport::from_run(&run);

    // Timing goes to the terminal only; the report file stays byte-stable.
    print!("{}", report.synopsis());
    println!(
        "  {} cases in {:.2}s on {} jobs ({:.1} cases/s)",
        report.cases,
        elapsed.as_secs_f64(),
        args.jobs,
        f64::from(report.cases) / elapsed.as_secs_f64().max(1e-9)
    );

    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("faultlab: could not create {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    }
    let json = report.to_json();
    if let Err(e) = std::fs::write(&args.out, json + "\n") {
        eprintln!("faultlab: could not write {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    println!("wrote {}", args.out.display());

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        for repro in &report.reproducers {
            eprintln!(
                "violation: case {} ({}, seed {:#x}) under {}: {:?}",
                repro.case.id, repro.case.family, repro.case.seed, repro.proto, repro.violations
            );
        }
        eprintln!(
            "faultlab: {} invariant violations — reproducers are in {}",
            report.total_violations,
            args.out.display()
        );
        ExitCode::FAILURE
    }
}
