//! Runs the protocol-level restoration-latency comparison (§1 motivation).
//!
//! Usage: `cargo run -p smrp-experiments --release --bin latency [--quick]`

use smrp_experiments::{latency, results_dir, Effort};

fn main() {
    let effort = Effort::from_args();
    let result = latency::run(effort);
    println!("Service restoration latency: local vs global detour\n");
    println!("{}", result.table());
    println!("{}", result.histogram_text());
    println!("{}", result.summary());
    let path = results_dir().join("latency.csv");
    match result.to_csv().write_to(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
