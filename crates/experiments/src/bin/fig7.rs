//! Regenerates Figure 7: local vs global detour recovery-distance scatter.
//!
//! Usage: `cargo run -p smrp-experiments --release --bin fig7 [--quick]`

use smrp_experiments::{fig7, report, results_dir, Effort};

fn main() {
    let effort = Effort::from_args();
    let result = fig7::run(effort);
    println!("{}", result.plot());
    println!("{}", result.summary());
    let path = results_dir().join("fig7_detour_scatter.csv");
    match result.to_csv().write_to(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    let json = results_dir().join("fig7_detour_scatter.json");
    match report::write_json(&json, &result) {
        Ok(()) => println!("wrote {}", json.display()),
        Err(e) => eprintln!("could not write {}: {e}", json.display()),
    }
}
