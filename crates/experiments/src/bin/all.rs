//! Runs every experiment in sequence (the full evaluation of the paper).
//!
//! Usage: `cargo run -p smrp-experiments --release --bin all [--quick]`

use smrp_experiments::{
    ablation, baselines, churn, fig10, fig7, fig8, fig9, hierarchy_exp, latency, node_failures,
    overhead, proactive, realnet, results_dir, scalability, Effort,
};

fn main() {
    let effort = Effort::from_args();
    let dir = results_dir();

    println!("=== Figure 7: local vs global detour ===\n");
    let r7 = fig7::run(effort);
    println!("{}", r7.plot());
    println!("{}\n", r7.summary());
    r7.to_csv()
        .write_to(&dir.join("fig7_detour_scatter.csv"))
        .ok();

    println!("=== Figure 8: effect of D_thresh ===\n");
    let r8 = fig8::run(effort);
    println!("{}", r8.table());
    println!("{}\n", r8.summary());
    r8.to_csv().write_to(&dir.join("fig8_dthresh.csv")).ok();

    println!("=== Figure 9: effect of alpha ===\n");
    let r9 = fig9::run(effort);
    println!("{}", r9.table());
    println!("{}\n", r9.summary());
    r9.to_csv().write_to(&dir.join("fig9_alpha.csv")).ok();

    println!("=== Figure 10: effect of N_G ===\n");
    let r10 = fig10::run(effort);
    println!("{}", r10.table());
    println!("{}\n", r10.summary());
    r10.to_csv()
        .write_to(&dir.join("fig10_group_size.csv"))
        .ok();

    println!("=== Restoration latency (protocol level) ===\n");
    let rl = latency::run(effort);
    println!("{}", rl.table());
    println!("{}\n", rl.summary());
    rl.to_csv().write_to(&dir.join("latency.csv")).ok();

    println!("=== Hierarchical confinement ===\n");
    let rh = hierarchy_exp::run(effort);
    println!("{}", rh.table());
    println!("{}\n", rh.summary());
    rh.to_csv().write_to(&dir.join("hierarchy.csv")).ok();

    println!("=== Ablations ===\n");
    let ra = ablation::run(effort);
    println!("{}", ra.table());
    ra.to_csv().write_to(&dir.join("ablation.csv")).ok();

    println!("\n=== Baselines: SPF vs Steiner vs SMRP ===\n");
    let rb = baselines::run(effort);
    println!("{}", rb.table());
    println!("{}\n", rb.summary());
    rb.to_csv().write_to(&dir.join("baselines.csv")).ok();

    println!("=== Control-plane overhead (§3.3.2) ===\n");
    let ro = overhead::run(effort);
    println!("{}", ro.table());
    println!("{}\n", ro.summary());
    ro.to_csv().write_to(&dir.join("overhead.csv")).ok();

    println!("=== Proactive backups vs reactive detours ===\n");
    let rp = proactive::run(effort);
    println!("{}", rp.table());
    println!("{}\n", rp.summary());
    rp.to_csv().write_to(&dir.join("proactive.csv")).ok();

    println!("=== Real backbone topologies ===\n");
    let rr = realnet::run(effort);
    println!("{}", rr.table());
    println!("{}\n", rr.summary());
    rr.to_csv().write_to(&dir.join("realnet.csv")).ok();

    println!("=== Node failures (router crashes) ===\n");
    let rn = node_failures::run(effort);
    println!("{}", rn.table());
    println!("{}\n", rn.summary());
    rn.to_csv().write_to(&dir.join("node_failures.csv")).ok();

    println!("=== Membership churn and reshaping ===\n");
    let rc = churn::run(effort);
    println!("{}", rc.table());
    println!("{}\n", rc.summary());
    rc.to_csv().write_to(&dir.join("churn.csv")).ok();

    println!("=== Scalability with N ===\n");
    let rs = scalability::run(effort);
    println!("{}", rs.table());
    println!("{}\n", rs.summary());
    rs.to_csv().write_to(&dir.join("scalability.csv")).ok();

    println!("=== N-level hierarchy (3 levels) ===\n");
    let rnl = hierarchy_exp::run_nlevel(effort);
    println!("{}", rnl.table());
    println!("{}\n", rnl.summary());

    println!("artifacts written under {}", dir.display());
}
