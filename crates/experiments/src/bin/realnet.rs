//! Runs the `realnet` extension experiment.
//!
//! Usage: `cargo run -p smrp-experiments --release --bin realnet [--quick]`

use smrp_experiments::{realnet, results_dir, Effort};

fn main() {
    let effort = Effort::from_args();
    let result = realnet::run(effort);
    println!("{}", result.table());
    println!("{}", result.summary());
    let path = results_dir().join("realnet.csv");
    match result.to_csv().write_to(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
