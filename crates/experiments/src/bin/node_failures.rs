//! Runs the node-failure (router crash) extension experiment.
//!
//! Usage: `cargo run -p smrp-experiments --release --bin node_failures [--quick]`

use smrp_experiments::{node_failures, results_dir, Effort};

fn main() {
    let effort = Effort::from_args();
    let result = node_failures::run(effort);
    println!("{}", result.table());
    println!("{}", result.summary());
    let path = results_dir().join("node_failures.csv");
    match result.to_csv().write_to(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
