//! Regenerates Figure 9: the effect of `α` (average node degree), plus the
//! §4.3.3 degree-10 text claim.
//!
//! Usage: `cargo run -p smrp-experiments --release --bin fig9 [--quick]`

use smrp_experiments::{fig9, report, results_dir, Effort};

fn main() {
    let effort = Effort::from_args();
    let result = fig9::run(effort);
    println!("Figure 9: effect of alpha (N=100, N_G=30, D_thresh=0.3)\n");
    println!("{}", result.table());
    println!("{}", result.summary());
    let path = results_dir().join("fig9_alpha.csv");
    match result.to_csv().write_to(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    let json = results_dir().join("fig9_alpha.json");
    match report::write_json(&json, &result) {
        Ok(()) => println!("wrote {}", json.display()),
        Err(e) => eprintln!("could not write {}: {e}", json.display()),
    }
}
