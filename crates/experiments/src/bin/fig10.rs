//! Regenerates Figure 10: the effect of group size `N_G`.
//!
//! Usage: `cargo run -p smrp-experiments --release --bin fig10 [--quick]`

use smrp_experiments::{fig10, report, results_dir, Effort};

fn main() {
    let effort = Effort::from_args();
    let result = fig10::run(effort);
    println!("Figure 10: effect of N_G (N=100, alpha=0.2, D_thresh=0.3)\n");
    println!("{}", result.table());
    println!("{}", result.summary());
    let path = results_dir().join("fig10_group_size.csv");
    match result.to_csv().write_to(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    let json = results_dir().join("fig10_group_size.json");
    match report::write_json(&json, &result) {
        Ok(()) => println!("wrote {}", json.display()),
        Err(e) => eprintln!("could not write {}: {e}", json.display()),
    }
}
