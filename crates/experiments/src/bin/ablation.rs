//! Runs the design-choice ablations (reshaping, query scheme, thresholds).
//!
//! Usage: `cargo run -p smrp-experiments --release --bin ablation [--quick]`

use smrp_experiments::{ablation, results_dir, Effort};

fn main() {
    let effort = Effort::from_args();
    let result = ablation::run(effort);
    println!("Ablations (N=100, N_G=30, alpha=0.2, D_thresh=0.3)\n");
    println!("{}", result.table());
    let path = results_dir().join("ablation.csv");
    match result.to_csv().write_to(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
