//! Runs the hierarchical recovery confinement experiment (§3.3.3).
//!
//! Usage: `cargo run -p smrp-experiments --release --bin hierarchy [--quick]`

use smrp_experiments::{hierarchy_exp, results_dir, Effort};

fn main() {
    let effort = Effort::from_args();
    let result = hierarchy_exp::run(effort);
    println!("Hierarchical recovery confinement (2-level transit-stub)\n");
    println!("{}", result.table());
    println!("{}", result.summary());
    let path = results_dir().join("hierarchy.csv");
    match result.to_csv().write_to(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }

    println!("\nN-level generalization (3 levels)\n");
    let nres = hierarchy_exp::run_nlevel(effort);
    println!("{}", nres.table());
    println!("{}", nres.summary());
}
