//! Runs the `baselines` extension experiment.
//!
//! Usage: `cargo run -p smrp-experiments --release --bin baselines [--quick]`

use smrp_experiments::{baselines, results_dir, Effort};

fn main() {
    let effort = Effort::from_args();
    let result = baselines::run(effort);
    println!("{}", result.table());
    println!("{}", result.summary());
    let path = results_dir().join("baselines.csv");
    match result.to_csv().write_to(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
