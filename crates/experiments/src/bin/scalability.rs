//! Runs the network-size scalability sweep.
//!
//! Usage: `cargo run -p smrp-experiments --release --bin scalability [--quick]`

use smrp_experiments::{results_dir, scalability, Effort};

fn main() {
    let effort = Effort::from_args();
    let result = scalability::run(effort);
    println!("{}", result.table());
    println!("{}", result.summary());
    let path = results_dir().join("scalability.csv");
    match result.to_csv().write_to(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
