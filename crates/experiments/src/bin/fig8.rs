//! Regenerates Figure 8: the effect of `D_thresh`.
//!
//! Usage: `cargo run -p smrp-experiments --release --bin fig8 [--quick]`

use smrp_experiments::{fig8, report, results_dir, Effort};

fn main() {
    let effort = Effort::from_args();
    let result = fig8::run(effort);
    println!("Figure 8: effect of D_thresh (N=100, N_G=30, alpha=0.2)\n");
    println!("{}", result.table());
    println!("{}", result.summary());
    let path = results_dir().join("fig8_dthresh.csv");
    match result.to_csv().write_to(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
    let json = results_dir().join("fig8_dthresh.json");
    match report::write_json(&json, &result) {
        Ok(()) => println!("wrote {}", json.display()),
        Err(e) => eprintln!("could not write {}: {e}", json.display()),
    }
}
