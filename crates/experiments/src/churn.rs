//! Membership churn and the value of tree reshaping over time (§3.2.3).
//!
//! The paper motivates reshaping with exactly this scenario: "after a
//! series of join and departure events, the multicast tree may become
//! skewed and undesirable to certain receivers for fast failure recovery".
//! This experiment drives a long, seeded join/leave churn over one
//! topology and tracks tree quality over time under three policies:
//!
//! * no reshaping at all;
//! * Condition I only (join-triggered);
//! * Condition I + periodic Condition II sweeps.
//!
//! Quality is measured as the members' mean worst-case local-detour
//! recovery distance (lower = better prepared for failures), alongside the
//! end-to-end delay penalty that reshaping pays.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smrp_core::recovery::DetourKind;
use smrp_core::{SmrpConfig, SmrpSession};
use smrp_metrics::csvout::Csv;
use smrp_metrics::table::Table;
use smrp_metrics::Stats;
use smrp_net::NodeId;

use crate::measure::worst_case_rd;
use crate::scenario::ScenarioConfig;
use crate::Effort;

/// One reshaping policy under churn.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Policy name.
    pub name: &'static str,
    /// Mean worst-case recovery distance across sampled instants.
    pub rd: Stats,
    /// Mean member delay across sampled instants.
    pub delay: Stats,
    /// Total path switches performed by reshaping.
    pub switches: usize,
}

/// Results of the churn experiment.
#[derive(Debug, Clone)]
pub struct ChurnResult {
    /// One row per policy.
    pub rows: Vec<PolicyRow>,
    /// Join/leave events driven per policy.
    pub events: usize,
}

#[derive(Debug, Clone, Copy)]
enum Policy {
    NoReshaping,
    ConditionI,
    Full,
}

fn run_policy(policy: Policy, effort: Effort) -> PolicyRow {
    let scenario_config = ScenarioConfig {
        nodes: 80,
        group_size: 0, // membership is driven by the churn itself.
        ..ScenarioConfig::default()
    };
    let graph = scenario_config.topology(0).expect("topology generates");
    let ids: Vec<NodeId> = graph.node_ids().collect();
    let source = ids[0];
    let pool: Vec<NodeId> = ids[1..].to_vec();

    let config = match policy {
        Policy::NoReshaping => SmrpConfig {
            auto_reshape: false,
            ..SmrpConfig::default()
        },
        Policy::ConditionI | Policy::Full => SmrpConfig::default(),
    };
    let mut sess = SmrpSession::new(&graph, source, config).expect("session builds");
    let mut rng = SmallRng::seed_from_u64(0xC4A2);
    let events = effort.scale(400).max(60);

    let mut row = PolicyRow {
        name: match policy {
            Policy::NoReshaping => "no reshaping",
            Policy::ConditionI => "Condition I only",
            Policy::Full => "Condition I + periodic sweep",
        },
        rd: Stats::new(),
        delay: Stats::new(),
        switches: 0,
    };

    for step in 0..events {
        // Join-biased churn warms the group up to ~25 members, then mixes.
        let member_count = sess.tree().member_count();
        let join = member_count < 8 || (member_count < 30 && rng.gen_bool(0.55));
        if join {
            let candidate = pool[rng.gen_range(0..pool.len())];
            if !sess.tree().is_member(candidate) {
                if let Ok(out) = sess.join(candidate) {
                    row.switches += out.reshaped.len();
                }
            }
        } else {
            let members: Vec<NodeId> = sess.members().collect();
            let leaver = members[rng.gen_range(0..members.len())];
            sess.leave(leaver).expect("member leaves");
        }
        if matches!(policy, Policy::Full) && step % 20 == 19 {
            row.switches += sess.reshape_sweep();
        }
        // Sample tree quality periodically.
        if step % 10 == 9 {
            let mut rd = Stats::new();
            let mut delay = Stats::new();
            for m in sess.members().collect::<Vec<_>>() {
                if let Some(v) = worst_case_rd(&graph, sess.tree(), m, DetourKind::Local) {
                    rd.push(v);
                }
                if let Some(d) = sess.tree().delay_to(&graph, m) {
                    delay.push(d);
                }
            }
            if rd.count() > 0 {
                row.rd.push(rd.mean());
            }
            if delay.count() > 0 {
                row.delay.push(delay.mean());
            }
        }
        debug_assert!(sess.tree().validate(&graph).is_ok());
    }
    row
}

/// Runs the churn experiment for all three policies.
pub fn run(effort: Effort) -> ChurnResult {
    let rows = vec![
        run_policy(Policy::NoReshaping, effort),
        run_policy(Policy::ConditionI, effort),
        run_policy(Policy::Full, effort),
    ];
    ChurnResult {
        rows,
        events: effort.scale(400).max(60),
    }
}

impl ChurnResult {
    /// Renders the comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "policy",
            "mean worst-case RD",
            "mean member delay",
            "path switches",
        ]);
        for row in &self.rows {
            t.row(vec![
                row.name.to_string(),
                format!("{:.2}", row.rd.mean()),
                format!("{:.2}", row.delay.mean()),
                format!("{}", row.switches),
            ]);
        }
        t
    }

    /// CSV artifact.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(vec!["policy", "rd_mean", "delay_mean", "switches"]);
        for row in &self.rows {
            csv.row(vec![
                row.name.to_string(),
                format!("{}", row.rd.mean()),
                format!("{}", row.delay.mean()),
                format!("{}", row.switches),
            ]);
        }
        csv
    }

    /// Textual summary.
    pub fn summary(&self) -> String {
        let none = &self.rows[0];
        let full = &self.rows[2];
        format!(
            "over {} churn events, reshaping keeps the mean worst-case recovery \
             distance at {:.1} vs {:.1} without it ({} path switches) — §3.2.3's \
             skew-repair in action",
            self.events,
            full.rd.mean(),
            none.rd.mean(),
            full.switches,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshaping_does_not_hurt_recovery_under_churn() {
        let r = run(Effort::Quick);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert!(row.rd.count() > 0, "{} sampled nothing", row.name);
            assert!(row.rd.mean() > 0.0);
        }
        // The full policy must not be materially worse than no reshaping,
        // and it must actually be doing work.
        let none = &r.rows[0];
        let full = &r.rows[2];
        assert!(
            full.rd.mean() <= none.rd.mean() * 1.15,
            "reshaping degraded recovery: {:.2} vs {:.2}",
            full.rd.mean(),
            none.rd.mean()
        );
        assert!(full.switches > 0, "the sweeps never switched a path");
    }

    #[test]
    fn artifacts_render() {
        let r = run(Effort::Quick);
        assert!(r.table().render().contains("policy"));
        assert_eq!(r.to_csv().len(), 3);
        assert!(r.summary().contains("churn"));
    }
}
