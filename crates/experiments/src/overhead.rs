//! Control-plane overhead (§3.3.2 "Protocol Overhead").
//!
//! The paper argues SMRP's extra state maintenance is "fairly small …
//! especially when fast service recovery is required". This experiment
//! quantifies it at the message level: steady-state control traffic
//! (hellos, refreshes) per delivered data packet, per router, for SMRP and
//! SPF trees over the same scenarios — SMRP's extra cost is just the
//! larger tree (more on-tree routers exchanging the same timers).

use smrp_metrics::csvout::Csv;
use smrp_metrics::table::Table;
use smrp_metrics::Stats;
use smrp_proto::{ProtoSession, TreeProtocol};
use smrp_sim::SimTime;

use crate::measure::smrp_config;
use crate::scenario::ScenarioConfig;
use crate::Effort;

/// Aggregated overhead for one tree protocol.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Protocol name.
    pub name: &'static str,
    /// Control messages per delivered data packet.
    pub control_per_delivery: Stats,
    /// Control messages per on-tree router per second.
    pub control_rate: Stats,
    /// On-tree routers (tree size including relays).
    pub tree_size: Stats,
}

/// Results of the overhead experiment.
#[derive(Debug, Clone)]
pub struct OverheadResult {
    /// SPF and SMRP rows.
    pub rows: Vec<OverheadRow>,
    /// Scenarios measured.
    pub scenarios: usize,
}

/// Runs the steady-state overhead measurement.
pub fn run(effort: Effort) -> OverheadResult {
    let config = ScenarioConfig {
        nodes: 60,
        group_size: 12,
        ..ScenarioConfig::default()
    };
    let count = effort.scale(10).max(2) as u32;
    let scenarios = config
        .scenarios(count, 1)
        .expect("valid scenario parameters");

    let mut rows: Vec<OverheadRow> = ["SPF (PIM-style)", "SMRP (0.3)"]
        .into_iter()
        .map(|name| OverheadRow {
            name,
            control_per_delivery: Stats::new(),
            control_rate: Stats::new(),
            tree_size: Stats::new(),
        })
        .collect();

    let window = SimTime::from_ms(2000.0);
    for scenario in &scenarios {
        let protocols = [TreeProtocol::Spf, TreeProtocol::Smrp(smrp_config(0.3))];
        for (row, protocol) in rows.iter_mut().zip(protocols) {
            let session = ProtoSession::build(
                &scenario.graph,
                scenario.source,
                &scenario.members,
                protocol,
            )
            .expect("session builds");
            let report = session.run_steady(window);
            if report.control_per_delivery().is_finite() {
                row.control_per_delivery.push(report.control_per_delivery());
            }
            row.control_rate.push(report.control_rate_per_router());
            row.tree_size.push(report.on_tree_nodes as f64);
        }
    }
    OverheadResult {
        rows,
        scenarios: scenarios.len(),
    }
}

impl OverheadResult {
    /// Renders the comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "protocol",
            "ctrl msgs / delivery",
            "ctrl msgs / router / s",
            "on-tree routers",
        ]);
        for row in &self.rows {
            t.row(vec![
                row.name.to_string(),
                format!("{:.2}", row.control_per_delivery.mean()),
                format!("{:.1}", row.control_rate.mean()),
                format!("{:.1}", row.tree_size.mean()),
            ]);
        }
        t
    }

    /// CSV artifact.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(vec![
            "protocol",
            "control_per_delivery",
            "control_rate_per_router",
            "tree_size",
        ]);
        for row in &self.rows {
            csv.row(vec![
                row.name.to_string(),
                format!("{}", row.control_per_delivery.mean()),
                format!("{}", row.control_rate.mean()),
                format!("{}", row.tree_size.mean()),
            ]);
        }
        csv
    }

    /// Relative extra control burden of SMRP over SPF.
    pub fn smrp_extra_fraction(&self) -> f64 {
        let spf = self.rows[0].control_per_delivery.mean();
        let smrp = self.rows[1].control_per_delivery.mean();
        if spf == 0.0 {
            0.0
        } else {
            (smrp - spf) / spf
        }
    }

    /// Textual summary against §3.3.2.
    pub fn summary(&self) -> String {
        format!(
            "SMRP's control overhead is {:.0}% above SPF's ({:.2} vs {:.2} control \
             messages per delivery) — the paper's \"fairly small overhead\" (§3.3.2)",
            self.smrp_extra_fraction() * 100.0,
            self.rows[1].control_per_delivery.mean(),
            self.rows[0].control_per_delivery.mean(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_fairly_small() {
        let r = run(Effort::Quick);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            let v = row.control_per_delivery.mean();
            assert!(v.is_finite() && v > 0.0);
            assert!(v < 20.0, "{}: {v:.1} control msgs per delivery", row.name);
        }
        // SMRP trees are at least as large, so its overhead is >= SPF's,
        // but the §3.3.2 claim is that the extra stays moderate.
        let extra = r.smrp_extra_fraction();
        assert!(extra > -0.2, "SMRP implausibly cheaper: {extra:.2}");
        assert!(extra < 1.0, "SMRP overhead more than doubled: {extra:.2}");
    }

    #[test]
    fn artifacts_render() {
        let r = run(Effort::Quick);
        assert!(r.table().render().contains("protocol"));
        assert_eq!(r.to_csv().len(), 2);
        assert!(r.summary().contains("overhead"));
    }
}
