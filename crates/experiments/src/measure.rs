//! The measurement kernel of §4.2/§4.3.1.
//!
//! For one [`Scenario`]:
//!
//! 1. build the SMRP tree (path-selection + reshaping) and the SPF baseline
//!    tree over the same topology and member set;
//! 2. for every member and each tree, apply the member's **worst-case
//!    failure** — the tree link incident to the source on that member's
//!    path (§4.3.1) — and compute the local-detour recovery distance;
//! 3. record per-member end-to-end delays and per-tree costs;
//! 4. reduce to the relative metrics of §4.2.

use smrp_core::recovery::{self, DetourKind};
use smrp_core::select::SelectionMode;
use smrp_core::{MulticastTree, SmrpConfig, SmrpError, SmrpSession, SpfSession};
use smrp_metrics::relative;
use smrp_net::{FailureScenario, Graph, NodeId};

use crate::scenario::Scenario;

/// Per-member measurements across both trees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemberOutcome {
    /// The member.
    pub member: NodeId,
    /// Worst-case local-detour recovery distance on the SPF tree
    /// (`None` when the member was unrecoverable there).
    pub rd_spf: Option<f64>,
    /// Worst-case local-detour recovery distance on the SMRP tree.
    pub rd_smrp: Option<f64>,
    /// End-to-end tree delay on the SPF tree.
    pub delay_spf: f64,
    /// End-to-end tree delay on the SMRP tree.
    pub delay_smrp: f64,
}

/// All measurements for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Per-member measurements.
    pub members: Vec<MemberOutcome>,
    /// SPF tree cost.
    pub cost_spf: f64,
    /// SMRP tree cost.
    pub cost_smrp: f64,
}

impl ScenarioOutcome {
    /// Mean `RD^relative` over members measurable on both trees.
    pub fn mean_rd_relative(&self) -> Option<f64> {
        let vals: Vec<f64> = self
            .members
            .iter()
            .filter_map(|m| match (m.rd_spf, m.rd_smrp) {
                (Some(spf), Some(smrp)) if spf > 0.0 => Some(relative::rd_relative(spf, smrp)),
                _ => None,
            })
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Mean `D^relative` (per-member delay penalty) over members.
    pub fn mean_delay_relative(&self) -> Option<f64> {
        let vals: Vec<f64> = self
            .members
            .iter()
            .filter(|m| m.delay_spf > 0.0)
            .map(|m| relative::delay_relative(m.delay_smrp, m.delay_spf))
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// `Cost^relative` of the trees.
    pub fn cost_relative(&self) -> f64 {
        relative::cost_relative(self.cost_smrp, self.cost_spf)
    }
}

/// Builds the SMRP tree for a scenario.
///
/// # Errors
///
/// Propagates join failures (disconnected members cannot occur on the
/// connected topologies the generators produce).
pub fn build_smrp_tree(
    scenario: &Scenario,
    config: SmrpConfig,
) -> Result<MulticastTree, SmrpError> {
    let mut sess = SmrpSession::new(&scenario.graph, scenario.source, config)?;
    for &m in &scenario.members {
        sess.join(m)?;
    }
    Ok(sess.tree().clone())
}

/// Builds the SPF baseline tree for a scenario.
///
/// # Errors
///
/// Propagates join failures.
pub fn build_spf_tree(scenario: &Scenario) -> Result<MulticastTree, SmrpError> {
    let mut sess = SpfSession::new(&scenario.graph, scenario.source)?;
    for &m in &scenario.members {
        sess.join(m)?;
    }
    Ok(sess.tree().clone())
}

/// Worst-case local-detour recovery distance for `member` on `tree`
/// (§4.3.1): fail the source-incident link of the member's path, recover
/// via the nearest still-connected on-tree node.
///
/// Returns `None` if the member has no failure to recover from (degenerate)
/// or is unrecoverable under the worst-case failure.
pub fn worst_case_rd(
    graph: &Graph,
    tree: &MulticastTree,
    member: NodeId,
    kind: DetourKind,
) -> Option<f64> {
    let link = recovery::worst_case_failure_for(graph, tree, member)?;
    let scenario = FailureScenario::link(link);
    match recovery::recover(graph, tree, &scenario, member, kind) {
        Ok(rec) => Some(rec.recovery_distance()),
        Err(recovery::RecoveryError::NotAffected(_)) => Some(0.0),
        Err(recovery::RecoveryError::Unrecoverable(_)) => None,
    }
}

/// Runs the full §4.2 measurement kernel on one scenario.
///
/// # Errors
///
/// Propagates tree-construction failures.
pub fn measure_scenario(
    scenario: &Scenario,
    config: SmrpConfig,
) -> Result<ScenarioOutcome, SmrpError> {
    let smrp = build_smrp_tree(scenario, config)?;
    let spf = build_spf_tree(scenario)?;
    let graph = &scenario.graph;

    let members = scenario
        .members
        .iter()
        .map(|&m| MemberOutcome {
            member: m,
            rd_spf: worst_case_rd(graph, &spf, m, DetourKind::Local),
            rd_smrp: worst_case_rd(graph, &smrp, m, DetourKind::Local),
            delay_spf: spf.delay_to(graph, m).expect("member is on the SPF tree"),
            delay_smrp: smrp.delay_to(graph, m).expect("member is on the SMRP tree"),
        })
        .collect();

    Ok(ScenarioOutcome {
        members,
        cost_spf: spf.cost(graph),
        cost_smrp: smrp.cost(graph),
    })
}

/// The default SMRP configuration used by the figure experiments, with the
/// given `D_thresh`.
pub fn smrp_config(d_thresh: f64) -> SmrpConfig {
    SmrpConfig {
        d_thresh,
        selection: SelectionMode::FullTopology,
        ..SmrpConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn small_scenario() -> Scenario {
        let cfg = ScenarioConfig {
            nodes: 40,
            group_size: 8,
            alpha: 0.3,
            base_seed: 11,
        };
        cfg.scenarios(1, 1).unwrap().into_iter().next().unwrap()
    }

    #[test]
    fn kernel_produces_complete_outcomes() {
        let s = small_scenario();
        let out = measure_scenario(&s, smrp_config(0.3)).unwrap();
        assert_eq!(out.members.len(), 8);
        assert!(out.cost_spf > 0.0);
        assert!(out.cost_smrp > 0.0);
        for m in &out.members {
            assert!(m.delay_spf > 0.0);
            assert!(m.delay_smrp > 0.0);
        }
    }

    #[test]
    fn smrp_delay_bound_holds_at_join_time() {
        // The selection criterion guarantees the D_thresh bound whenever a
        // candidate satisfying it exists (`within_bound`); verify both the
        // flag and the delays it certifies.
        let s = small_scenario();
        let mut sess = SmrpSession::new(&s.graph, s.source, smrp_config(0.3)).unwrap();
        let mut within = 0;
        for &m in &s.members {
            let out = sess.join(m).unwrap();
            if out.within_bound {
                within += 1;
                assert!(
                    out.selected_delay <= 1.3 * out.spf_delay + 1e-6,
                    "member {m}: {} vs bound {}",
                    out.selected_delay,
                    1.3 * out.spf_delay
                );
            }
        }
        // On a connected random topology the bound is satisfiable for the
        // overwhelming majority of joins.
        assert!(
            within >= s.members.len() - 1,
            "only {within} joins in bound"
        );
    }

    #[test]
    fn spf_tree_has_shortest_path_delays() {
        let s = small_scenario();
        let spf = build_spf_tree(&s).unwrap();
        for &m in &s.members {
            let d1 = spf.delay_to(&s.graph, m).unwrap();
            let d2 = smrp_net::dijkstra::distance(&s.graph, s.source, m).unwrap();
            assert!((d1 - d2).abs() < 1e-9, "member {m}: {d1} vs SPF {d2}");
        }
    }

    #[test]
    fn relative_reductions_are_defined() {
        let s = small_scenario();
        let out = measure_scenario(&s, smrp_config(0.3)).unwrap();
        // On a connected random graph the metrics should be measurable.
        assert!(out.mean_rd_relative().is_some());
        assert!(out.mean_delay_relative().is_some());
        // Delay penalty stays small on average (the bound holds per join;
        // reshaped subtrees and rare fallbacks add slack).
        assert!(out.mean_delay_relative().unwrap() <= 0.4);
        // Costs cannot shrink below the SPF tree by much... SMRP trades
        // cost away, so the penalty is usually >= 0; allow small negatives
        // (reshaping can occasionally shorten).
        assert!(out.cost_relative() > -0.5);
    }

    #[test]
    fn worst_case_rd_handles_adjacent_member() {
        // Member adjacent to the source: failing its only link may still be
        // recoverable through another neighbor.
        let mut g = Graph::with_nodes(3);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        g.add_link(ids[1], ids[2], 1.0).unwrap();
        g.add_link(ids[0], ids[2], 1.0).unwrap();
        let mut sess = SpfSession::new(&g, ids[0]).unwrap();
        sess.join(ids[1]).unwrap();
        let rd = worst_case_rd(&g, sess.tree(), ids[1], DetourKind::Local);
        // Detour n1 -> n2 -> n0 reaches the tree at n0 with distance 2.
        assert_eq!(rd, Some(2.0));
    }
}
