//! Figure 9: the effect of `α` / average node degree (§4.3.3).
//!
//! Setup: `N = 100`, `N_G = 30`, `D_thresh = 0.3`; `α` swept over
//! {0.15, 0.2, 0.25, 0.3} with the average node degree annotated under
//! each point; 100 scenarios per point. The paper's observations:
//!
//! * the improvement diminishes slightly as the node degree grows (denser
//!   graphs give the SPF tree less link concentration to exploit);
//! * even at an average degree around 10, SMRP still shortens recovery
//!   paths by ≈12% for ≈5% penalty — reproduced here as an extra
//!   calibrated point.

use smrp_net::waxman;

use crate::measure::smrp_config;
use crate::scenario::ScenarioConfig;
use crate::sweep::{self, SweepPoint};
use crate::Effort;

/// The `α` values swept by the paper.
pub const ALPHA_VALUES: [f64; 4] = [0.15, 0.2, 0.25, 0.3];

/// Results of the Figure 9 experiment.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Fig9Result {
    /// One aggregated point per `α` value (x = α).
    pub points: Vec<SweepPoint>,
    /// The §4.3.3 text claim: a calibrated high-degree point
    /// (`avg degree ≈ 10`), if it was run.
    pub degree10: Option<SweepPoint>,
}

/// Runs the Figure 9 sweep.
pub fn run(effort: Effort) -> Fig9Result {
    run_with_degree10(effort, matches!(effort, Effort::Paper))
}

/// Runs the sweep, optionally including the calibrated degree-10 point.
pub fn run_with_degree10(effort: Effort, include_degree10: bool) -> Fig9Result {
    let topologies = effort.scale(10).max(2) as u32;
    let member_sets = effort.scale(10).max(2) as u32;
    let base = ScenarioConfig::default();
    let points: Vec<SweepPoint> = ALPHA_VALUES
        .iter()
        .map(|&alpha| {
            let cfg = ScenarioConfig { alpha, ..base };
            sweep::run_point(alpha, &cfg, smrp_config(0.3), topologies, member_sets)
        })
        .collect();

    let degree10 = include_degree10.then(|| {
        let alpha = waxman::calibrate_alpha(base.nodes, waxman::DEFAULT_BETA, 10.0, base.base_seed);
        let cfg = ScenarioConfig { alpha, ..base };
        sweep::run_point(alpha, &cfg, smrp_config(0.3), topologies, member_sets)
    });

    Fig9Result { points, degree10 }
}

impl Fig9Result {
    /// Paper-style table (α on the x column, degree annotated).
    pub fn table(&self) -> smrp_metrics::table::Table {
        let mut points = self.points.clone();
        if let Some(d10) = &self.degree10 {
            points.push(d10.clone());
        }
        sweep::table("alpha", &points)
    }

    /// CSV artifact.
    pub fn to_csv(&self) -> smrp_metrics::csvout::Csv {
        let mut points = self.points.clone();
        if let Some(d10) = &self.degree10 {
            points.push(d10.clone());
        }
        sweep::to_csv("alpha", &points)
    }

    /// Textual summary against the paper's claims.
    pub fn summary(&self) -> String {
        let first = &self.points[0];
        let last = self.points.last().expect("sweep is non-empty");
        let mut s = format!(
            "alpha {:.2} (deg {:.1}): RD_rel {:.1}%; alpha {:.2} (deg {:.1}): RD_rel {:.1}% \
             (paper: improvement diminishes slightly with degree)",
            first.x,
            first.avg_degree,
            first.rd_rel.mean * 100.0,
            last.x,
            last.avg_degree,
            last.rd_rel.mean * 100.0,
        );
        if let Some(d10) = &self.degree10 {
            s.push_str(&format!(
                "; degree-10 point (alpha {:.2}, deg {:.1}): RD_rel {:.1}% for {:.1}% delay \
                 penalty (paper: ~12% for ~5%)",
                d10.x,
                d10.avg_degree,
                d10.rd_rel.mean * 100.0,
                d10.delay_rel.mean * 100.0
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_degrees_grow_with_alpha() {
        let r = run_with_degree10(Effort::Quick, false);
        assert_eq!(r.points.len(), 4);
        // Average degree grows with alpha overall (individual adjacent
        // pairs can be noisy at quick sample sizes).
        assert!(
            r.points.last().unwrap().avg_degree > r.points[0].avg_degree,
            "degree did not grow: {} -> {}",
            r.points[0].avg_degree,
            r.points.last().unwrap().avg_degree
        );
        // Improvement present overall; individual points can dip slightly
        // negative at quick sample sizes (4 scenarios per point).
        let mean: f64 = r.points.iter().map(|p| p.rd_rel.mean).sum::<f64>() / r.points.len() as f64;
        assert!(mean > 0.0, "no overall improvement: {mean:.3}");
        for p in &r.points {
            assert!(
                p.rd_rel.mean > -0.1,
                "large regression at alpha {}: {:.3}",
                p.x,
                p.rd_rel.mean
            );
        }
    }

    #[test]
    fn artifacts_render() {
        let r = run_with_degree10(Effort::Quick, false);
        assert!(r.table().render().contains("alpha"));
        assert_eq!(r.to_csv().len(), 4);
        assert!(r.degree10.is_none());
        assert!(r.summary().contains("paper"));
    }
}
