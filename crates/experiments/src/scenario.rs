//! Scenario generation: seeded topologies and member sets (§4.1).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use smrp_net::waxman::WaxmanConfig;
use smrp_net::{Graph, NetError, NodeId};

/// Parameters of one simulation scenario family, mirroring §4.1's knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// `N`: number of nodes in the network.
    pub nodes: usize,
    /// `N_G`: number of multicast members.
    pub group_size: usize,
    /// `α`: Waxman edge-density parameter (average node degree knob).
    pub alpha: f64,
    /// Base RNG seed; every scenario derives its own sub-seed.
    pub base_seed: u64,
}

impl Default for ScenarioConfig {
    /// The paper's base configuration: `N = 100`, `N_G = 30`, `α = 0.2`.
    fn default() -> Self {
        ScenarioConfig {
            nodes: 100,
            group_size: 30,
            alpha: 0.2,
            base_seed: 0x5EED,
        }
    }
}

/// One concrete scenario: a topology, a source and a member set.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The network topology.
    pub graph: Graph,
    /// The multicast source.
    pub source: NodeId,
    /// The multicast members (distinct, never the source).
    pub members: Vec<NodeId>,
    /// Which (topology, member-set) indices produced this scenario.
    pub provenance: (u32, u32),
}

impl ScenarioConfig {
    /// Generates the topology for topology index `t`.
    ///
    /// # Errors
    ///
    /// Propagates generator configuration errors.
    pub fn topology(&self, t: u32) -> Result<Graph, NetError> {
        Ok(WaxmanConfig::new(self.nodes)
            .alpha(self.alpha)
            .seed(self.base_seed ^ (0x9E3779B9u64.wrapping_mul(u64::from(t) + 1)))
            .generate()?
            .into_graph())
    }

    /// Samples the source and member set `m` for a given topology.
    pub fn pick_members(&self, graph: &Graph, t: u32, m: u32) -> (NodeId, Vec<NodeId>) {
        let seed = self
            .base_seed
            .wrapping_add(0xA5A5_A5A5u64.wrapping_mul(u64::from(t) + 3))
            .wrapping_add(0x1234_5678u64.wrapping_mul(u64::from(m) + 7));
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ids: Vec<NodeId> = graph.node_ids().collect();
        ids.shuffle(&mut rng);
        let take = self.group_size.min(ids.len() - 1);
        let source = ids[0];
        let members = ids[1..=take].to_vec();
        (source, members)
    }

    /// Generates `topologies × member_sets` scenarios.
    ///
    /// # Errors
    ///
    /// Propagates topology-generation errors.
    pub fn scenarios(&self, topologies: u32, member_sets: u32) -> Result<Vec<Scenario>, NetError> {
        let mut out = Vec::with_capacity((topologies * member_sets) as usize);
        for t in 0..topologies {
            let graph = self.topology(t)?;
            for m in 0..member_sets {
                let (source, members) = self.pick_members(&graph, t, m);
                out.push(Scenario {
                    graph: graph.clone(),
                    source,
                    members,
                    provenance: (t, m),
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_counts_and_shapes() {
        let cfg = ScenarioConfig {
            nodes: 40,
            group_size: 10,
            ..ScenarioConfig::default()
        };
        let scenarios = cfg.scenarios(2, 3).unwrap();
        assert_eq!(scenarios.len(), 6);
        for s in &scenarios {
            assert_eq!(s.graph.node_count(), 40);
            assert_eq!(s.members.len(), 10);
            assert!(!s.members.contains(&s.source));
            // Members are distinct.
            let mut m = s.members.clone();
            m.sort();
            m.dedup();
            assert_eq!(m.len(), 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ScenarioConfig {
            nodes: 30,
            group_size: 5,
            ..ScenarioConfig::default()
        };
        let a = cfg.scenarios(1, 2).unwrap();
        let b = cfg.scenarios(1, 2).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.members, y.members);
            assert_eq!(x.graph.link_count(), y.graph.link_count());
        }
    }

    #[test]
    fn different_member_sets_differ() {
        let cfg = ScenarioConfig {
            nodes: 50,
            group_size: 10,
            ..ScenarioConfig::default()
        };
        let s = cfg.scenarios(1, 2).unwrap();
        assert_ne!(s[0].members, s[1].members);
    }

    #[test]
    fn group_size_is_capped_by_node_count() {
        let cfg = ScenarioConfig {
            nodes: 8,
            group_size: 100,
            alpha: 0.9,
            ..ScenarioConfig::default()
        };
        let s = cfg.scenarios(1, 1).unwrap();
        assert_eq!(s[0].members.len(), 7);
    }
}
