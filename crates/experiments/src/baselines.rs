//! Three-way baseline comparison: SPF vs cost-minimizing Steiner vs SMRP.
//!
//! §4.2 expects the paper's conclusions to carry over "to the
//! cost-minimizing multicast routing protocols" (Wei & Estrin's trade-off
//! study). This experiment puts all three tree builders on the same
//! scenarios and measures the sharing spectrum end to end: Steiner trees
//! maximize sharing (cheapest, worst recovery), SPF sits in the middle,
//! SMRP deliberately minimizes sharing (best recovery, bounded delay
//! penalty).

use smrp_core::recovery::DetourKind;
use smrp_core::{MulticastTree, SmrpError, SteinerSession};
use smrp_metrics::csvout::Csv;
use smrp_metrics::table::Table;
use smrp_metrics::Stats;

use crate::measure::{build_smrp_tree, build_spf_tree, smrp_config, worst_case_rd};
use crate::scenario::{Scenario, ScenarioConfig};
use crate::Effort;

/// Aggregated metrics for one tree-construction protocol.
#[derive(Debug, Clone)]
pub struct ProtocolRow {
    /// Protocol name.
    pub name: &'static str,
    /// Worst-case local-detour recovery distance over members.
    pub rd: Stats,
    /// End-to-end member delay.
    pub delay: Stats,
    /// Tree cost.
    pub cost: Stats,
}

/// Results of the baseline comparison.
#[derive(Debug, Clone)]
pub struct BaselinesResult {
    /// One row per protocol: SPF, Steiner, SMRP.
    pub rows: Vec<ProtocolRow>,
    /// Scenarios measured.
    pub scenarios: usize,
}

fn build_steiner_tree(scenario: &Scenario) -> Result<MulticastTree, SmrpError> {
    let mut sess = SteinerSession::new(&scenario.graph, scenario.source)?;
    for &m in &scenario.members {
        sess.join(m)?;
    }
    Ok(sess.tree().clone())
}

/// Runs the comparison on the Figure 8 base setup.
pub fn run(effort: Effort) -> BaselinesResult {
    let config = ScenarioConfig::default();
    let topologies = effort.scale(10).max(2) as u32;
    let member_sets = effort.scale(5).max(1) as u32;
    let scenarios = config
        .scenarios(topologies, member_sets)
        .expect("valid scenario parameters");

    let mut rows: Vec<ProtocolRow> = ["SPF (PIM-style)", "Steiner (cost-min)", "SMRP (0.3)"]
        .into_iter()
        .map(|name| ProtocolRow {
            name,
            rd: Stats::new(),
            delay: Stats::new(),
            cost: Stats::new(),
        })
        .collect();

    for scenario in &scenarios {
        let trees = [
            build_spf_tree(scenario).expect("SPF tree builds"),
            build_steiner_tree(scenario).expect("Steiner tree builds"),
            build_smrp_tree(scenario, smrp_config(0.3)).expect("SMRP tree builds"),
        ];
        for (row, tree) in rows.iter_mut().zip(&trees) {
            row.cost.push(tree.cost(&scenario.graph));
            for &m in &scenario.members {
                if let Some(d) = tree.delay_to(&scenario.graph, m) {
                    row.delay.push(d);
                }
                if let Some(rd) = worst_case_rd(&scenario.graph, tree, m, DetourKind::Local) {
                    row.rd.push(rd);
                }
            }
        }
    }
    BaselinesResult {
        rows,
        scenarios: scenarios.len(),
    }
}

impl BaselinesResult {
    /// Renders the comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "protocol",
            "mean worst-case RD",
            "mean delay",
            "mean tree cost",
        ]);
        for row in &self.rows {
            t.row(vec![
                row.name.to_string(),
                format!("{:.2}", row.rd.mean()),
                format!("{:.2}", row.delay.mean()),
                format!("{:.2}", row.cost.mean()),
            ]);
        }
        t
    }

    /// CSV artifact.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(vec!["protocol", "rd_mean", "delay_mean", "cost_mean"]);
        for row in &self.rows {
            csv.row(vec![
                row.name.to_string(),
                format!("{}", row.rd.mean()),
                format!("{}", row.delay.mean()),
                format!("{}", row.cost.mean()),
            ]);
        }
        csv
    }

    /// Row accessors by position: SPF, Steiner, SMRP.
    pub fn spf(&self) -> &ProtocolRow {
        &self.rows[0]
    }
    /// The cost-minimizing baseline row.
    pub fn steiner(&self) -> &ProtocolRow {
        &self.rows[1]
    }
    /// The SMRP row.
    pub fn smrp(&self) -> &ProtocolRow {
        &self.rows[2]
    }

    /// Textual summary of the sharing spectrum.
    pub fn summary(&self) -> String {
        format!(
            "worst-case RD: Steiner {:.1} ≥ SPF {:.1} ≥ SMRP {:.1}; tree cost: \
             Steiner {:.1} ≤ SPF {:.1} ≤ SMRP {:.1} — recovery speed is bought \
             with sharing, exactly the paper's §4.2 expectation",
            self.steiner().rd.mean(),
            self.spf().rd.mean(),
            self.smrp().rd.mean(),
            self.steiner().cost.mean(),
            self.spf().cost.mean(),
            self.smrp().cost.mean(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharing_spectrum_orders_protocols() {
        let r = run(Effort::Quick);
        assert!(r.scenarios >= 2);
        // Cost: Steiner <= SPF (cost-min by construction, heuristically).
        assert!(
            r.steiner().cost.mean() <= r.spf().cost.mean() * 1.05,
            "Steiner ({:.1}) should not cost more than SPF ({:.1})",
            r.steiner().cost.mean(),
            r.spf().cost.mean()
        );
        // Recovery: SMRP < SPF (the paper's core result).
        assert!(
            r.smrp().rd.mean() < r.spf().rd.mean(),
            "SMRP RD ({:.1}) should beat SPF ({:.1})",
            r.smrp().rd.mean(),
            r.spf().rd.mean()
        );
        // Delay: SPF optimal.
        assert!(r.spf().delay.mean() <= r.smrp().delay.mean() + 1e-9);
        assert!(r.spf().delay.mean() <= r.steiner().delay.mean() + 1e-9);
    }

    #[test]
    fn artifacts_render() {
        let r = run(Effort::Quick);
        assert!(r.table().render().contains("Steiner"));
        assert_eq!(r.to_csv().len(), 3);
        assert!(r.summary().contains("sharing"));
    }
}
