//! JSON artifact output.
//!
//! Every figure result serializes to a JSON document alongside its CSV, so
//! downstream tooling (plotting scripts, regression checks) can consume the
//! exact numbers EXPERIMENTS.md reports without re-running anything.

use std::path::Path;

use serde::Serialize;

/// Serializes `value` as pretty-printed JSON under `path`, creating parent
/// directories as needed.
///
/// # Errors
///
/// Propagates serialization and filesystem errors.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let text = serde_json::to_string_pretty(value).map_err(std::io::Error::other)?;
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fig8, Effort};

    #[test]
    fn figure_results_round_trip_through_json() {
        let r = fig8::run(Effort::Quick);
        let dir = std::env::temp_dir().join("smrp-report-test");
        let path = dir.join("fig8.json");
        write_json(&path, &r).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        let points = parsed["points"].as_array().unwrap();
        assert_eq!(points.len(), 4);
        // The JSON carries the same headline mean as the in-memory result.
        let json_mean = points[2]["rd_rel"]["mean"].as_f64().unwrap();
        assert!((json_mean - r.headline().rd_rel.mean).abs() < 1e-12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn nested_directories_are_created() {
        let dir = std::env::temp_dir().join("smrp-report-test-nested");
        let path = dir.join("a").join("b").join("x.json");
        write_json(&path, &vec![1, 2, 3]).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
