//! SMRP on real backbone topologies (the paper's future work: "evaluate
//! SMRP's applicability to real networks").
//!
//! Runs the §4.2 measurement kernel on the bundled Abilene and GÉANT-like
//! backbones with several member sets per topology, and adds a
//! protocol-level restoration-latency spot check on Abilene.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use smrp_core::recovery;
use smrp_metrics::csvout::Csv;
use smrp_metrics::table::{percent, Table};
use smrp_metrics::Stats;
use smrp_net::{import, FailureScenario, Graph, NodeId};
use smrp_proto::{ProtoSession, RecoveryStrategy, TreeProtocol};
use smrp_sim::SimTime;

use crate::measure::{measure_scenario, smrp_config};
use crate::scenario::Scenario;
use crate::Effort;

/// Per-backbone aggregated results.
#[derive(Debug, Clone)]
pub struct BackboneRow {
    /// Backbone name.
    pub name: &'static str,
    /// Nodes in the backbone.
    pub nodes: usize,
    /// Mean `RD^relative` across member sets.
    pub rd_rel: Stats,
    /// Mean `D^relative`.
    pub delay_rel: Stats,
    /// Mean `Cost^relative`.
    pub cost_rel: Stats,
    /// Protocol-level local-detour restoration latency (ms), if measured.
    pub local_latency_ms: Option<f64>,
}

/// Results over all bundled backbones.
#[derive(Debug, Clone)]
pub struct RealnetResult {
    /// One row per backbone.
    pub rows: Vec<BackboneRow>,
}

fn member_sets(graph: &Graph, group: usize, sets: u32, seed: u64) -> Vec<(NodeId, Vec<NodeId>)> {
    (0..sets)
        .map(|i| {
            let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(i as u64 * 977));
            let mut ids: Vec<NodeId> = graph.node_ids().collect();
            ids.shuffle(&mut rng);
            let take = group.min(ids.len() - 1);
            (ids[0], ids[1..=take].to_vec())
        })
        .collect()
}

fn run_backbone(
    name: &'static str,
    graph: Graph,
    group: usize,
    sets: u32,
    with_latency: bool,
) -> BackboneRow {
    let mut row = BackboneRow {
        name,
        nodes: graph.node_count(),
        rd_rel: Stats::new(),
        delay_rel: Stats::new(),
        cost_rel: Stats::new(),
        local_latency_ms: None,
    };
    for (i, (source, members)) in member_sets(&graph, group, sets, 0xBEEF)
        .into_iter()
        .enumerate()
    {
        let scenario = Scenario {
            graph: graph.clone(),
            source,
            members: members.clone(),
            provenance: (0, i as u32),
        };
        let out = measure_scenario(&scenario, smrp_config(0.3)).expect("backbone measures");
        if let Some(v) = out.mean_rd_relative() {
            row.rd_rel.push(v);
        }
        if let Some(v) = out.mean_delay_relative() {
            row.delay_rel.push(v);
        }
        row.cost_rel.push(out.cost_relative());

        if with_latency && i == 0 {
            let session = ProtoSession::build(
                &graph,
                source,
                &members,
                TreeProtocol::Smrp(smrp_config(0.3)),
            )
            .expect("session builds");
            if let Some(link) = recovery::worst_case_failure_for(&graph, session.tree(), members[0])
            {
                let report = session.run_failure(
                    &FailureScenario::link(link),
                    RecoveryStrategy::LocalDetour,
                    SimTime::from_ms(150.0),
                    SimTime::from_ms(3000.0),
                );
                row.local_latency_ms = report.mean_latency_ms();
            }
        }
    }
    row
}

/// Runs the real-topology evaluation.
pub fn run(effort: Effort) -> RealnetResult {
    // Fixed backbones leave member placement as the only randomness; keep
    // enough sets under `Effort::Quick` for the mean comparison to settle.
    let sets = effort.scale(10).max(6) as u32;
    RealnetResult {
        rows: vec![
            run_backbone("Abilene (Internet2)", import::abilene(), 5, sets, true),
            run_backbone("GEANT-like (Europe)", import::geant(), 8, sets, true),
        ],
    }
}

impl RealnetResult {
    /// Renders the comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "backbone",
            "nodes",
            "RD_rel",
            "D_rel",
            "Cost_rel",
            "local restore (ms)",
        ]);
        for row in &self.rows {
            t.row(vec![
                row.name.to_string(),
                format!("{}", row.nodes),
                percent(row.rd_rel.mean()),
                percent(row.delay_rel.mean()),
                percent(row.cost_rel.mean()),
                row.local_latency_ms
                    .map_or("-".to_string(), |v| format!("{v:.1}")),
            ]);
        }
        t
    }

    /// CSV artifact.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(vec![
            "backbone",
            "nodes",
            "rd_rel",
            "delay_rel",
            "cost_rel",
            "local_latency_ms",
        ]);
        for row in &self.rows {
            csv.row(vec![
                row.name.to_string(),
                format!("{}", row.nodes),
                format!("{}", row.rd_rel.mean()),
                format!("{}", row.delay_rel.mean()),
                format!("{}", row.cost_rel.mean()),
                format!("{}", row.local_latency_ms.unwrap_or(f64::NAN)),
            ]);
        }
        csv
    }

    /// Textual summary.
    pub fn summary(&self) -> String {
        let parts: Vec<String> = self
            .rows
            .iter()
            .map(|r| format!("{}: RD_rel {:.1}%", r.name, r.rd_rel.mean() * 100.0))
            .collect();
        format!(
            "{} — SMRP's local-recovery advantage carries over to real backbone \
             structure (paper future work)",
            parts.join("; ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backbones_benefit_from_smrp() {
        let r = run(Effort::Quick);
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            // Small dense backbones offer fewer disjoint options than
            // 100-node Waxman graphs, so require non-regression rather
            // than a large win.
            assert!(
                row.rd_rel.mean() > -0.05,
                "{} regressed: {:.3}",
                row.name,
                row.rd_rel.mean()
            );
            assert!(row.delay_rel.mean() < 0.35);
        }
        // The protocol-level spot check restored service.
        assert!(r.rows[0].local_latency_ms.is_some());
    }

    #[test]
    fn artifacts_render() {
        let r = run(Effort::Quick);
        assert!(r.table().render().contains("Abilene"));
        assert_eq!(r.to_csv().len(), 2);
        assert!(r.summary().contains("backbone"));
    }
}
