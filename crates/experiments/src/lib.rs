#![warn(missing_docs)]

//! Experiment harness reproducing the SMRP paper's evaluation (§4).
//!
//! Every figure of the paper maps to one module/binary pair:
//!
//! | Paper artifact | Module | Binary | Bench |
//! |---|---|---|---|
//! | Figure 7 (local vs global detour scatter) | [`fig7`] | `fig7` | `fig07_detour_scatter` |
//! | Figure 8 (effect of `D_thresh`) | [`fig8`] | `fig8` | `fig08_dthresh` |
//! | Figure 9 (effect of `α` / node degree) | [`fig9`] | `fig9` | `fig09_alpha` |
//! | Figure 10 (effect of group size `N_G`) | [`fig10`] | `fig10` | `fig10_group_size` |
//! | §1 motivation: restoration latency | [`latency`] | `latency` | — |
//! | §3.3.3 hierarchical confinement (Fig. 6) | [`hierarchy_exp`] | `hierarchy` | — |
//! | Design-choice ablations | [`ablation`] | `ablation` | — |
//!
//! Shared infrastructure: [`scenario`] generates seeded (topology,
//! member-set) pairs exactly as §4.1 describes (GT-ITM-style Waxman
//! topologies, random member selection); [`measure`] runs the §4.2/§4.3.1
//! measurement kernel (build SMRP and SPF trees, apply each member's
//! worst-case failure, record recovery distances, delays and tree costs).
//!
//! All experiments are deterministic for a fixed base seed and emit both a
//! human-readable report and CSV/JSON artifacts under `results/`.

pub mod ablation;
pub mod baselines;
pub mod churn;
pub mod fig10;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod hierarchy_exp;
pub mod latency;
pub mod measure;
pub mod node_failures;
pub mod overhead;
pub mod proactive;
pub mod realnet;
pub mod report;
pub mod scalability;
pub mod scenario;
pub mod sweep;

pub use measure::{MemberOutcome, ScenarioOutcome};
pub use scenario::{Scenario, ScenarioConfig};

/// Effort level of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Effort {
    /// Paper-scale sample counts (the defaults of §4.3).
    #[default]
    Paper,
    /// Reduced sample counts for CI and smoke benches.
    Quick,
}

impl Effort {
    /// Parses `--quick` from process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Effort::Quick
        } else {
            Effort::Paper
        }
    }

    /// Scales a paper-scale count down in quick mode.
    pub fn scale(&self, paper_count: usize) -> usize {
        match self {
            Effort::Paper => paper_count,
            Effort::Quick => (paper_count / 5).max(1),
        }
    }
}

/// Default directory for experiment artifacts.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("SMRP_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_scales_counts() {
        assert_eq!(Effort::Paper.scale(10), 10);
        assert_eq!(Effort::Quick.scale(10), 2);
        assert_eq!(Effort::Quick.scale(3), 1, "quick never drops to zero");
        assert_eq!(Effort::Quick.scale(0), 1);
    }

    #[test]
    fn results_dir_honors_env_override() {
        // Serialize access to the env var within this process.
        let default = results_dir();
        assert_eq!(default, std::path::PathBuf::from("results"));
        std::env::set_var("SMRP_RESULTS_DIR", "/tmp/smrp-custom");
        assert_eq!(results_dir(), std::path::PathBuf::from("/tmp/smrp-custom"));
        std::env::remove_var("SMRP_RESULTS_DIR");
    }

    #[test]
    fn default_effort_is_paper() {
        assert_eq!(Effort::default(), Effort::Paper);
    }
}
