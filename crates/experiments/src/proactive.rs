//! Reactive local detours vs preplanned backup paths (§2 related work).
//!
//! Han & Shin's dependable connections pre-establish a disjoint backup per
//! receiver: activation is instant, but the backup reserves resources the
//! whole time and protects only against failures it happens to dodge. This
//! experiment measures the trade-off on the Figure 8 base setup, under each
//! member's worst-case failure:
//!
//! * coverage — how many members even *have* a disjoint backup;
//! * survival — how often the preplanned backup dodges the actual failure
//!   (vs the reactive detour, which adapts after the fact);
//! * standing overhead — reserved off-tree capacity, vs zero for reactive;
//! * path quality — the backup's end-to-end delay vs the reactive detour's
//!   post-recovery delay.

use smrp_core::backup::{self, Activation};
use smrp_core::recovery::{self, DetourKind};
use smrp_metrics::csvout::Csv;
use smrp_metrics::table::{percent, Table};
use smrp_metrics::Stats;
use smrp_net::FailureScenario;

use crate::measure::{build_smrp_tree, smrp_config};
use crate::scenario::ScenarioConfig;
use crate::Effort;

/// Results of the proactive-vs-reactive comparison.
#[derive(Debug, Clone)]
pub struct ProactiveResult {
    /// Members examined (across scenarios).
    pub members: usize,
    /// Members with a plannable backup path.
    pub protectable: usize,
    /// Worst-case failures survived by the preplanned backup.
    pub backup_survived: usize,
    /// Worst-case failures recovered by the reactive local detour.
    pub reactive_recovered: usize,
    /// End-to-end delay after switching to the backup.
    pub backup_delay: Stats,
    /// End-to-end delay after the reactive local detour.
    pub reactive_delay: Stats,
    /// Standing reserved capacity (cost units) per scenario.
    pub standing_overhead: Stats,
    /// Tree cost per scenario, for scale.
    pub tree_cost: Stats,
}

/// Runs the comparison.
pub fn run(effort: Effort) -> ProactiveResult {
    let config = ScenarioConfig::default();
    let topologies = effort.scale(10).max(2) as u32;
    let member_sets = effort.scale(5).max(1) as u32;
    let scenarios = config
        .scenarios(topologies, member_sets)
        .expect("valid scenario parameters");

    let mut result = ProactiveResult {
        members: 0,
        protectable: 0,
        backup_survived: 0,
        reactive_recovered: 0,
        backup_delay: Stats::new(),
        reactive_delay: Stats::new(),
        standing_overhead: Stats::new(),
        tree_cost: Stats::new(),
    };

    for scenario in &scenarios {
        let tree = build_smrp_tree(scenario, smrp_config(0.3)).expect("tree builds");
        let graph = &scenario.graph;
        let plans = backup::plan_backups(graph, &tree);
        result
            .standing_overhead
            .push(backup::standing_overhead(graph, &tree, &plans));
        result.tree_cost.push(tree.cost(graph));

        for &member in &scenario.members {
            result.members += 1;
            let Some(link) = recovery::worst_case_failure_for(graph, &tree, member) else {
                continue;
            };
            let fail = FailureScenario::link(link);

            // Reactive local detour.
            if let Ok(rec) = recovery::recover(graph, &tree, &fail, member, DetourKind::Local) {
                result.reactive_recovered += 1;
                result.reactive_delay.push(rec.new_end_to_end_delay());
            }

            // Preplanned backup.
            let Some(plan) = plans.iter().find(|p| p.member == member) else {
                continue;
            };
            result.protectable += 1;
            match backup::activate(graph, plan, &fail) {
                Activation::Switched { backup_delay } => {
                    result.backup_survived += 1;
                    result.backup_delay.push(backup_delay);
                }
                Activation::NotNeeded => {
                    // The worst-case failure did not touch this member's
                    // primary (possible when another branch absorbed it);
                    // count as survived since service never stopped.
                    result.backup_survived += 1;
                }
                Activation::BackupDead => {}
            }
        }
    }
    result
}

impl ProactiveResult {
    /// Renders the comparison table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec!["metric", "preplanned backup", "reactive local detour"]);
        t.row(vec![
            "members protectable / recovering".into(),
            format!("{}/{}", self.protectable, self.members),
            format!("{}/{}", self.reactive_recovered, self.members),
        ]);
        t.row(vec![
            "worst-case failures survived".into(),
            percent(self.backup_survived as f64 / self.protectable.max(1) as f64),
            percent(self.reactive_recovered as f64 / self.members.max(1) as f64),
        ]);
        t.row(vec![
            "post-recovery delay (mean)".into(),
            format!("{:.1}", self.backup_delay.mean()),
            format!("{:.1}", self.reactive_delay.mean()),
        ]);
        t.row(vec![
            "standing overhead vs tree cost".into(),
            format!(
                "{:.1} ({:.0}% of tree)",
                self.standing_overhead.mean(),
                100.0 * self.standing_overhead.mean() / self.tree_cost.mean().max(1e-9)
            ),
            "0".into(),
        ]);
        t
    }

    /// CSV artifact.
    pub fn to_csv(&self) -> Csv {
        let mut csv = Csv::new(vec![
            "members",
            "protectable",
            "backup_survived",
            "reactive_recovered",
            "backup_delay_mean",
            "reactive_delay_mean",
            "standing_overhead_mean",
            "tree_cost_mean",
        ]);
        csv.row_f64(&[
            self.members as f64,
            self.protectable as f64,
            self.backup_survived as f64,
            self.reactive_recovered as f64,
            self.backup_delay.mean(),
            self.reactive_delay.mean(),
            self.standing_overhead.mean(),
            self.tree_cost.mean(),
        ]);
        csv
    }

    /// Textual summary.
    pub fn summary(&self) -> String {
        format!(
            "preplanned backups protect {}/{} members at a standing cost of \
             {:.0}% of the tree; the reactive local detour recovers {}/{} with \
             zero standing cost — the trade-off §2 describes",
            self.backup_survived,
            self.members,
            100.0 * self.standing_overhead.mean() / self.tree_cost.mean().max(1e-9),
            self.reactive_recovered,
            self.members,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_schemes_recover_most_members() {
        let r = run(Effort::Quick);
        assert!(r.members > 20);
        let reactive_rate = r.reactive_recovered as f64 / r.members as f64;
        assert!(
            reactive_rate > 0.8,
            "reactive recovery rate only {reactive_rate:.2}"
        );
        // On connected Waxman graphs nearly every member has an
        // alternative path, so backups are plannable for most.
        let coverage = r.protectable as f64 / r.members as f64;
        assert!(coverage > 0.7, "backup coverage only {coverage:.2}");
        // Proactive protection pays a real standing cost.
        assert!(r.standing_overhead.mean() > 0.0);
    }

    #[test]
    fn artifacts_render() {
        let r = run(Effort::Quick);
        assert!(r.table().render().contains("standing overhead"));
        assert_eq!(r.to_csv().len(), 1);
        assert!(r.summary().contains("trade-off"));
    }
}
