//! Hierarchical timer wheel with generation-stamped handles.
//!
//! The engine's timer traffic is dominated by short, frequently re-armed
//! soft-state timers (Hello ticks, refresh re-arms, RTO retransmits). A
//! binary heap charges `O(log n)` per schedule and cannot cancel at all —
//! dead timers must be filtered when they fire. The wheel here gives
//! `O(1)` schedule and cancel:
//!
//! * virtual time is bucketed into ticks of 2^19 ns (≈ 0.52 ms);
//! * [`LEVELS`] levels of [`SLOTS`] slots each cover spans of 64, 64²,
//!   64³ and 64⁴ ticks — entries land in the coarsest level that can hold
//!   their delay and cascade down as the cursor crosses level boundaries;
//! * entries beyond level coverage (≈ 2.4 h of virtual time) wait in an
//!   overflow list and are re-anchored when the levels drain;
//! * every entry lives in a slab slot stamped with a *generation*; a
//!   [`TimerHandle`] is `(slot, generation)`, so a stale handle — one
//!   whose timer already fired or was cancelled, even if the slab slot
//!   was since reused — can never cancel the wrong timer.
//!
//! Determinism is preserved exactly: every entry carries the caller's
//! global sequence number, a drained tick is sorted by `(time, seq)`
//! before it is consumed, and ticks are strictly time-ordered, so pop
//! order is identical to a `(time, seq)`-keyed heap.

use std::collections::VecDeque;

use crate::time::SimTime;

/// Slots per wheel level (64: slot indices are 6-bit fields of the tick).
pub const SLOTS: usize = 64;
/// Number of wheel levels.
pub const LEVELS: usize = 4;
const SLOT_BITS: u32 = 6;
/// log2 of the level-0 tick length in nanoseconds (2^19 ns ≈ 0.524 ms).
const TICK_BITS: u32 = 19;

/// A generation-stamped reference to a scheduled timer.
///
/// Handles are cheap (`Copy`, 8 bytes) and *stale-safe*: once the timer
/// fires or is cancelled, its slab slot's generation advances, so the old
/// handle no longer matches and [`TimerWheel::cancel`] is a no-op on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerHandle {
    index: u32,
    generation: u32,
}

struct SlabEntry<E> {
    time: SimTime,
    seq: u64,
    generation: u32,
    /// Scheduled and not yet cancelled or popped.
    live: bool,
    event: Option<E>,
}

/// The wheel itself; `E` is the event payload.
pub struct TimerWheel<E> {
    slab: Vec<SlabEntry<E>>,
    free: Vec<u32>,
    levels: [[Vec<u32>; SLOTS]; LEVELS],
    overflow: Vec<u32>,
    /// Entries (live or cancelled) currently parked in `levels`.
    in_levels: usize,
    /// Drained-but-unconsumed entries, sorted ascending by `(time, seq)`.
    ready: VecDeque<u32>,
    /// Next tick to drain; every entry with `tick < cursor` is in `ready`.
    cursor: u64,
    /// Live (scheduled, not cancelled, not popped) entries anywhere.
    live: usize,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel anchored at time zero.
    pub fn new() -> Self {
        TimerWheel {
            slab: Vec::new(),
            free: Vec::new(),
            levels: std::array::from_fn(|_| std::array::from_fn(|_| Vec::new())),
            overflow: Vec::new(),
            in_levels: 0,
            ready: VecDeque::new(),
            cursor: 0,
            live: 0,
        }
    }

    /// Number of live (pending) timers.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live timers are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn tick_of(time: SimTime) -> u64 {
        time.as_ns() >> TICK_BITS
    }

    /// Schedules `event` at absolute `time`. `seq` is the caller's global
    /// ordering sequence number; pops come out in `(time, seq)` order.
    ///
    /// Scheduling in the past (relative to already-popped timers) is
    /// tolerated: the entry is merged into the pending ready batch at its
    /// proper `(time, seq)` position.
    pub fn schedule(&mut self, time: SimTime, seq: u64, event: E) -> TimerHandle {
        let index = match self.free.pop() {
            Some(i) => {
                let e = &mut self.slab[i as usize];
                e.time = time;
                e.seq = seq;
                e.live = true;
                e.event = Some(event);
                i
            }
            None => {
                let i = u32::try_from(self.slab.len()).expect("timer slab exhausted");
                self.slab.push(SlabEntry {
                    time,
                    seq,
                    generation: 0,
                    live: true,
                    event: Some(event),
                });
                i
            }
        };
        self.live += 1;
        self.place(index);
        TimerHandle {
            index,
            generation: self.slab[index as usize].generation,
        }
    }

    /// Cancels the timer behind `handle`. Returns `true` if a live timer
    /// was cancelled; `false` if the handle is stale (already fired or
    /// cancelled, slot possibly reused).
    pub fn cancel(&mut self, handle: TimerHandle) -> bool {
        let Some(e) = self.slab.get_mut(handle.index as usize) else {
            return false;
        };
        if e.generation != handle.generation || !e.live {
            return false;
        }
        // Lazy removal: drop the payload now, leave the index parked in
        // its slot/ready position; it is reclaimed when encountered.
        e.live = false;
        e.event = None;
        self.live -= 1;
        true
    }

    /// `(time, seq)` of the earliest live timer, if any.
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        self.settle();
        let &front = self.ready.front()?;
        let e = &self.slab[front as usize];
        Some((e.time, e.seq))
    }

    /// Removes and returns the earliest live timer.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        self.settle();
        let front = self.ready.pop_front()?;
        let e = &mut self.slab[front as usize];
        let time = e.time;
        let seq = e.seq;
        let event = e.event.take().expect("settled front entry has a payload");
        e.live = false;
        self.live -= 1;
        self.release(front);
        Some((time, seq, event))
    }

    /// Reclaims a consumed or cancelled slab slot, bumping its generation
    /// so outstanding handles to it go stale.
    fn release(&mut self, index: u32) {
        let e = &mut self.slab[index as usize];
        e.generation = e.generation.wrapping_add(1);
        e.event = None;
        self.free.push(index);
    }

    /// Ensures the front of `ready` is a live entry, draining ticks (and
    /// re-anchoring the overflow) as needed. Afterwards `ready` is either
    /// empty (wheel exhausted) or fronted by a live entry.
    fn settle(&mut self) {
        loop {
            // Discard cancelled entries parked at the front.
            while let Some(&front) = self.ready.front() {
                if self.slab[front as usize].live {
                    return;
                }
                self.ready.pop_front();
                self.release(front);
            }
            if self.live == 0 {
                return;
            }
            if self.in_levels == 0 {
                // Everything live waits in the overflow: re-anchor the
                // cursor at the earliest overflow tick and re-place.
                let min_tick = self
                    .overflow
                    .iter()
                    .map(|&i| Self::tick_of(self.slab[i as usize].time))
                    .min()
                    .expect("live entries must be parked somewhere");
                self.cursor = self.cursor.max(min_tick);
                for index in std::mem::take(&mut self.overflow) {
                    if self.slab[index as usize].live {
                        self.place(index);
                    } else {
                        self.release(index);
                    }
                }
                continue;
            }
            self.drain_tick();
        }
    }

    /// Advances the cursor over one tick: cascades any level boundaries
    /// being crossed, then drains the level-0 slot for that tick into
    /// `ready` in `(time, seq)` order.
    fn drain_tick(&mut self) {
        let c = self.cursor;
        // Highest level first, so entries can cascade down through
        // several levels at a shared boundary.
        for level in (1..LEVELS).rev() {
            let shift = SLOT_BITS * level as u32;
            if c & ((1 << shift) - 1) == 0 {
                let slot = ((c >> shift) & (SLOTS as u64 - 1)) as usize;
                for index in std::mem::take(&mut self.levels[level][slot]) {
                    self.in_levels -= 1;
                    if self.slab[index as usize].live {
                        self.place(index);
                    } else {
                        self.release(index);
                    }
                }
            }
        }
        let slot = (c & (SLOTS as u64 - 1)) as usize;
        let mut batch = std::mem::take(&mut self.levels[0][slot]);
        self.in_levels -= batch.len();
        batch.retain(|&index| {
            if self.slab[index as usize].live {
                true
            } else {
                self.release(index);
                false
            }
        });
        batch.sort_unstable_by_key(|&index| {
            let e = &self.slab[index as usize];
            (e.time, e.seq)
        });
        self.ready.extend(batch);
        self.cursor = c + 1;
    }

    /// Parks `index` in the structure appropriate for its delay: the
    /// sorted ready batch if its tick was already drained, else the
    /// coarsest wheel level that spans it, else the overflow.
    fn place(&mut self, index: u32) {
        let (time, seq) = {
            let e = &self.slab[index as usize];
            (e.time, e.seq)
        };
        let tick = Self::tick_of(time);
        if tick < self.cursor {
            // Its tick was already drained: merge into the ready batch at
            // the proper position. Everything in `ready` is `(time, seq)`
            // sorted, so a binary search finds the insertion point.
            let pos = self.ready.partition_point(|&i| {
                let e = &self.slab[i as usize];
                (e.time, e.seq) < (time, seq)
            });
            self.ready.insert(pos, index);
            return;
        }
        let delta = tick - self.cursor;
        for level in 0..LEVELS {
            let shift = SLOT_BITS * (level as u32 + 1);
            if shift < 64 && delta >= (1u64 << shift) {
                continue;
            }
            let slot_shift = SLOT_BITS * level as u32;
            let slot = ((tick >> slot_shift) & (SLOTS as u64 - 1)) as usize;
            self.levels[level][slot].push(index);
            self.in_levels += 1;
            return;
        }
        self.overflow.push(index);
    }
}

impl<E> std::fmt::Debug for TimerWheel<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("live", &self.live)
            .field("in_levels", &self.in_levels)
            .field("ready", &self.ready.len())
            .field("overflow", &self.overflow.len())
            .field("cursor_tick", &self.cursor)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: f64) -> SimTime {
        SimTime::from_ms(v)
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        w.schedule(ms(3.0), 2, "c");
        w.schedule(ms(1.0), 0, "a");
        w.schedule(ms(2.0), 1, "b");
        // Two entries share one tick (0.524 ms): seq breaks the tie after
        // the sub-tick time comparison.
        w.schedule(ms(1.0), 5, "a2");
        let order: Vec<_> = std::iter::from_fn(|| w.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec!["a", "a2", "b", "c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_tick_different_times_sort_by_time() {
        let mut w = TimerWheel::new();
        // 0.2 ms and 0.4 ms share tick 0; insertion order reversed.
        w.schedule(SimTime::from_ns(400_000), 0, "late");
        w.schedule(SimTime::from_ns(200_000), 1, "early");
        assert_eq!(w.pop().unwrap().2, "early");
        assert_eq!(w.pop().unwrap().2, "late");
    }

    #[test]
    fn cancel_prevents_fire_and_is_o1_observable() {
        let mut w = TimerWheel::new();
        let h = w.schedule(ms(5.0), 0, "x");
        w.schedule(ms(6.0), 1, "y");
        assert_eq!(w.len(), 2);
        assert!(w.cancel(h));
        assert_eq!(w.len(), 1);
        assert!(!w.cancel(h), "double cancel is a stale no-op");
        assert_eq!(w.pop().unwrap().2, "y");
        assert!(w.pop().is_none());
    }

    #[test]
    fn stale_handle_cannot_cancel_reused_slot() {
        let mut w = TimerWheel::new();
        let h1 = w.schedule(ms(1.0), 0, "first");
        assert_eq!(w.pop().unwrap().2, "first");
        // The slab slot is reused for a fresh timer; the old handle's
        // generation no longer matches.
        let h2 = w.schedule(ms(2.0), 1, "second");
        assert!(!w.cancel(h1), "stale handle must not cancel the new timer");
        assert_eq!(w.len(), 1);
        assert!(w.cancel(h2));
        assert!(w.pop().is_none());
    }

    #[test]
    fn far_future_entries_cascade_down() {
        let mut w = TimerWheel::new();
        // Spread across all levels: ~0.5 ms/tick means these cover level
        // 0 (few ticks) through level 3 (millions of ticks).
        let times = [0.7, 40.0, 2_000.0, 150_000.0, 6_000_000.0];
        for (i, &t) in times.iter().enumerate() {
            w.schedule(ms(t), i as u64, i);
        }
        let popped: Vec<_> = std::iter::from_fn(|| w.pop()).collect();
        assert_eq!(popped.len(), times.len());
        for (i, (time, _, e)) in popped.into_iter().enumerate() {
            assert_eq!(e, i);
            assert_eq!(time, ms(times[i]));
        }
    }

    #[test]
    fn overflow_beyond_levels_is_reanchored() {
        let mut w = TimerWheel::new();
        // > 64^4 ticks ≈ 2.4 h: parks in the overflow list.
        let far = ms(10_000_000.0);
        let h = w.schedule(far, 1, "far");
        w.schedule(ms(1.0), 0, "near");
        assert_eq!(w.pop().unwrap().2, "near");
        assert_eq!(w.peek_key(), Some((far, 1)));
        assert_eq!(w.pop().unwrap().2, "far");
        assert!(!w.cancel(h), "already popped");
    }

    #[test]
    fn cancelled_overflow_entries_are_reclaimed() {
        let mut w = TimerWheel::new();
        let h = w.schedule(ms(10_000_000.0), 0, "far");
        w.schedule(ms(20_000_000.0), 1, "farther");
        assert!(w.cancel(h));
        assert_eq!(w.pop().unwrap().2, "farther");
        assert!(w.pop().is_none());
    }

    #[test]
    fn schedule_into_drained_tick_merges_in_order() {
        let mut w = TimerWheel::new();
        w.schedule(ms(10.0), 0, "a");
        assert_eq!(w.pop().unwrap().2, "a");
        // Cursor has advanced past the 10 ms tick; a new entry in that
        // same tick (as happens when a handler at t schedules with zero
        // delay) must still come out, ordered by (time, seq).
        w.schedule(ms(10.0), 2, "c");
        w.schedule(ms(10.0), 1, "b");
        w.schedule(ms(11.0), 3, "d");
        let order: Vec<_> = std::iter::from_fn(|| w.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec!["b", "c", "d"]);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_global_order() {
        let mut w = TimerWheel::new();
        let mut seq = 0u64;
        let mut sched = |w: &mut TimerWheel<u64>, t: f64| {
            let s = seq;
            seq += 1;
            w.schedule(ms(t), s, s);
        };
        sched(&mut w, 50.0);
        sched(&mut w, 10.0);
        assert_eq!(w.pop().unwrap().2, 1);
        sched(&mut w, 30.0);
        sched(&mut w, 20.0);
        assert_eq!(w.pop().unwrap().2, 3);
        assert_eq!(w.pop().unwrap().2, 2);
        assert_eq!(w.pop().unwrap().2, 0);
        assert!(w.is_empty());
    }

    #[test]
    fn debug_is_informative() {
        let mut w: TimerWheel<()> = TimerWheel::new();
        w.schedule(ms(1.0), 0, ());
        let text = format!("{w:?}");
        assert!(text.contains("TimerWheel"));
        assert!(text.contains("live"));
    }
}
