//! The deterministic event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap: earliest time first, then FIFO on ties.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled, making simulations fully deterministic.
///
/// # Example
///
/// ```
/// use smrp_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ms(2.0), "late");
/// q.schedule(SimTime::from_ms(1.0), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Schedules `event` at `time` under a caller-supplied sequence
    /// number. This lets an engine share one global ordering sequence
    /// between this heap and other event structures (the timer wheel):
    /// popping whichever structure holds the smaller `(time, seq)` key
    /// reproduces the order of a single merged heap.
    ///
    /// Do not mix with [`EventQueue::schedule`] on the same queue — the
    /// internal counter knows nothing about caller-supplied values.
    pub fn schedule_keyed(&mut self, time: SimTime, seq: u64, event: E) {
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// `(time, seq)` key of the earliest pending event.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|e| (e.time, e.seq))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("scheduled_total", &self.seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(3.0), 3);
        q.schedule(SimTime::from_ms(1.0), 1);
        q.schedule(SimTime::from_ms(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(5.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(1.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(1.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ms(10.0), "b");
        q.schedule(SimTime::from_ms(5.0), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_ms(7.0), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }
}
