//! Bounded simulation trace.

use smrp_net::NodeId;

use crate::time::SimTime;

/// One traced occurrence in the simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A message left a node toward a neighbor.
    Sent {
        /// Departure time.
        time: SimTime,
        /// Sending node.
        from: NodeId,
        /// Receiving neighbor.
        to: NodeId,
        /// Short description of the message.
        what: String,
    },
    /// A message arrived and was processed.
    Delivered {
        /// Arrival time.
        time: SimTime,
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Short description of the message.
        what: String,
    },
    /// A message was dropped.
    Dropped {
        /// Time of the drop.
        time: SimTime,
        /// Sending node.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Why the message was dropped.
        reason: DropReason,
    },
    /// A node-local timer fired.
    TimerFired {
        /// Firing time.
        time: SimTime,
        /// Owning node.
        node: NodeId,
        /// Short description of the timer.
        what: String,
    },
}

impl TraceEvent {
    /// The virtual time of the event.
    pub fn time(&self) -> SimTime {
        match self {
            TraceEvent::Sent { time, .. }
            | TraceEvent::Delivered { time, .. }
            | TraceEvent::Dropped { time, .. }
            | TraceEvent::TimerFired { time, .. } => *time,
        }
    }
}

/// Why a message never reached its receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The link between sender and receiver has failed.
    LinkDown,
    /// The receiving node has failed.
    NodeDown,
    /// The sending node has failed (a dead router emits nothing).
    SenderDown,
    /// Sender and receiver are not adjacent in the topology.
    NotAdjacent,
    /// The degraded channel lost the message (see [`crate::ChannelModel`]).
    ChannelLoss,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DropReason::LinkDown => "link down",
            DropReason::NodeDown => "receiver down",
            DropReason::SenderDown => "sender down",
            DropReason::NotAdjacent => "nodes not adjacent",
            DropReason::ChannelLoss => "lost by channel",
        };
        f.write_str(s)
    }
}

/// A bounded in-memory trace; older entries are discarded once the cap is
/// reached (the count of discarded entries is retained).
#[derive(Debug, Clone)]
pub struct TraceLog {
    entries: Vec<TraceEvent>,
    capacity: usize,
    discarded: u64,
}

impl TraceLog {
    /// Creates a log bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            entries: Vec::new(),
            capacity,
            discarded: 0,
        }
    }

    /// Creates a disabled log that records nothing (and, unlike a full
    /// bounded log, counts nothing as discarded).
    pub fn disabled() -> Self {
        TraceLog::new(0)
    }

    /// Whether this log records at all. The engine skips building trace
    /// events (which involves formatting message payloads) entirely for
    /// disabled logs, so long campaign runs pay no tracing cost.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event.
    pub fn push(&mut self, event: TraceEvent) {
        if self.entries.len() >= self.capacity {
            self.discarded += 1;
            return;
        }
        self.entries.push(event);
    }

    /// Recorded entries, oldest first.
    pub fn entries(&self) -> &[TraceEvent] {
        &self.entries
    }

    /// How many events were discarded after the cap was hit.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ms: f64) -> TraceEvent {
        TraceEvent::TimerFired {
            time: SimTime::from_ms(ms),
            node: NodeId::new(0),
            what: "t".into(),
        }
    }

    #[test]
    fn records_until_capacity() {
        let mut log = TraceLog::new(2);
        log.push(ev(1.0));
        log.push(ev(2.0));
        log.push(ev(3.0));
        assert_eq!(log.len(), 2);
        assert_eq!(log.discarded(), 1);
        assert_eq!(log.entries()[0].time(), SimTime::from_ms(1.0));
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.push(ev(1.0));
        assert!(log.is_empty());
        assert_eq!(log.discarded(), 1);
    }

    #[test]
    fn drop_reason_display() {
        assert_eq!(DropReason::LinkDown.to_string(), "link down");
        assert_eq!(DropReason::NotAdjacent.to_string(), "nodes not adjacent");
    }
}
