//! The simulation engine: nodes, message delivery, timers, failures.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};

use smrp_net::{FailureScenario, Graph, LinkId, NodeId};

use crate::channel::{ChannelModel, ChannelStats};
use crate::event::EventQueue;
use crate::time::SimTime;
use crate::trace::{DropReason, TraceEvent, TraceLog};
use crate::wheel::{TimerHandle, TimerWheel};

/// An engine-issued identity for one armed timer.
///
/// Every [`Ctx::set_timer`] call allocates a fresh token; the token can
/// later be passed to [`Ctx::cancel_timer`] to revoke the timer before it
/// fires. Tokens are never reused within a simulation, so cancelling an
/// already-fired (or already-cancelled) timer is a harmless no-op — the
/// stale token no longer matches anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(u64);

impl TimerToken {
    /// Rebuilds a token from its raw counter value.
    ///
    /// For harnesses that mirror the engine's token bookkeeping outside
    /// the simulator (the daemon's wall-clock timer driver); inside a
    /// simulation, tokens should only ever come from [`Ctx::set_timer`].
    pub fn from_raw(raw: u64) -> Self {
        TimerToken(raw)
    }

    /// The raw counter value behind this token.
    pub fn as_raw(self) -> u64 {
        self.0
    }
}

/// Which structure carries timer events.
///
/// The default [`TimerBackend::Wheel`] parks timers in a hierarchical
/// [`TimerWheel`] with O(1) schedule/cancel. [`TimerBackend::ReferenceHeap`]
/// keeps timers in the main binary-heap event queue (the pre-wheel engine
/// layout) and realizes cancellation by filtering tokens at fire time; it
/// exists so differential tests can assert that both engines produce
/// byte-identical traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimerBackend {
    /// Hierarchical timer wheel (the production path).
    #[default]
    Wheel,
    /// Timers ride the binary-heap event queue; cancellations are
    /// filtered at fire time. Reference semantics for differential tests.
    ReferenceHeap,
}

/// Protocol logic of one node.
///
/// A behavior reacts to message arrivals and timer firings through a
/// [`Ctx`], which lets it send messages to *adjacent* nodes (the simulator
/// enforces hop-by-hop communication) and arm node-local timers.
pub trait NodeBehavior: Sized {
    /// Message type exchanged between nodes.
    type Msg: Clone + std::fmt::Debug;
    /// Timer tag type.
    type Timer: Clone + std::fmt::Debug;

    /// Called when a message from neighbor `from` arrives.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: Self::Msg);

    /// Called when a previously armed timer fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Self::Timer);

    /// Called when the node comes back up after a scheduled repair (see
    /// [`NetSim::schedule_node_repair`]). Timer events that elapsed while
    /// the node was down were silently dropped, so any periodic timer
    /// chain is dead by now — protocols should re-arm their timers here.
    /// The default is a no-op (a rebooted node stays passive).
    fn on_reboot(&mut self, _ctx: &mut Ctx<'_, Self>) {}

    /// Classifies a message for the degraded channel's per-class loss
    /// accounting (see [`ChannelStats::lost_by_class`]). Purely
    /// observational: the channel treats every class identically. The
    /// default lumps everything under `"message"`.
    fn classify(_msg: &Self::Msg) -> &'static str {
        "message"
    }
}

/// One queued output of a behavior handler, captured by a [`Ctx`].
///
/// Normally the engine applies commands internally and protocols never see
/// this type. It is public for *multiplexing* behaviors — e.g. a router
/// process hosting independent per-group protocol lanes — which run an
/// inner behavior's handler against a [`Ctx::derive`]d context, then
/// translate the inner commands (tagging messages and timers with the lane
/// id) back onto their own context. See `smrp-proto`'s multi-session
/// router for the canonical use.
#[derive(Debug, Clone)]
pub enum NodeCommand<M, T> {
    /// Send `msg` to the adjacent node `to`.
    Send {
        /// Receiving neighbor.
        to: NodeId,
        /// The message.
        msg: M,
    },
    /// Arm a node-local timer `delay` from now.
    Timer {
        /// Delay from the current virtual time.
        delay: SimTime,
        /// The timer tag.
        timer: T,
        /// The engine-issued identity of this timer (see [`TimerToken`]).
        /// Multiplexers re-issuing an inner lane's timer must preserve it
        /// via [`Ctx::set_timer_with_token`], so the lane's later
        /// [`Ctx::cancel_timer`] still targets the right entry.
        token: TimerToken,
    },
    /// Revoke a previously armed timer before it fires.
    CancelTimer {
        /// Token returned by the [`Ctx::set_timer`] that armed it.
        token: TimerToken,
    },
}

/// Handler-side view of the simulation.
///
/// Collects the handler's outputs (sends, timers) and exposes read-only
/// simulation state; the engine applies the outputs after the handler
/// returns.
pub struct Ctx<'a, N: NodeBehavior> {
    now: SimTime,
    me: NodeId,
    graph: &'a Graph,
    failures: &'a FailureScenario,
    commands: Vec<NodeCommand<N::Msg, N::Timer>>,
    next_token: &'a Cell<u64>,
}

impl<'a, N: NodeBehavior> Ctx<'a, N> {
    /// Builds a context outside the simulator, for hosts that drive a
    /// [`NodeBehavior`] themselves — the `smrpd` daemon runs each router's
    /// handlers against a standalone context and interprets the resulting
    /// [`NodeCommand`]s over a real transport and a real timer driver.
    ///
    /// `failures` is the host's *local view* of the failure state (it backs
    /// [`Ctx::link_up`]), and `next_token` is the host's node-wide timer
    /// token counter: it must be the same cell across every context built
    /// for one node so [`TimerToken`]s stay unique for the node's lifetime,
    /// exactly as the engine guarantees within a simulation.
    pub fn standalone(
        now: SimTime,
        me: NodeId,
        graph: &'a Graph,
        failures: &'a FailureScenario,
        next_token: &'a Cell<u64>,
    ) -> Self {
        Ctx {
            now,
            me,
            graph,
            failures,
            commands: Vec::new(),
            next_token,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this handler runs on.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The topology.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// Whether the link from this node to `neighbor` is currently usable
    /// (adjacent and not failed). Protocols must *not* use this as an
    /// oracle — failure detection is the protocol's job — but it is handy
    /// for modelling layer-2 loss-of-light notifications.
    pub fn link_up(&self, neighbor: NodeId) -> bool {
        self.graph
            .link_between(self.me, neighbor)
            .is_some_and(|l| self.failures.link_usable(self.graph, l))
    }

    /// Queues a message to an adjacent node. Delivery happens after the
    /// link's propagation delay (plus the engine's per-hop processing
    /// delay); messages over failed links are silently lost, as on a real
    /// cut cable.
    pub fn send(&mut self, to: NodeId, msg: N::Msg) {
        self.commands.push(NodeCommand::Send { to, msg });
    }

    /// Arms a timer on this node `delay` from now. The returned token can
    /// be passed to [`Ctx::cancel_timer`] (possibly from a later handler
    /// invocation) to revoke the timer before it fires.
    pub fn set_timer(&mut self, delay: SimTime, timer: N::Timer) -> TimerToken {
        let token = TimerToken(self.next_token.get());
        self.next_token.set(token.0 + 1);
        self.commands.push(NodeCommand::Timer {
            delay,
            timer,
            token,
        });
        token
    }

    /// Arms a timer under a caller-supplied token instead of allocating a
    /// fresh one. This is for multiplexing behaviors translating an inner
    /// lane's [`NodeCommand::Timer`] onto the outer context: re-issuing
    /// under the *original* token keeps the lane's handle valid, so its
    /// later cancellation still reaches the engine entry.
    pub fn set_timer_with_token(&mut self, delay: SimTime, timer: N::Timer, token: TimerToken) {
        self.commands.push(NodeCommand::Timer {
            delay,
            timer,
            token,
        });
    }

    /// Revokes a previously armed timer. Cancelling a timer that already
    /// fired (or was already cancelled) is a no-op: tokens are unique for
    /// the lifetime of the simulation, so a stale token matches nothing.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.commands.push(NodeCommand::CancelTimer { token });
    }

    /// Derives a context for an *inner* behavior `N2` sharing this node's
    /// view of the simulation (same time, node, topology and failure
    /// state) but collecting its own commands.
    ///
    /// This is the hook for multiplexing behaviors: run the inner
    /// behavior's handler against the derived context, then drain its
    /// commands with [`Ctx::into_commands`] and re-issue them through the
    /// outer context, tagging messages and timers with the lane they
    /// belong to.
    pub fn derive<N2: NodeBehavior>(&self) -> Ctx<'a, N2> {
        Ctx {
            now: self.now,
            me: self.me,
            graph: self.graph,
            failures: self.failures,
            commands: Vec::new(),
            // The token counter is shared: tokens allocated by inner
            // lanes stay globally unique, so re-issuing them on the outer
            // context cannot collide.
            next_token: self.next_token,
        }
    }

    /// Consumes the context, yielding the commands its handler queued, in
    /// issue order. Only useful on [`Ctx::derive`]d contexts — contexts
    /// handed out by the engine are applied by the engine itself.
    pub fn into_commands(self) -> Vec<NodeCommand<N::Msg, N::Timer>> {
        self.commands
    }
}

/// Messages dropped so far, broken down by cause.
///
/// `total()` preserves the old single-counter view; the per-reason fields
/// let campaigns distinguish "the topology was cut" from "the channel ate
/// it".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropCounts {
    /// Dropped because the carrying link had failed.
    pub link_down: u64,
    /// Dropped because the receiving node had failed.
    pub node_down: u64,
    /// Dropped because the sending node had failed.
    pub sender_down: u64,
    /// Dropped because sender and receiver are not adjacent.
    pub not_adjacent: u64,
    /// Dropped by the degraded channel.
    pub channel_loss: u64,
}

impl DropCounts {
    fn record(&mut self, reason: DropReason) {
        match reason {
            DropReason::LinkDown => self.link_down += 1,
            DropReason::NodeDown => self.node_down += 1,
            DropReason::SenderDown => self.sender_down += 1,
            DropReason::NotAdjacent => self.not_adjacent += 1,
            DropReason::ChannelLoss => self.channel_loss += 1,
        }
    }

    /// Total drops across all causes.
    pub fn total(&self) -> u64 {
        self.link_down + self.node_down + self.sender_down + self.not_adjacent + self.channel_loss
    }
}

enum SimEvent<M, T> {
    Deliver {
        from: NodeId,
        to: NodeId,
        link: LinkId,
        msg: M,
    },
    /// Only present in [`TimerBackend::ReferenceHeap`] mode; the wheel
    /// backend carries timers outside the heap.
    Timer {
        node: NodeId,
        timer: T,
        token: TimerToken,
    },
    FailLink(LinkId),
    FailNode(NodeId),
    RepairLink(LinkId),
    RepairNode(NodeId),
}

/// The network simulator: a [`Graph`], one [`NodeBehavior`] per node, an
/// event queue and a failure mask.
///
/// # Example
///
/// ```
/// use smrp_net::{Graph, NodeId};
/// use smrp_sim::{Ctx, NetSim, NodeBehavior, SimTime};
///
/// struct Echo { got: Option<String> }
/// impl NodeBehavior for Echo {
///     type Msg = String;
///     type Timer = ();
///     fn on_message(&mut self, _ctx: &mut Ctx<'_, Self>, _from: NodeId, msg: String) {
///         self.got = Some(msg);
///     }
///     fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self>, _t: ()) {}
/// }
///
/// # fn main() -> Result<(), smrp_net::NetError> {
/// let mut g = Graph::with_nodes(2);
/// let ids: Vec<_> = g.node_ids().collect();
/// g.add_link(ids[0], ids[1], 5.0)?;
/// let nodes = (0..2).map(|_| Echo { got: None }).collect();
/// let mut sim = NetSim::new(&g, nodes);
/// sim.with_node(ids[0], |_n, ctx| ctx.send(ids[1], "hello".to_string()));
/// sim.run_to_completion(100);
/// assert_eq!(sim.node(ids[1]).got.as_deref(), Some("hello"));
/// assert_eq!(sim.now(), SimTime::from_ms(5.0));
/// # Ok(())
/// # }
/// ```
pub struct NetSim<'g, N: NodeBehavior> {
    graph: &'g Graph,
    nodes: Vec<N>,
    queue: EventQueue<SimEvent<N::Msg, N::Timer>>,
    /// Timer events (wheel backend). Shares the global `seq` with
    /// `queue`, so the merged pop order is identical to one heap keyed by
    /// `(time, seq)`.
    wheel: TimerWheel<(NodeId, N::Timer, TimerToken)>,
    backend: TimerBackend,
    /// Global scheduling sequence shared by the heap and the wheel.
    seq: u64,
    /// Timer-token allocator, shared with every [`Ctx`] handed out.
    next_token: Cell<u64>,
    /// Wheel backend: token → wheel handle, for cancellation. Entries are
    /// removed when the timer fires or is cancelled.
    timer_handles: HashMap<u64, TimerHandle>,
    /// Reference backend: tokens cancelled before firing; the heap entry
    /// is filtered when it surfaces.
    cancelled_tokens: HashSet<u64>,
    now: SimTime,
    failures: FailureScenario,
    processing_delay: SimTime,
    trace: TraceLog,
    channel: Option<ChannelModel>,
    delivered: u64,
    dropped: DropCounts,
}

impl<'g, N: NodeBehavior> NetSim<'g, N> {
    /// Creates a simulator with one behavior per graph node (in node-id
    /// order) and a 4096-entry trace.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` differs from the graph's node count.
    pub fn new(graph: &'g Graph, nodes: Vec<N>) -> Self {
        assert_eq!(
            nodes.len(),
            graph.node_count(),
            "one behavior per graph node is required"
        );
        NetSim {
            graph,
            nodes,
            queue: EventQueue::new(),
            wheel: TimerWheel::new(),
            backend: TimerBackend::default(),
            seq: 0,
            next_token: Cell::new(0),
            timer_handles: HashMap::new(),
            cancelled_tokens: HashSet::new(),
            now: SimTime::ZERO,
            failures: FailureScenario::none(),
            processing_delay: SimTime::ZERO,
            trace: TraceLog::new(4096),
            channel: None,
            delivered: 0,
            dropped: DropCounts::default(),
        }
    }

    /// Sets the per-hop processing delay added on top of link propagation.
    pub fn set_processing_delay(&mut self, delay: SimTime) {
        self.processing_delay = delay;
    }

    /// Selects the timer backend. Must be called before any timers are
    /// armed; switching mid-run would strand pending timers in the other
    /// structure.
    ///
    /// # Panics
    ///
    /// Panics if timers are already pending.
    pub fn set_timer_backend(&mut self, backend: TimerBackend) {
        assert!(
            self.timer_handles.is_empty() && self.wheel.is_empty() && self.next_token.get() == 0,
            "timer backend must be chosen before timers are armed"
        );
        self.backend = backend;
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Replaces the trace log (e.g. [`TraceLog::disabled`] for long runs).
    pub fn set_trace(&mut self, trace: TraceLog) {
        self.trace = trace;
    }

    /// Installs a degraded channel; subsequent sends pass through it.
    /// `None` restores the default perfect channel.
    pub fn set_channel(&mut self, channel: Option<ChannelModel>) {
        self.channel = channel;
    }

    /// Channel statistics, if a degraded channel is installed.
    pub fn channel_stats(&self) -> Option<&ChannelStats> {
        self.channel.as_ref().map(ChannelModel::stats)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Read access to a node's behavior state.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Consumes the simulator, yielding every node's final behavior state
    /// in node-id order. This is the capture hook for conformance digests:
    /// a finished run's protocol state can be snapshotted and compared
    /// against the same scenario replayed on a real transport.
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }

    /// The current failure scenario.
    pub fn failures(&self) -> &FailureScenario {
        &self.failures
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped so far (all causes).
    pub fn dropped_count(&self) -> u64 {
        self.dropped.total()
    }

    /// Drop counters broken down by cause.
    pub fn drops(&self) -> &DropCounts {
        &self.dropped
    }

    /// Fails a link immediately.
    pub fn fail_link_now(&mut self, link: LinkId) {
        self.failures.fail_link(link);
    }

    /// Fails a node immediately.
    pub fn fail_node_now(&mut self, node: NodeId) {
        self.failures.fail_node(node);
    }

    /// Schedules a link failure at absolute time `at`.
    pub fn schedule_link_failure(&mut self, at: SimTime, link: LinkId) {
        let seq = self.next_seq();
        self.queue.schedule_keyed(at, seq, SimEvent::FailLink(link));
    }

    /// Schedules a node failure at absolute time `at`.
    pub fn schedule_node_failure(&mut self, at: SimTime, node: NodeId) {
        let seq = self.next_seq();
        self.queue.schedule_keyed(at, seq, SimEvent::FailNode(node));
    }

    /// Schedules a link repair at absolute time `at` — models *transient*
    /// failures (flapping interfaces, maintenance windows) as opposed to
    /// the paper's persistent cuts. Messages sent while the link was down
    /// stay lost; traffic sent after the repair flows normally.
    pub fn schedule_link_repair(&mut self, at: SimTime, link: LinkId) {
        let seq = self.next_seq();
        self.queue
            .schedule_keyed(at, seq, SimEvent::RepairLink(link));
    }

    /// Schedules a node repair at absolute time `at`. The node resumes
    /// forwarding on the next message it receives; timers that elapsed
    /// while it was down are gone (a rebooted router restarts cold).
    pub fn schedule_node_repair(&mut self, at: SimTime, node: NodeId) {
        let seq = self.next_seq();
        self.queue
            .schedule_keyed(at, seq, SimEvent::RepairNode(node));
    }

    /// Runs `f` against a node with a live [`Ctx`], applying any sends and
    /// timers it issues. This is how simulations are bootstrapped (initial
    /// joins, first timers).
    pub fn with_node<F: FnOnce(&mut N, &mut Ctx<'_, N>)>(&mut self, id: NodeId, f: F) {
        let mut ctx = Ctx {
            now: self.now,
            me: id,
            graph: self.graph,
            failures: &self.failures,
            commands: Vec::new(),
            next_token: &self.next_token,
        };
        f(&mut self.nodes[id.index()], &mut ctx);
        let commands = ctx.commands;
        self.apply(id, commands);
    }

    /// The single drop site: counts the drop under its cause and traces it.
    fn drop_msg(&mut self, time: SimTime, from: NodeId, to: NodeId, reason: DropReason) {
        self.dropped.record(reason);
        self.trace.push(TraceEvent::Dropped {
            time,
            from,
            to,
            reason,
        });
    }

    fn apply(&mut self, from: NodeId, commands: Vec<NodeCommand<N::Msg, N::Timer>>) {
        for c in commands {
            match c {
                NodeCommand::Send { to, msg } => {
                    if !self.failures.node_usable(from) {
                        self.drop_msg(self.now, from, to, DropReason::SenderDown);
                        continue;
                    }
                    let Some(link) = self.graph.link_between(from, to) else {
                        self.drop_msg(self.now, from, to, DropReason::NotAdjacent);
                        continue;
                    };
                    if self.trace.is_enabled() {
                        self.trace.push(TraceEvent::Sent {
                            time: self.now,
                            from,
                            to,
                            what: format!("{msg:?}"),
                        });
                    }
                    // The degraded channel may lose the message, duplicate
                    // it, or stretch its delay; a perfect channel delivers
                    // exactly one copy with no extra delay.
                    let extra_delays_ms = match &mut self.channel {
                        Some(ch) => ch.transmit(link, N::classify(&msg)).extra_delays_ms,
                        None => vec![0.0],
                    };
                    if extra_delays_ms.is_empty() {
                        self.drop_msg(self.now, from, to, DropReason::ChannelLoss);
                        continue;
                    }
                    let base =
                        SimTime::from_ms(self.graph.link(link).delay()) + self.processing_delay;
                    for extra in extra_delays_ms {
                        let seq = self.next_seq();
                        self.queue.schedule_keyed(
                            self.now + base + SimTime::from_ms(extra),
                            seq,
                            SimEvent::Deliver {
                                from,
                                to,
                                link,
                                msg: msg.clone(),
                            },
                        );
                    }
                }
                NodeCommand::Timer {
                    delay,
                    timer,
                    token,
                } => {
                    let at = self.now + delay;
                    let seq = self.next_seq();
                    match self.backend {
                        TimerBackend::Wheel => {
                            let handle = self.wheel.schedule(at, seq, (from, timer, token));
                            self.timer_handles.insert(token.0, handle);
                        }
                        TimerBackend::ReferenceHeap => {
                            self.queue.schedule_keyed(
                                at,
                                seq,
                                SimEvent::Timer {
                                    node: from,
                                    timer,
                                    token,
                                },
                            );
                        }
                    }
                }
                NodeCommand::CancelTimer { token } => match self.backend {
                    TimerBackend::Wheel => {
                        if let Some(handle) = self.timer_handles.remove(&token.0) {
                            self.wheel.cancel(handle);
                        }
                    }
                    TimerBackend::ReferenceHeap => {
                        self.cancelled_tokens.insert(token.0);
                    }
                },
            }
        }
    }

    /// `(time, seq)` of the earliest pending event across the heap and
    /// the timer wheel.
    fn peek_next_key(&mut self) -> Option<(SimTime, u64)> {
        match (self.queue.peek_key(), self.wheel.peek_key()) {
            (None, None) => None,
            (Some(h), None) => Some(h),
            (None, Some(w)) => Some(w),
            (Some(h), Some(w)) => Some(h.min(w)),
        }
    }

    /// Fires a timer on `node`, unless the node is down (dead nodes do
    /// not tick).
    fn fire_timer(&mut self, time: SimTime, node: NodeId, timer: N::Timer) {
        if !self.failures.node_usable(node) {
            return;
        }
        if self.trace.is_enabled() {
            self.trace.push(TraceEvent::TimerFired {
                time,
                node,
                what: format!("{timer:?}"),
            });
        }
        self.with_node(node, |n, ctx| n.on_timer(ctx, timer));
    }

    /// Processes one event. Returns `false` when the queue is empty.
    ///
    /// The heap (deliveries, failures, repairs) and the wheel (timers)
    /// share one sequence counter, so popping whichever holds the smaller
    /// `(time, seq)` key reproduces the order of a single merged queue.
    pub fn step(&mut self) -> bool {
        let take_wheel = match (self.queue.peek_key(), self.wheel.peek_key()) {
            (None, None) => return false,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(h), Some(w)) => w < h,
        };
        if take_wheel {
            let (time, _seq, (node, timer, token)) =
                self.wheel.pop().expect("peeked wheel entry exists");
            self.now = time;
            self.timer_handles.remove(&token.0);
            self.fire_timer(time, node, timer);
            return true;
        }
        let (time, event) = self.queue.pop().expect("peeked heap entry exists");
        self.now = time;
        match event {
            SimEvent::Deliver {
                from,
                to,
                link,
                msg,
            } => {
                if !self.failures.link_usable(self.graph, link) {
                    self.drop_msg(time, from, to, DropReason::LinkDown);
                    return true;
                }
                if !self.failures.node_usable(to) {
                    self.drop_msg(time, from, to, DropReason::NodeDown);
                    return true;
                }
                self.delivered += 1;
                if self.trace.is_enabled() {
                    self.trace.push(TraceEvent::Delivered {
                        time,
                        from,
                        to,
                        what: format!("{msg:?}"),
                    });
                }
                self.with_node(to, |n, ctx| n.on_message(ctx, from, msg));
            }
            SimEvent::Timer { node, timer, token } => {
                if self.cancelled_tokens.remove(&token.0) {
                    return true; // cancelled before firing (reference mode).
                }
                self.fire_timer(time, node, timer);
            }
            SimEvent::FailLink(link) => {
                self.failures.fail_link(link);
            }
            SimEvent::FailNode(node) => {
                self.failures.fail_node(node);
            }
            SimEvent::RepairLink(link) => {
                self.failures.repair_link(link);
            }
            SimEvent::RepairNode(node) => {
                self.failures.repair_node(node);
                self.with_node(node, |n, ctx| n.on_reboot(ctx));
            }
        }
        true
    }

    /// Processes all events up to and including `limit`, then sets the
    /// clock to `limit`.
    pub fn run_until(&mut self, limit: SimTime) {
        while let Some((t, _)) = self.peek_next_key() {
            if t > limit {
                break;
            }
            self.step();
        }
        self.now = self.now.max(limit);
    }

    /// Runs until the queue drains or `max_events` were processed; returns
    /// the number processed.
    pub fn run_to_completion(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }
}

impl<'g, N: NodeBehavior> std::fmt::Debug for NetSim<'g, N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetSim")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending_events", &(self.queue.len() + self.wheel.len()))
            .field("delivered", &self.delivered)
            .field("dropped", &self.dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts received pings and echoes them back once.
    #[derive(Default)]
    struct PingPong {
        received: u32,
        echoed: bool,
    }

    #[derive(Debug, Clone)]
    enum Msg {
        Ping,
        Pong,
    }

    impl NodeBehavior for PingPong {
        type Msg = Msg;
        type Timer = u8;
        fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: Msg) {
            self.received += 1;
            if matches!(msg, Msg::Ping) && !self.echoed {
                self.echoed = true;
                ctx.send(from, Msg::Pong);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: u8) {
            if timer == 1 {
                // Re-arm once to exercise chained timers.
                ctx.set_timer(SimTime::from_ms(1.0), 2);
            }
            self.received += 100;
        }
    }

    fn line_graph() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::with_nodes(3);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 2.0).unwrap();
        g.add_link(ids[1], ids[2], 3.0).unwrap();
        (g, ids)
    }

    fn fresh(g: &Graph) -> Vec<PingPong> {
        (0..g.node_count()).map(|_| PingPong::default()).collect()
    }

    #[test]
    fn ping_pong_round_trip() {
        let (g, ids) = line_graph();
        let mut sim = NetSim::new(&g, fresh(&g));
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.run_to_completion(10);
        assert_eq!(sim.node(ids[1]).received, 1);
        assert_eq!(sim.node(ids[0]).received, 1); // the pong.
        assert_eq!(sim.now(), SimTime::from_ms(4.0));
        assert_eq!(sim.delivered_count(), 2);
    }

    #[test]
    fn processing_delay_adds_per_hop() {
        let (g, ids) = line_graph();
        let mut sim = NetSim::new(&g, fresh(&g));
        sim.set_processing_delay(SimTime::from_ms(0.5));
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.run_to_completion(10);
        assert_eq!(sim.now(), SimTime::from_ms(5.0)); // 2×(2.0 + 0.5).
    }

    #[test]
    fn non_adjacent_send_is_dropped() {
        let (g, ids) = line_graph();
        let mut sim = NetSim::new(&g, fresh(&g));
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[2], Msg::Ping));
        sim.run_to_completion(10);
        assert_eq!(sim.node(ids[2]).received, 0);
        assert_eq!(sim.dropped_count(), 1);
        assert!(matches!(
            sim.trace().entries().last(),
            Some(TraceEvent::Dropped {
                reason: DropReason::NotAdjacent,
                ..
            })
        ));
    }

    #[test]
    fn failed_link_loses_in_flight_messages() {
        let (g, ids) = line_graph();
        let link = g.link_between(ids[0], ids[1]).unwrap();
        let mut sim = NetSim::new(&g, fresh(&g));
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        // Cut the cable while the packet is in flight.
        sim.schedule_link_failure(SimTime::from_ms(1.0), link);
        sim.run_to_completion(10);
        assert_eq!(sim.node(ids[1]).received, 0);
        assert_eq!(sim.dropped_count(), 1);
    }

    #[test]
    fn failed_node_neither_receives_nor_ticks() {
        let (g, ids) = line_graph();
        let mut sim = NetSim::new(&g, fresh(&g));
        sim.with_node(ids[1], |_, ctx| {
            ctx.set_timer(SimTime::from_ms(5.0), 9);
        });
        sim.fail_node_now(ids[1]);
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.run_to_completion(10);
        assert_eq!(sim.node(ids[1]).received, 0);
    }

    #[test]
    fn failed_sender_emits_nothing() {
        let (g, ids) = line_graph();
        let mut sim = NetSim::new(&g, fresh(&g));
        sim.fail_node_now(ids[0]);
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.run_to_completion(10);
        assert_eq!(sim.node(ids[1]).received, 0);
        assert!(matches!(
            sim.trace().entries().last(),
            Some(TraceEvent::Dropped {
                reason: DropReason::SenderDown,
                ..
            })
        ));
    }

    #[test]
    fn timers_fire_and_chain() {
        let (g, ids) = line_graph();
        let mut sim = NetSim::new(&g, fresh(&g));
        sim.with_node(ids[2], |_, ctx| {
            ctx.set_timer(SimTime::from_ms(1.0), 1);
        });
        sim.run_to_completion(10);
        // Timer 1 fires (+100) and chains timer 2 (+100).
        assert_eq!(sim.node(ids[2]).received, 200);
        assert_eq!(sim.now(), SimTime::from_ms(2.0));
    }

    #[test]
    fn run_until_stops_at_the_limit() {
        let (g, ids) = line_graph();
        let mut sim = NetSim::new(&g, fresh(&g));
        sim.with_node(ids[0], |_, ctx| {
            ctx.set_timer(SimTime::from_ms(1.0), 3);
            ctx.set_timer(SimTime::from_ms(10.0), 3);
        });
        sim.run_until(SimTime::from_ms(5.0));
        assert_eq!(sim.node(ids[0]).received, 100);
        assert_eq!(sim.now(), SimTime::from_ms(5.0));
        sim.run_until(SimTime::from_ms(20.0));
        assert_eq!(sim.node(ids[0]).received, 200);
    }

    #[test]
    fn ctx_link_up_reflects_failures() {
        let (g, ids) = line_graph();
        let link = g.link_between(ids[0], ids[1]).unwrap();
        let mut sim = NetSim::new(&g, fresh(&g));
        let mut up_before = false;
        let mut up_unrelated = false;
        sim.with_node(ids[0], |_, ctx| {
            up_before = ctx.link_up(ids[1]);
            // Non-adjacent nodes are never "up".
            up_unrelated = ctx.link_up(ids[2]);
        });
        assert!(up_before);
        assert!(!up_unrelated);
        sim.fail_link_now(link);
        let mut up_after = true;
        sim.with_node(ids[0], |_, ctx| up_after = ctx.link_up(ids[1]));
        assert!(!up_after);
    }

    #[test]
    fn counters_and_debug_output() {
        let (g, ids) = line_graph();
        let mut sim = NetSim::new(&g, fresh(&g));
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.run_to_completion(10);
        let text = format!("{sim:?}");
        assert!(text.contains("NetSim"));
        assert!(text.contains("delivered"));
        assert_eq!(sim.delivered_count(), 2); // ping + pong.
        assert_eq!(sim.dropped_count(), 0);
        assert!(sim.trace().len() >= 4); // 2 sends + 2 deliveries.
    }

    #[test]
    fn scheduled_node_failure_takes_effect_at_time() {
        let (g, ids) = line_graph();
        let mut sim = NetSim::new(&g, fresh(&g));
        sim.schedule_node_failure(SimTime::from_ms(3.0), ids[1]);
        // A ping sent at t=0 arrives at t=2, before the failure.
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.run_until(SimTime::from_ms(10.0));
        assert_eq!(sim.node(ids[1]).received, 1);
        // After the scheduled failure, nothing more is delivered.
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.run_until(SimTime::from_ms(20.0));
        assert_eq!(sim.node(ids[1]).received, 1);
        assert!(sim.failures().failed_nodes().any(|n| n == ids[1]));
    }

    #[test]
    #[should_panic(expected = "one behavior per graph node")]
    fn node_count_mismatch_panics() {
        let (g, _) = line_graph();
        let _ = NetSim::new(&g, vec![PingPong::default()]);
    }

    #[test]
    fn cancelled_timer_never_fires_on_either_backend() {
        for backend in [TimerBackend::Wheel, TimerBackend::ReferenceHeap] {
            let (g, ids) = line_graph();
            let mut sim = NetSim::new(&g, fresh(&g));
            sim.set_timer_backend(backend);
            let mut token = None;
            sim.with_node(ids[0], |_, ctx| {
                token = Some(ctx.set_timer(SimTime::from_ms(1.0), 3));
                ctx.set_timer(SimTime::from_ms(2.0), 3);
            });
            sim.with_node(ids[0], |_, ctx| ctx.cancel_timer(token.unwrap()));
            sim.run_to_completion(10);
            // Only the uncancelled timer fired.
            assert_eq!(sim.node(ids[0]).received, 100, "{backend:?}");
            assert_eq!(sim.now(), SimTime::from_ms(2.0), "{backend:?}");
        }
    }

    #[test]
    fn cancelling_a_fired_timer_is_a_noop() {
        for backend in [TimerBackend::Wheel, TimerBackend::ReferenceHeap] {
            let (g, ids) = line_graph();
            let mut sim = NetSim::new(&g, fresh(&g));
            sim.set_timer_backend(backend);
            let mut token = None;
            sim.with_node(ids[0], |_, ctx| {
                token = Some(ctx.set_timer(SimTime::from_ms(1.0), 3));
            });
            sim.run_to_completion(10);
            assert_eq!(sim.node(ids[0]).received, 100, "{backend:?}");
            // The timer is gone; cancelling its stale token changes nothing.
            sim.with_node(ids[0], |_, ctx| ctx.cancel_timer(token.unwrap()));
            sim.with_node(ids[0], |_, ctx| {
                ctx.set_timer(SimTime::from_ms(1.0), 3);
            });
            sim.run_to_completion(10);
            assert_eq!(sim.node(ids[0]).received, 200, "{backend:?}");
        }
    }

    #[test]
    fn wheel_and_reference_heap_produce_identical_traces() {
        let run = |backend: TimerBackend| -> Vec<String> {
            let (g, ids) = line_graph();
            let mut sim = NetSim::new(&g, fresh(&g));
            sim.set_timer_backend(backend);
            sim.with_node(ids[0], |_, ctx| {
                ctx.send(ids[1], Msg::Ping);
                // Deliberate same-instant pileup at t=2.0: the delivery
                // and three timers must come out in scheduling order.
                ctx.set_timer(SimTime::from_ms(2.0), 1);
                ctx.set_timer(SimTime::from_ms(2.0), 3);
            });
            sim.with_node(ids[2], |_, ctx| {
                ctx.set_timer(SimTime::from_ms(2.0), 4);
            });
            sim.run_to_completion(100);
            sim.trace()
                .entries()
                .iter()
                .map(|e| format!("{e:?}"))
                .collect()
        };
        let wheel = run(TimerBackend::Wheel);
        let reference = run(TimerBackend::ReferenceHeap);
        assert_eq!(wheel, reference);
    }

    #[test]
    #[should_panic(expected = "before timers are armed")]
    fn backend_switch_after_arming_panics() {
        let (g, ids) = line_graph();
        let mut sim = NetSim::new(&g, fresh(&g));
        sim.with_node(ids[0], |_, ctx| {
            ctx.set_timer(SimTime::from_ms(1.0), 1);
        });
        sim.set_timer_backend(TimerBackend::ReferenceHeap);
    }

    #[test]
    fn transient_link_failure_heals_after_repair() {
        let (g, ids) = line_graph();
        let link = g.link_between(ids[0], ids[1]).unwrap();
        let mut sim = NetSim::new(&g, fresh(&g));
        sim.schedule_link_failure(SimTime::from_ms(1.0), link);
        sim.schedule_link_repair(SimTime::from_ms(5.0), link);
        // Sent at t=0, in flight when the cut happens at t=1: lost.
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.run_until(SimTime::from_ms(4.0));
        assert_eq!(sim.node(ids[1]).received, 0);
        // Sent at t=4, still down on arrival at t=6? No: repair at t=5,
        // arrival at t=6 — delivered.
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.run_until(SimTime::from_ms(10.0));
        assert_eq!(sim.node(ids[1]).received, 1);
        assert!(sim.failures().is_empty());
    }

    #[test]
    fn channel_loss_drops_and_counts_by_cause() {
        use crate::channel::{ChannelModel, ChannelSpec};
        let (g, ids) = line_graph();
        let mut sim = NetSim::new(&g, fresh(&g));
        // A channel that loses everything.
        sim.set_channel(Some(ChannelModel::new(&ChannelSpec::uniform_loss(1.0, 1))));
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.run_to_completion(10);
        assert_eq!(sim.node(ids[1]).received, 0);
        assert_eq!(sim.drops().channel_loss, 1);
        assert_eq!(sim.dropped_count(), 1);
        assert_eq!(sim.channel_stats().unwrap().lost(), 1);
        assert!(matches!(
            sim.trace().entries().last(),
            Some(TraceEvent::Dropped {
                reason: DropReason::ChannelLoss,
                ..
            })
        ));
        // Restore the perfect channel: traffic flows again.
        sim.set_channel(None);
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.run_to_completion(10);
        assert_eq!(sim.node(ids[1]).received, 1);
    }

    #[test]
    fn channel_duplication_delivers_twice() {
        use crate::channel::{ChannelModel, ChannelParams, ChannelSpec};
        let (g, ids) = line_graph();
        let mut sim = NetSim::new(&g, fresh(&g));
        let spec = ChannelSpec {
            default: ChannelParams {
                duplicate: 1.0,
                ..ChannelParams::PERFECT
            },
            overrides: Vec::new(),
            seed: 5,
        };
        sim.set_channel(Some(ChannelModel::new(&spec)));
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.run_to_completion(10);
        assert_eq!(sim.node(ids[1]).received, 2, "duplicate arrives too");
        // The ping and the echoed pong each picked up one duplicate.
        assert_eq!(sim.channel_stats().unwrap().duplicated, 2);
    }

    #[test]
    fn drop_counts_split_by_reason() {
        let (g, ids) = line_graph();
        let link = g.link_between(ids[0], ids[1]).unwrap();
        let mut sim = NetSim::new(&g, fresh(&g));
        // Non-adjacent.
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[2], Msg::Ping));
        // In flight when the link dies.
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.schedule_link_failure(SimTime::from_ms(1.0), link);
        sim.run_to_completion(10);
        let d = *sim.drops();
        assert_eq!(d.not_adjacent, 1);
        assert_eq!(d.link_down, 1);
        assert_eq!(d.channel_loss, 0);
        assert_eq!(d.total(), sim.dropped_count());
    }

    #[test]
    fn repaired_node_resumes_receiving() {
        let (g, ids) = line_graph();
        let mut sim = NetSim::new(&g, fresh(&g));
        sim.schedule_node_failure(SimTime::from_ms(1.0), ids[1]);
        sim.schedule_node_repair(SimTime::from_ms(5.0), ids[1]);
        // Sent at t=0, arrives t=2 while the node is down: dropped.
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.run_until(SimTime::from_ms(4.0));
        assert_eq!(sim.node(ids[1]).received, 0, "dead node receives nothing");
        // Sent at t=4, arrives t=6 after the t=5 reboot: delivered.
        sim.with_node(ids[0], |_, ctx| ctx.send(ids[1], Msg::Ping));
        sim.run_until(SimTime::from_ms(10.0));
        assert_eq!(sim.node(ids[1]).received, 1, "repaired node receives");
    }
}
