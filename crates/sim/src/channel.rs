//! Degraded-channel model: seeded per-link loss, duplication, reordering
//! and latency jitter.
//!
//! The engine's baseline channel is perfect — a message crossing a usable
//! link always arrives, exactly once, after the link's propagation delay.
//! Real control planes are not so lucky, least of all *during* the failure
//! events that restoration protocols exist to survive. A [`ChannelModel`]
//! sits between [`crate::Ctx::send`] and the event queue and, per
//! transmission, may:
//!
//! * **lose** the message (probability `loss`),
//! * **duplicate** it (probability `duplicate`; the copy takes an
//!   independent jitter draw, so duplicates arrive at distinct times),
//! * **delay** it by uniform jitter in `[0, jitter_ms)`,
//! * **reorder** it (probability `reorder`) by an extra uniform hold of up
//!   to `reorder_window_ms` — enough to land it behind later sends.
//!
//! All draws come from one [`SmallRng`] seeded by [`ChannelSpec::seed`],
//! consumed in event order, so a campaign case replays bit-identically for
//! any worker count. Per-link overrides model *gray* links — interfaces
//! that stay "up" while discarding a large fraction of traffic.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use smrp_net::LinkId;

/// Per-link degradation knobs. All probabilities are in `[0, 1]`; the
/// default is a perfect channel (all zeros).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelParams {
    /// Probability that a transmission is silently lost.
    pub loss: f64,
    /// Probability that a delivered transmission is duplicated once.
    pub duplicate: f64,
    /// Probability that a delivered transmission is held back long enough
    /// to arrive behind later traffic.
    pub reorder: f64,
    /// Maximum extra hold applied to reordered messages (milliseconds).
    pub reorder_window_ms: f64,
    /// Maximum uniform latency jitter added to every delivery
    /// (milliseconds).
    pub jitter_ms: f64,
}

impl ChannelParams {
    /// A perfect channel: nothing lost, duplicated, reordered or jittered.
    pub const PERFECT: ChannelParams = ChannelParams {
        loss: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        reorder_window_ms: 0.0,
        jitter_ms: 0.0,
    };

    /// Uniform loss at probability `p`, everything else perfect.
    pub fn lossy(p: f64) -> Self {
        ChannelParams {
            loss: p,
            ..ChannelParams::PERFECT
        }
    }

    /// Whether this is the perfect channel (lets the engine skip RNG draws
    /// entirely on clean links).
    pub fn is_perfect(&self) -> bool {
        *self == ChannelParams::PERFECT
    }

    fn validate(&self) {
        for (name, p) in [
            ("loss", self.loss),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "channel {name} probability out of range: {p}"
            );
        }
        assert!(self.reorder_window_ms >= 0.0 && self.jitter_ms >= 0.0);
    }
}

impl Default for ChannelParams {
    fn default() -> Self {
        ChannelParams::PERFECT
    }
}

/// A single-link override inside a [`ChannelSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDegrade {
    /// The degraded link.
    pub link: LinkId,
    /// Its channel parameters (replacing the spec default entirely).
    pub params: ChannelParams,
}

/// Serializable description of a degraded channel: a default applied to
/// every link, per-link overrides for gray links, and the RNG seed.
///
/// A spec is an *address*, not an artifact — reconstructing a
/// [`ChannelModel`] from the same spec replays the same loss pattern, which
/// is what lets faultlab reproducers capture lossy cases exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Parameters applied to links without an override.
    pub default: ChannelParams,
    /// Gray-link overrides.
    pub overrides: Vec<LinkDegrade>,
    /// Seed for the channel's RNG.
    pub seed: u64,
}

impl ChannelSpec {
    /// A perfect channel (no loss anywhere).
    pub fn perfect() -> Self {
        ChannelSpec {
            default: ChannelParams::PERFECT,
            overrides: Vec::new(),
            seed: 0,
        }
    }

    /// Uniform loss at probability `p` on every link.
    pub fn uniform_loss(p: f64, seed: u64) -> Self {
        ChannelSpec {
            default: ChannelParams::lossy(p),
            overrides: Vec::new(),
            seed,
        }
    }

    /// Whether the spec degrades nothing (perfect default, no overrides).
    pub fn is_perfect(&self) -> bool {
        self.default.is_perfect() && self.overrides.iter().all(|o| o.params.is_perfect())
    }
}

impl Default for ChannelSpec {
    fn default() -> Self {
        ChannelSpec::perfect()
    }
}

/// Counters of everything the channel did to traffic, split by message
/// class (see [`crate::NodeBehavior::classify`]) for losses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages lost, keyed by the sender-declared message class.
    pub lost_by_class: BTreeMap<&'static str, u64>,
    /// Extra copies injected.
    pub duplicated: u64,
    /// Messages held past their natural arrival order.
    pub reordered: u64,
}

impl ChannelStats {
    /// Total messages lost across all classes.
    pub fn lost(&self) -> u64 {
        self.lost_by_class.values().sum()
    }
}

/// The runtime channel: spec + RNG + stats.
#[derive(Debug, Clone)]
pub struct ChannelModel {
    default: ChannelParams,
    overrides: BTreeMap<LinkId, ChannelParams>,
    rng: SmallRng,
    stats: ChannelStats,
}

/// Outcome of pushing one message through the channel: the extra delays
/// (beyond link propagation) of each copy to deliver. Empty means lost;
/// two entries mean a duplicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Transmit {
    /// Extra delay in milliseconds for each delivered copy.
    pub extra_delays_ms: Vec<f64>,
}

impl ChannelModel {
    /// Builds the runtime model from a spec.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]` or any window is
    /// negative.
    pub fn new(spec: &ChannelSpec) -> Self {
        spec.default.validate();
        let mut overrides = BTreeMap::new();
        for o in &spec.overrides {
            o.params.validate();
            overrides.insert(o.link, o.params);
        }
        ChannelModel {
            default: spec.default,
            overrides,
            rng: SmallRng::seed_from_u64(spec.seed),
            stats: ChannelStats::default(),
        }
    }

    /// Parameters in effect on `link`.
    pub fn params_for(&self, link: LinkId) -> ChannelParams {
        self.overrides.get(&link).copied().unwrap_or(self.default)
    }

    /// What happened so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Pushes one `class`-tagged message through `link`, drawing loss,
    /// jitter, reorder and duplication in that fixed order.
    pub fn transmit(&mut self, link: LinkId, class: &'static str) -> Transmit {
        let p = self.params_for(link);
        if p.is_perfect() {
            return Transmit {
                extra_delays_ms: vec![0.0],
            };
        }
        if p.loss > 0.0 && self.rng.gen_bool(p.loss) {
            *self.stats.lost_by_class.entry(class).or_insert(0) += 1;
            return Transmit {
                extra_delays_ms: Vec::new(),
            };
        }
        let mut first = self.draw_jitter(p.jitter_ms);
        if p.reorder > 0.0 && self.rng.gen_bool(p.reorder) {
            first += self.draw_jitter(p.reorder_window_ms);
            self.stats.reordered += 1;
        }
        let mut extra_delays_ms = vec![first];
        if p.duplicate > 0.0 && self.rng.gen_bool(p.duplicate) {
            extra_delays_ms.push(self.draw_jitter(p.jitter_ms.max(p.reorder_window_ms)));
            self.stats.duplicated += 1;
        }
        Transmit { extra_delays_ms }
    }

    fn draw_jitter(&mut self, window_ms: f64) -> f64 {
        if window_ms > 0.0 {
            self.rng.gen_range(0.0..window_ms)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(i: usize) -> LinkId {
        LinkId::new(i)
    }

    #[test]
    fn perfect_channel_passes_everything_untouched() {
        let mut ch = ChannelModel::new(&ChannelSpec::perfect());
        for _ in 0..100 {
            assert_eq!(ch.transmit(link(0), "m").extra_delays_ms, vec![0.0]);
        }
        assert_eq!(ch.stats().lost(), 0);
    }

    #[test]
    fn uniform_loss_drops_roughly_p() {
        let mut ch = ChannelModel::new(&ChannelSpec::uniform_loss(0.2, 7));
        let lost = (0..10_000)
            .filter(|_| ch.transmit(link(0), "m").extra_delays_ms.is_empty())
            .count();
        assert!((1_600..=2_400).contains(&lost), "lost {lost} of 10000");
        assert_eq!(ch.stats().lost(), lost as u64);
        assert_eq!(ch.stats().lost_by_class.get("m"), Some(&(lost as u64)));
    }

    #[test]
    fn same_seed_same_pattern() {
        let spec = ChannelSpec::uniform_loss(0.5, 42);
        let mut a = ChannelModel::new(&spec);
        let mut b = ChannelModel::new(&spec);
        for _ in 0..500 {
            assert_eq!(a.transmit(link(3), "x"), b.transmit(link(3), "x"));
        }
    }

    #[test]
    fn overrides_apply_per_link() {
        let spec = ChannelSpec {
            default: ChannelParams::PERFECT,
            overrides: vec![LinkDegrade {
                link: link(1),
                params: ChannelParams::lossy(1.0),
            }],
            seed: 0,
        };
        let mut ch = ChannelModel::new(&spec);
        assert_eq!(ch.transmit(link(0), "m").extra_delays_ms.len(), 1);
        assert!(ch.transmit(link(1), "m").extra_delays_ms.is_empty());
    }

    #[test]
    fn duplication_and_jitter_produce_extra_copies() {
        let spec = ChannelSpec {
            default: ChannelParams {
                loss: 0.0,
                duplicate: 1.0,
                reorder: 0.0,
                reorder_window_ms: 0.0,
                jitter_ms: 2.0,
            },
            overrides: Vec::new(),
            seed: 9,
        };
        let mut ch = ChannelModel::new(&spec);
        let t = ch.transmit(link(0), "m");
        assert_eq!(t.extra_delays_ms.len(), 2);
        assert!(t.extra_delays_ms.iter().all(|&d| (0.0..2.0).contains(&d)));
        assert_eq!(ch.stats().duplicated, 1);
    }

    #[test]
    fn reorder_holds_within_window() {
        let spec = ChannelSpec {
            default: ChannelParams {
                loss: 0.0,
                duplicate: 0.0,
                reorder: 1.0,
                reorder_window_ms: 10.0,
                jitter_ms: 0.0,
            },
            overrides: Vec::new(),
            seed: 11,
        };
        let mut ch = ChannelModel::new(&spec);
        let t = ch.transmit(link(0), "m");
        assert_eq!(t.extra_delays_ms.len(), 1);
        assert!((0.0..10.0).contains(&t.extra_delays_ms[0]));
        assert_eq!(ch.stats().reordered, 1);
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = ChannelSpec {
            default: ChannelParams::lossy(0.1),
            overrides: vec![LinkDegrade {
                link: link(4),
                params: ChannelParams {
                    loss: 0.4,
                    duplicate: 0.05,
                    reorder: 0.1,
                    reorder_window_ms: 5.0,
                    jitter_ms: 1.0,
                },
            }],
            seed: 123,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: ChannelSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn invalid_probability_panics() {
        let _ = ChannelModel::new(&ChannelSpec::uniform_loss(1.5, 0));
    }
}
