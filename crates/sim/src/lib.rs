#![warn(missing_docs)]

//! Deterministic discrete-event network simulator.
//!
//! The paper evaluates SMRP in ns2; this crate is the substitution
//! documented in `DESIGN.md`: an event-ordered, link-delay-accurate
//! message-passing simulator. Nothing below the routing layer (TCP/IP
//! framing, queuing) affects the paper's metrics, so the simulator models
//! exactly what matters:
//!
//! * integer-nanosecond virtual time ([`SimTime`]) with a deterministic
//!   event queue ([`EventQueue`]) — ties broken by insertion sequence;
//!   timer traffic runs on a hierarchical [`TimerWheel`] with O(1)
//!   schedule and cancel ([`TimerToken`]);
//! * hop-by-hop message delivery over the links of a
//!   [`smrp_net::Graph`], honoring per-link propagation delay and a
//!   configurable per-hop processing delay;
//! * node-local timers;
//! * persistent failures via [`smrp_net::FailureScenario`]: messages
//!   crossing a failed link or addressed to a failed node are dropped,
//!   failed nodes neither process nor send;
//! * an optional degraded channel ([`ChannelModel`]) adding seeded
//!   per-link loss, duplication, reordering and latency jitter;
//! * a bounded trace of everything that happened, for tests and the
//!   `protocol_trace` example.
//!
//! Protocol logic plugs in through the [`NodeBehavior`] trait; see
//! `smrp-proto` for the SMRP router implementation.

pub mod channel;
pub mod clock;
pub mod engine;
pub mod event;
pub mod time;
pub mod trace;
pub mod wheel;

pub use channel::{ChannelModel, ChannelParams, ChannelSpec, ChannelStats, LinkDegrade};
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use engine::{Ctx, DropCounts, NetSim, NodeBehavior, NodeCommand, TimerBackend, TimerToken};
pub use event::EventQueue;
pub use time::SimTime;
pub use trace::{TraceEvent, TraceLog};
pub use wheel::{TimerHandle, TimerWheel};
