//! Virtual simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time, held as integer nanoseconds.
///
/// The public unit of account is still milliseconds ([`SimTime::from_ms`],
/// [`SimTime::as_ms`]), but the representation is a `u64` nanosecond count:
/// adding an interval to a time is exact, so N repeated re-arms of a
/// refresh or RTO timer land on the *exact* instant `N × interval` and
/// same-instant ties are broken purely by scheduling order. (The previous
/// `f64`-milliseconds representation accumulated rounding error under
/// repeated `+=`, which made tie-breaking depend on how a timestamp had
/// been summed.)
///
/// ```
/// use smrp_sim::SimTime;
/// let t = SimTime::ZERO + SimTime::from_ms(2.5);
/// assert_eq!(t.as_ms(), 2.5);
/// assert!(t > SimTime::ZERO);
///
/// // Repeated accumulation is exact: 1000 × 0.1ms == 100ms, to the bit.
/// let step = SimTime::from_ms(0.1);
/// let mut acc = SimTime::ZERO;
/// for _ in 0..1000 { acc += step; }
/// assert_eq!(acc, SimTime::from_ms(100.0));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds per millisecond.
    const NS_PER_MS: f64 = 1_000_000.0;

    /// Creates a time from milliseconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics on NaN, infinite or negative values — virtual time is
    /// monotone.
    pub fn from_ms(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "time must be finite and non-negative"
        );
        SimTime((ms * Self::NS_PER_MS).round() as u64)
    }

    /// Creates a time from integer nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// The value in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / Self::NS_PER_MS
    }

    /// The value in integer nanoseconds.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Saturating difference: virtual time cannot go negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_ms(1.0);
        let b = SimTime::from_ms(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::ZERO.min(a), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(1.5);
        let b = SimTime::from_ms(0.5);
        assert_eq!((a + b).as_ms(), 2.0);
        assert_eq!((a - b).as_ms(), 1.0);
        // Saturating subtraction.
        assert_eq!((b - a).as_ms(), 0.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ms(), 2.0);
    }

    #[test]
    fn nanosecond_round_trip() {
        let t = SimTime::from_ns(1_234_567);
        assert_eq!(t.as_ns(), 1_234_567);
        assert_eq!(SimTime::from_ms(1.234567), t);
        assert_eq!(SimTime::from_ms(0.0), SimTime::ZERO);
    }

    #[test]
    fn repeated_accumulation_is_exact() {
        // The f64 representation failed this: 1000 × 0.1 != 100.0 in
        // binary floating point, so two timers meant for the same instant
        // compared unequal depending on how their timestamps were summed.
        let step = SimTime::from_ms(0.1);
        let mut acc = SimTime::ZERO;
        for _ in 0..1000 {
            acc += step;
        }
        assert_eq!(acc, SimTime::from_ms(100.0));
        assert_eq!(acc.as_ns(), 100_000_000);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_panics() {
        let _ = SimTime::from_ms(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_time_panics() {
        let _ = SimTime::from_ms(f64::NAN);
    }

    #[test]
    fn display_has_unit() {
        assert_eq!(SimTime::from_ms(1.25).to_string(), "1.250ms");
    }
}
