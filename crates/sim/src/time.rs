//! Virtual simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time, in milliseconds.
///
/// `SimTime` is a totally ordered wrapper over `f64` (NaN is rejected at
/// construction), so it can key the event queue directly.
///
/// ```
/// use smrp_sim::SimTime;
/// let t = SimTime::ZERO + SimTime::from_ms(2.5);
/// assert_eq!(t.as_ms(), 2.5);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics on NaN or negative values — virtual time is monotone.
    pub fn from_ms(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "time must be finite and non-negative"
        );
        SimTime(ms)
    }

    /// The value in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Saturating difference: virtual time cannot go negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0)
    }
}

impl Default for SimTime {
    fn default() -> Self {
        SimTime::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_ms(1.0);
        let b = SimTime::from_ms(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::ZERO.min(a), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ms(1.5);
        let b = SimTime::from_ms(0.5);
        assert_eq!((a + b).as_ms(), 2.0);
        assert_eq!((a - b).as_ms(), 1.0);
        // Saturating subtraction.
        assert_eq!((b - a).as_ms(), 0.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ms(), 2.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_panics() {
        let _ = SimTime::from_ms(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_time_panics() {
        let _ = SimTime::from_ms(f64::NAN);
    }

    #[test]
    fn display_has_unit() {
        assert_eq!(SimTime::from_ms(1.25).to_string(), "1.250ms");
    }
}
