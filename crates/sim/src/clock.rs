//! Pluggable time sources for hosts that drive protocol behaviors
//! outside the discrete-event engine.
//!
//! Inside [`crate::NetSim`] virtual time is whatever the event queue says
//! it is. A real host — the `smrpd` daemon — still wants to speak the
//! protocol in [`SimTime`] units (router configs, recovery plans and
//! golden traces are all expressed in it), so it needs a clock that maps
//! wall time onto the protocol's virtual timeline. [`MonotonicClock`]
//! does that with an optional speedup factor, letting a replay of a
//! 3-second scenario finish in a fraction of a wall second while every
//! relative deadline keeps its meaning. [`ManualClock`] is the
//! deterministic stand-in for unit tests.

use std::cell::Cell;
use std::time::{Duration, Instant};

use crate::time::SimTime;

/// A source of protocol-timeline timestamps.
///
/// Implementations must be monotonic: successive calls never go
/// backwards. The engine itself does not use this trait — it exists for
/// external hosts (daemons, replay harnesses) that interpret
/// [`crate::NodeCommand`] timers against real time.
pub trait Clock {
    /// The current instant on the protocol timeline.
    fn now(&self) -> SimTime;
}

/// Wall-clock time mapped onto the protocol timeline, anchored at
/// construction and scaled by a speedup factor.
///
/// With `speed = 1.0` one wall second is one protocol second; with
/// `speed = 10.0` the protocol timeline runs ten times faster than the
/// wall, so a 3000 ms scenario horizon passes in 300 ms of real time.
/// All hosts of one replay must anchor their clocks at the same moment
/// (e.g. behind a barrier) for their timelines to agree.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    start: Instant,
    speed: f64,
}

impl MonotonicClock {
    /// Anchors a clock at the current instant.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not finite and positive.
    pub fn new(speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "clock speed must be finite and positive, got {speed}"
        );
        MonotonicClock {
            start: Instant::now(),
            speed,
        }
    }

    /// Anchors a clock at an explicit instant (so several clocks can share
    /// one origin).
    pub fn anchored_at(start: Instant, speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "clock speed must be finite and positive, got {speed}"
        );
        MonotonicClock { start, speed }
    }

    /// The speedup factor: protocol nanoseconds per wall nanosecond.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Converts a protocol-timeline span into the wall-clock span that
    /// realizes it under this clock's speed. Useful for computing receive
    /// timeouts: "sleep until the next timer deadline" becomes
    /// `to_wall(deadline - now)`.
    pub fn to_wall(&self, span: SimTime) -> Duration {
        Duration::from_nanos((span.as_ns() as f64 / self.speed).ceil() as u64)
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> SimTime {
        let wall_ns = self.start.elapsed().as_nanos() as f64;
        SimTime::from_ns((wall_ns * self.speed) as u64)
    }
}

/// A hand-cranked clock for deterministic tests: time only moves when the
/// test says so.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: Cell<u64>,
}

impl ManualClock {
    /// A clock parked at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves the clock forward by `span`.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the underlying nanosecond counter.
    pub fn advance(&self, span: SimTime) {
        let next = self
            .now
            .get()
            .checked_add(span.as_ns())
            .expect("manual clock overflow");
        self.now.set(next);
    }

    /// Jumps the clock to an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `to` is earlier than the current time (clocks are
    /// monotonic).
    pub fn set(&self, to: SimTime) {
        assert!(
            to.as_ns() >= self.now.get(),
            "manual clock cannot go backwards"
        );
        self.now.set(to.as_ns());
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimTime {
        SimTime::from_ns(self.now.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_and_sets() {
        let c = ManualClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimTime::from_ms(5.0));
        assert_eq!(c.now(), SimTime::from_ms(5.0));
        c.set(SimTime::from_ms(9.0));
        assert_eq!(c.now(), SimTime::from_ms(9.0));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_backwards_set() {
        let c = ManualClock::new();
        c.advance(SimTime::from_ms(2.0));
        c.set(SimTime::from_ms(1.0));
    }

    #[test]
    fn monotonic_clock_scales_wall_time() {
        let c = MonotonicClock::new(1000.0);
        std::thread::sleep(Duration::from_millis(2));
        // 2 ms wall at 1000x is at least 2 s of protocol time.
        assert!(c.now() >= SimTime::from_ms(2000.0));
        // Round-tripping a span through to_wall inverts the speed factor.
        assert_eq!(
            c.to_wall(SimTime::from_ms(1000.0)),
            Duration::from_millis(1)
        );
    }

    #[test]
    fn monotonic_clocks_sharing_an_anchor_agree() {
        let origin = Instant::now();
        let a = MonotonicClock::anchored_at(origin, 50.0);
        let b = MonotonicClock::anchored_at(origin, 50.0);
        let (ta, tb) = (a.now(), b.now());
        let skew = ta.as_ns().abs_diff(tb.as_ns());
        // Both read the same origin; back-to-back reads are microseconds
        // apart even under heavy scheduling noise.
        assert!(skew < 500_000_000, "skew {skew} ns");
    }
}
