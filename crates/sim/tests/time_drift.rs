//! Regression tests for the f64 → integer-nanosecond `SimTime` fix.
//!
//! With the old `f64`-milliseconds representation, N repeated
//! `+= refresh_interval` accumulated binary rounding error (1000 × 0.1 ms
//! summed to 99.99999999999986 ms), so two timers meant for the same
//! instant compared *unequal* depending on how their timestamps had been
//! summed — and FIFO tie-breaking silently never applied. Integer
//! nanoseconds make interval accumulation exact.

use smrp_net::{Graph, NodeId};
use smrp_sim::{Ctx, EventQueue, NetSim, NodeBehavior, SimTime};

/// SMRP's default refresh interval is 50 ms; 0.1 ms is the classic
/// non-representable binary fraction. Both must accumulate exactly.
#[test]
fn repeated_refresh_rearms_land_on_the_exact_instant() {
    for (interval_ms, n, total_ms) in [(0.1, 1000, 100.0), (50.0, 400, 20_000.0), (0.3, 10, 3.0)] {
        let interval = SimTime::from_ms(interval_ms);
        let mut acc = SimTime::ZERO;
        for _ in 0..n {
            acc += interval;
        }
        assert_eq!(
            acc,
            SimTime::from_ms(total_ms),
            "{n} × {interval_ms}ms must equal {total_ms}ms exactly"
        );
        // And the instant is bit-identical whichever way it was reached.
        let direct = SimTime::from_ms(interval_ms * n as f64);
        assert_eq!(acc, direct);
    }
}

/// Events scheduled for the same accumulated instant — one timestamp
/// built by repeated `+=`, one in a single multiplication — are true
/// ties, popped in arrival order.
#[test]
fn tie_order_matches_arrival_order_under_accumulated_time() {
    let step = SimTime::from_ms(0.1);
    let mut summed = SimTime::ZERO;
    for _ in 0..1000 {
        summed += step;
    }
    let direct = SimTime::from_ms(100.0);

    let mut q = EventQueue::new();
    // Interleave the two spellings of t=100ms; arrival order must win.
    q.schedule(summed, "a");
    q.schedule(direct, "b");
    q.schedule(summed, "c");
    q.schedule(direct, "d");
    let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
    assert_eq!(order, vec!["a", "b", "c", "d"]);
}

/// The same property end-to-end through the engine: a periodic timer
/// chain re-armed by `+= interval` collides with a one-shot timer armed
/// directly at the far instant; the trace must show both firing at the
/// same timestamp, chain first (it was scheduled first).
#[derive(Default)]
struct Chained {
    fired: Vec<(SimTime, u8)>,
    remaining: u32,
}

impl NodeBehavior for Chained {
    type Msg = ();
    type Timer = u8;
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Self>, _from: NodeId, _msg: ()) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, t: u8) {
        self.fired.push((ctx.now(), t));
        if t == 1 && self.remaining > 0 {
            self.remaining -= 1;
            ctx.set_timer(SimTime::from_ms(0.1), 1);
        }
    }
}

#[test]
fn periodic_chain_meets_oneshot_at_the_same_instant() {
    let mut g = Graph::with_nodes(2);
    let ids: Vec<_> = g.node_ids().collect();
    g.add_link(ids[0], ids[1], 1.0).unwrap();
    let nodes = vec![
        Chained {
            fired: Vec::new(),
            remaining: 999,
        },
        Chained::default(),
    ];
    let mut sim = NetSim::new(&g, nodes);
    sim.set_trace(smrp_sim::TraceLog::disabled());
    sim.with_node(ids[0], |_, ctx| {
        // The chain starts at 0.1 ms and re-arms 999 times: its last link
        // fires at exactly 100 ms...
        ctx.set_timer(SimTime::from_ms(0.1), 1);
        // ...where the one-shot, armed directly, collides with it.
        ctx.set_timer(SimTime::from_ms(100.0), 2);
    });
    sim.run_to_completion(100_000);

    let fired = &sim.node(ids[0]).fired;
    assert_eq!(fired.len(), 1001);
    let t100 = SimTime::from_ms(100.0);
    let at_100: Vec<u8> = fired
        .iter()
        .filter(|(t, _)| *t == t100)
        .map(|(_, tag)| *tag)
        .collect();
    // Both land on the exact instant. The one-shot fires first: it was
    // scheduled at t=0, the chain's final link only at t=99.9 — pure
    // arrival order, no float noise. (Under f64 drift the chain would
    // miss the instant entirely and the filter above would find one
    // event, not two.)
    assert_eq!(at_100, vec![2, 1]);
    assert_eq!(sim.now(), t100);
}
