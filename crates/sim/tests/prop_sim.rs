//! Property tests for the discrete-event simulator.

use proptest::prelude::*;

use smrp_net::{Graph, NodeId};
use smrp_sim::{Ctx, EventQueue, NetSim, NodeBehavior, SimTime};

#[derive(Default, Clone)]
struct Recorder {
    received: Vec<(u64, NodeId)>,
}

#[derive(Debug, Clone)]
struct Tag(u64);

impl NodeBehavior for Recorder {
    type Msg = Tag;
    type Timer = u64;
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: Tag) {
        let _ = ctx;
        self.received.push((msg.0, from));
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self>, t: u64) {
        self.received.push((t, NodeId::new(usize::MAX >> 8)));
    }
}

fn ring(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for i in 0..n {
        let a = NodeId::new(i);
        let b = NodeId::new((i + 1) % n);
        if g.link_between(a, b).is_none() {
            g.add_link(a, b, 1.0 + (i % 3) as f64).unwrap();
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn event_queue_pops_sorted_and_fifo(
        times in proptest::collection::vec(0u32..1000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_ms(t as f64), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((time, (_t, i))) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(time >= lt);
                if time == lt {
                    prop_assert!(i > li, "FIFO violated on equal timestamps");
                }
            }
            last = Some((time, i));
        }
    }

    #[test]
    fn simulation_is_deterministic(
        n in 3usize..8,
        sends in proptest::collection::vec((0usize..8, 0u64..100), 1..20),
    ) {
        let g = ring(n);
        let run = || {
            let nodes = (0..n).map(|_| Recorder::default()).collect();
            let mut sim = NetSim::new(&g, nodes);
            for &(who, tag) in &sends {
                let who = NodeId::new(who % n);
                let next = NodeId::new((who.index() + 1) % n);
                sim.with_node(who, |_, ctx| {
                    ctx.send(next, Tag(tag));
                    ctx.set_timer(SimTime::from_ms(tag as f64), tag);
                });
            }
            sim.run_to_completion(10_000);
            (0..n)
                .map(|i| sim.node(NodeId::new(i)).received.clone())
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.len(), y.len());
            for (p, q) in x.iter().zip(y) {
                prop_assert_eq!(p.0, q.0);
                prop_assert_eq!(p.1, q.1);
            }
        }
    }

    #[test]
    fn delivered_plus_dropped_accounts_for_all_sends(
        n in 3usize..8,
        sends in proptest::collection::vec(0usize..8, 1..30),
        fail_node in 0usize..8,
    ) {
        let g = ring(n);
        let nodes = (0..n).map(|_| Recorder::default()).collect();
        let mut sim = NetSim::new(&g, nodes);
        sim.fail_node_now(NodeId::new(fail_node % n));
        for &who in &sends {
            let who = NodeId::new(who % n);
            let next = NodeId::new((who.index() + 1) % n);
            sim.with_node(who, |_, ctx| ctx.send(next, Tag(1)));
        }
        sim.run_to_completion(10_000);
        prop_assert_eq!(
            (sim.delivered_count() + sim.dropped_count()) as usize,
            sends.len()
        );
    }

    #[test]
    fn run_until_never_rewinds_the_clock(
        limits in proptest::collection::vec(0u32..500, 1..20),
    ) {
        let g = ring(4);
        let nodes = (0..4).map(|_| Recorder::default()).collect();
        let mut sim = NetSim::new(&g, nodes);
        sim.with_node(NodeId::new(0), |_, ctx| {
            for i in 0..10 {
                ctx.set_timer(SimTime::from_ms(i as f64 * 37.0), i);
            }
        });
        let mut prev = SimTime::ZERO;
        for &l in &limits {
            let limit = SimTime::from_ms(l as f64);
            sim.run_until(limit);
            prop_assert!(sim.now() >= prev);
            prop_assert!(sim.now() >= limit.min(sim.now()));
            prev = sim.now();
        }
    }
}
