//! Fixed-width text tables for terminal experiment reports.

/// A simple right-padded text table.
///
/// # Example
///
/// ```
/// use smrp_metrics::table::Table;
///
/// let mut t = Table::new(vec!["D_thresh", "RD_rel"]);
/// t.row(vec!["0.3".into(), "20.1%".into()]);
/// let text = t.render();
/// assert!(text.contains("D_thresh"));
/// assert!(text.contains("20.1%"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                out.push_str(cell);
                for _ in cell.len()..widths[i] {
                    out.push(' ');
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.201` →
/// `"20.1%"`.
pub fn percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long_header"]);
        t.row(vec!["wide_cell_here".into(), "x".into()]);
        t.row(vec!["y".into(), "z".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column 2 starts at the same offset in every data row.
        let off = lines[2].find('x').unwrap();
        assert_eq!(lines[3].find('z').unwrap(), off);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(vec!["col"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        let text = t.render();
        assert!(text.starts_with("col\n"));
    }

    #[test]
    fn percent_formats() {
        assert_eq!(percent(0.201), "20.1%");
        assert_eq!(percent(-0.05), "-5.0%");
        assert_eq!(percent(0.0), "0.0%");
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(vec!["h"]);
        t.row(vec!["v".into()]);
        assert_eq!(t.to_string(), t.render());
    }
}
