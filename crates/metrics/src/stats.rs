//! Online summary statistics (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Streaming accumulator for mean, variance, extrema.
///
/// Uses Welford's numerically stable online algorithm; accumulators can be
/// [merged](Stats::merge) (Chan et al.'s parallel formula).
///
/// # Example
///
/// ```
/// use smrp_metrics::Stats;
///
/// let stats: Stats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
/// assert_eq!(stats.count(), 4);
/// assert_eq!(stats.mean(), 2.5);
/// assert!((stats.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Stats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Stats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Stats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`0.0` with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean (`0.0` when empty).
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_stddev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl FromIterator<f64> for Stats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Stats::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Stats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_neutral() {
        let s = Stats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.standard_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s: Stats = [7.5].into_iter().collect();
        assert_eq!(s.mean(), 7.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(7.5));
        assert_eq!(s.max(), Some(7.5));
    }

    #[test]
    fn mean_and_variance_match_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: Stats = xs.into_iter().collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sum of squared deviations is 32; sample variance 32/7.
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs = [1.0, 2.0, 3.5, -1.0, 0.25];
        let ys = [10.0, -3.0, 4.0];
        let mut a: Stats = xs.into_iter().collect();
        let b: Stats = ys.into_iter().collect();
        a.merge(&b);
        let all: Stats = xs.into_iter().chain(ys).collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Stats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&Stats::new());
        assert_eq!(a, before);
        let mut e = Stats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Stats::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn standard_error_shrinks_with_n() {
        let few: Stats = [1.0, 2.0, 3.0].into_iter().collect();
        let many: Stats = std::iter::repeat_n([1.0, 2.0, 3.0], 100)
            .flatten()
            .collect();
        assert!(many.standard_error() < few.standard_error());
    }
}
