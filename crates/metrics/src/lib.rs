#![warn(missing_docs)]

//! Statistics and reporting utilities for the SMRP reproduction.
//!
//! The paper's evaluation (§4) reports *relative* metrics averaged over
//! randomized scenarios with 95% confidence intervals (Figure 8's error
//! bars). This crate provides everything those reports need, implemented
//! from scratch:
//!
//! * [`stats`] — Welford online mean/variance accumulation;
//! * [`ci`] — Student-t 95% confidence intervals;
//! * [`relative`] — the three relative metrics of §4.2
//!   (`RD^relative`, `D^relative`, `Cost^relative`);
//! * [`table`] — fixed-width text tables for terminal reports;
//! * [`scatter`] — an ASCII scatter plot with the `y = x` reference line
//!   used to render Figure 7;
//! * [`csvout`] — a minimal CSV writer so every experiment leaves a
//!   machine-readable artifact;
//! * [`health`] / [`protection`] — control-plane and protection-plane
//!   counter aggregates campaign reports roll up;
//! * [`locality`] — per-recovery-domain rollups and the DomainLocality
//!   confinement verdict for hierarchical campaigns.

pub mod ci;
pub mod csvout;
pub mod health;
pub mod histogram;
pub mod locality;
pub mod protection;
pub mod relative;
pub mod scatter;
pub mod stats;
pub mod table;

pub use ci::ConfidenceInterval;
pub use health::ControlHealth;
pub use histogram::Histogram;
pub use locality::{DomainRollup, LocalityHealth};
pub use protection::ProtectionHealth;
pub use stats::Stats;
