//! The relative performance metrics of §4.2.
//!
//! The paper compares SMRP against the SPF baseline per scenario and
//! reports:
//!
//! ```text
//! RD^relative    = (RD^SPF − RD^SMRP) / RD^SPF       (improvement; higher is better)
//! D^relative     = (D^SMRP − D^SPF)   / D^SPF        (delay penalty; lower is better)
//! Cost^relative  = (Cost^SMRP − Cost^SPF) / Cost^SPF (cost penalty; lower is better)
//! ```

/// `RD^relative`: fraction by which SMRP shortens the recovery distance.
///
/// Returns `0.0` when the baseline recovery distance is zero (both
/// strategies recovered instantly; there is no improvement to attribute).
pub fn rd_relative(rd_spf: f64, rd_smrp: f64) -> f64 {
    if rd_spf == 0.0 {
        0.0
    } else {
        (rd_spf - rd_smrp) / rd_spf
    }
}

/// `D^relative`: relative end-to-end delay penalty of SMRP.
///
/// Returns `0.0` when the baseline delay is zero.
pub fn delay_relative(d_smrp: f64, d_spf: f64) -> f64 {
    if d_spf == 0.0 {
        0.0
    } else {
        (d_smrp - d_spf) / d_spf
    }
}

/// `Cost^relative`: relative tree-cost penalty of SMRP.
///
/// Returns `0.0` when the baseline cost is zero.
pub fn cost_relative(cost_smrp: f64, cost_spf: f64) -> f64 {
    if cost_spf == 0.0 {
        0.0
    } else {
        (cost_smrp - cost_spf) / cost_spf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_numbers_of_the_paper() {
        // "the recovery path is reduced by an average of 20% with only 5%
        // performance penalty": RD 10 -> 8, delay 20 -> 21.
        assert!((rd_relative(10.0, 8.0) - 0.20).abs() < 1e-12);
        assert!((delay_relative(21.0, 20.0) - 0.05).abs() < 1e-12);
        assert!((cost_relative(105.0, 100.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn identical_performance_is_zero() {
        assert_eq!(rd_relative(5.0, 5.0), 0.0);
        assert_eq!(delay_relative(5.0, 5.0), 0.0);
        assert_eq!(cost_relative(5.0, 5.0), 0.0);
    }

    #[test]
    fn worse_smrp_recovery_is_negative_improvement() {
        assert!(rd_relative(5.0, 6.0) < 0.0);
    }

    #[test]
    fn zero_baselines_are_guarded() {
        assert_eq!(rd_relative(0.0, 1.0), 0.0);
        assert_eq!(delay_relative(1.0, 0.0), 0.0);
        assert_eq!(cost_relative(1.0, 0.0), 0.0);
    }

    #[test]
    fn improvement_is_bounded_by_one() {
        // SMRP recovering instantly gives 100% improvement, never more.
        assert_eq!(rd_relative(4.0, 0.0), 1.0);
    }
}
