//! Fixed-bin histograms with ASCII rendering.
//!
//! Used by the experiment reports to show *distributions* where a mean
//! would mislead — restoration latencies are bimodal under mixed
//! detection paths (heartbeat vs data starvation), and recovery distances
//! are heavy-tailed.

/// A histogram over `[low, high)` with uniform bins; out-of-range samples
/// are clamped into the edge bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    low: f64,
    high: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high` or `bins == 0`.
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(low < high, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            low,
            high,
            bins: vec![0; bins],
            count: 0,
        }
    }

    /// Adds one sample (clamped into the edge bins when out of range).
    pub fn push(&mut self, x: f64) {
        let width = (self.high - self.low) / self.bins.len() as f64;
        let idx = ((x - self.low) / width).floor();
        let idx = (idx.max(0.0) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) estimated from bin midpoints; `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let width = (self.high - self.low) / self.bins.len() as f64;
        let mut seen = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.low + (i as f64 + 0.5) * width);
            }
        }
        Some(self.high)
    }

    /// Renders horizontal bars, one line per bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let bin_width = (self.high - self.low) / self.bins.len() as f64;
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let lo = self.low + i as f64 * bin_width;
            let hi = lo + bin_width;
            let bar_len = (c as usize * width) / max as usize;
            out.push_str(&format!(
                "{lo:>9.1}–{hi:<9.1} |{} {c}\n",
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.9, 2.0, 5.5, 9.9] {
            h.push(x);
        }
        assert_eq!(h.bins(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn out_of_range_samples_clamp() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.push(-5.0);
        h.push(100.0);
        assert_eq!(h.bins(), &[1, 1]);
    }

    #[test]
    fn quantiles_track_the_mass() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.push(i as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 2.0, "median {median}");
        let p95 = h.quantile(0.95).unwrap();
        assert!((p95 - 95.0).abs() < 2.0, "p95 {p95}");
        assert!(h.quantile(0.0).unwrap() <= h.quantile(1.0).unwrap());
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn render_shows_bars_and_counts() {
        let mut h = Histogram::new(0.0, 4.0, 2);
        h.push(1.0);
        h.push(1.5);
        h.push(3.0);
        let text = h.render(10);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("##"));
        assert!(text.contains(" 2"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn inverted_range_panics() {
        let _ = Histogram::new(5.0, 1.0, 3);
    }
}
