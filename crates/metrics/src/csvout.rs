//! Minimal CSV writing so experiments leave machine-readable artifacts.
//!
//! Only what the harness needs: quoting of fields containing separators or
//! quotes, header row, and an in-memory builder that callers flush to disk
//! themselves.

/// In-memory CSV document builder.
///
/// # Example
///
/// ```
/// use smrp_metrics::csvout::Csv;
///
/// let mut csv = Csv::new(vec!["alpha", "rd_rel"]);
/// csv.row(vec!["0.2".into(), "0.21".into()]);
/// assert_eq!(csv.render(), "alpha,rd_rel\n0.2,0.21\n");
/// ```
#[derive(Debug, Clone)]
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Creates a CSV with the given header.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Csv {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
        self
    }

    /// Appends a row of floats formatted with full precision.
    pub fn row_f64(&mut self, cells: &[f64]) -> &mut Self {
        self.row(cells.iter().map(|v| format!("{v}")).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the document has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the document as a string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        push_row(&mut out, &self.header);
        for r in &self.rows {
            push_row(&mut out, r);
        }
        out
    }

    /// Writes the document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

fn push_row(out: &mut String, cells: &[String]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape(cell));
    }
    out.push('\n');
}

fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let mut c = Csv::new(vec!["a", "b"]);
        c.row(vec!["1".into(), "2".into()]);
        c.row_f64(&[0.5, 1.25]);
        assert_eq!(c.render(), "a,b\n1,2\n0.5,1.25\n");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn quotes_fields_with_separators() {
        let mut c = Csv::new(vec!["text"]);
        c.row(vec!["hello, world".into()]);
        c.row(vec!["say \"hi\"".into()]);
        let text = c.render();
        assert!(text.contains("\"hello, world\""));
        assert!(text.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut c = Csv::new(vec!["a", "b"]);
        c.row(vec!["x".into()]);
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("smrp-metrics-test");
        let path = dir.join("nested").join("out.csv");
        let mut c = Csv::new(vec!["v"]);
        c.row(vec!["42".into()]);
        c.write_to(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "v\n42\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_document() {
        let c = Csv::new(vec!["only", "header"]);
        assert!(c.is_empty());
        assert_eq!(c.render(), "only,header\n");
    }
}
