//! Control-plane health counters for lossy-channel campaigns.
//!
//! When `smrp-faultlab` runs scenarios over a degraded channel, "the tree
//! was restored" is only half the story — the other half is what it cost
//! the control plane to get there: how many retransmissions the reliable
//! layer fired, how many duplicates it suppressed, whether any message ran
//! out of retry budget (the one condition that can silently strand a
//! member), and what the channel actually ate, per message class.
//! [`ControlHealth`] aggregates those counters across every router in a
//! run and merges across scenarios into campaign reports.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Aggregated control-plane health for one run (or, after merging, one
/// campaign slice).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlHealth {
    /// Reliable-layer retransmissions fired.
    pub retransmits: u64,
    /// Duplicate reliable messages suppressed at receivers.
    pub dup_drops: u64,
    /// Reliable messages abandoned after exhausting their retry budget.
    /// Nonzero values mean the reliability layer gave up somewhere — the
    /// campaign treats this as a failure signal.
    pub retry_exhaustions: u64,
    /// Acks delivered back to senders.
    pub acks: u64,
    /// Extra copies the channel injected.
    pub channel_dupes: u64,
    /// Messages the channel held past their natural order.
    pub channel_reorders: u64,
    /// Messages the channel lost, keyed by message class (`"setup"`,
    /// `"refresh"`, `"hello"`, `"data"`, ...).
    pub loss_by_class: BTreeMap<String, u64>,
}

impl ControlHealth {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &ControlHealth) {
        self.retransmits += other.retransmits;
        self.dup_drops += other.dup_drops;
        self.retry_exhaustions += other.retry_exhaustions;
        self.acks += other.acks;
        self.channel_dupes += other.channel_dupes;
        self.channel_reorders += other.channel_reorders;
        for (class, n) in &other.loss_by_class {
            *self.loss_by_class.entry(class.clone()).or_insert(0) += n;
        }
    }

    /// Merges an iterator of health slices into one aggregate — the
    /// multi-session roll-up: per-group lane counters combine into one
    /// router-process view, per-group views into one campaign view.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a ControlHealth>) -> ControlHealth {
        let mut total = ControlHealth::default();
        for p in parts {
            total.merge(p);
        }
        total
    }

    /// Absorbs one reliable-delivery endpoint's counters (a router lane's
    /// view of retransmits, suppressed duplicates, exhausted retries and
    /// acks it sent). Every host of the router — the simulator's report
    /// builder and the daemon's introspection dump — rolls lanes up
    /// through this one definition, so their health numbers agree
    /// field-for-field.
    pub fn absorb_lane(&mut self, retransmits: u64, dup_drops: u64, exhaustions: u64, acks: u64) {
        self.retransmits += retransmits;
        self.dup_drops += dup_drops;
        self.retry_exhaustions += exhaustions;
        self.acks += acks;
    }

    /// Total messages lost by the channel across all classes.
    pub fn total_lost(&self) -> u64 {
        self.loss_by_class.values().sum()
    }

    /// Whether nothing at all was recorded (clean lossless run).
    pub fn is_quiet(&self) -> bool {
        *self == ControlHealth::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_everything() {
        let mut a = ControlHealth {
            retransmits: 3,
            dup_drops: 1,
            retry_exhaustions: 0,
            acks: 40,
            channel_dupes: 2,
            channel_reorders: 5,
            loss_by_class: [("setup".to_string(), 2), ("hello".to_string(), 7)]
                .into_iter()
                .collect(),
        };
        let b = ControlHealth {
            retransmits: 1,
            dup_drops: 0,
            retry_exhaustions: 1,
            acks: 10,
            channel_dupes: 0,
            channel_reorders: 1,
            loss_by_class: [("setup".to_string(), 1), ("data".to_string(), 4)]
                .into_iter()
                .collect(),
        };
        a.merge(&b);
        assert_eq!(a.retransmits, 4);
        assert_eq!(a.retry_exhaustions, 1);
        assert_eq!(a.acks, 50);
        assert_eq!(a.loss_by_class["setup"], 3);
        assert_eq!(a.loss_by_class["data"], 4);
        assert_eq!(a.total_lost(), 14);
        assert!(!a.is_quiet());
        assert!(ControlHealth::default().is_quiet());
    }

    #[test]
    fn merged_rolls_up_slices() {
        let a = ControlHealth {
            retransmits: 2,
            loss_by_class: [("hello".to_string(), 1)].into_iter().collect(),
            ..ControlHealth::default()
        };
        let b = ControlHealth {
            retransmits: 3,
            acks: 4,
            ..ControlHealth::default()
        };
        let total = ControlHealth::merged([&a, &b]);
        assert_eq!(total.retransmits, 5);
        assert_eq!(total.acks, 4);
        assert_eq!(total.total_lost(), 1);
        assert!(ControlHealth::merged([]).is_quiet());
    }

    #[test]
    fn serializes_stably() {
        let h = ControlHealth {
            retransmits: 2,
            loss_by_class: [("refresh".to_string(), 1)].into_iter().collect(),
            ..ControlHealth::default()
        };
        let json = serde_json::to_string(&h).unwrap();
        let back: ControlHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
