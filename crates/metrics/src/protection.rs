//! Protection-plane accounting for campaign reports.
//!
//! Protection mode trades standing state (precomputed backup plans kept
//! warm on every on-tree node) for restoration speed (activation instead
//! of on-demand search). [`ProtectionHealth`] is the campaign-side
//! aggregate of that trade: how many plans the fleet held, how many
//! activations actually fired, and how many plans were discarded as stale
//! — the counter that proves the safety property "an activated plan is
//! never used against a topology it was not computed for" is doing work.

use serde::{Deserialize, Serialize};

/// Aggregated protection-plane counters for one run (or, after merging,
/// one campaign slice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtectionHealth {
    /// Backup plans held across the fleet at capture time — the state
    /// overhead of keeping the protection plane warm. Zero for reactive
    /// runs.
    pub plans_held: u64,
    /// Cached plans executed (each counts one graft initiated from a
    /// plan cache, in either mode).
    pub activations: u64,
    /// Plans discarded because their path crossed a component presumed
    /// dead: each is a graft into a dead topology that did *not* happen.
    pub stale_discards: u64,
}

impl ProtectionHealth {
    /// Accumulates `other` into `self`. `plans_held` is a gauge summed
    /// across routers (total standing state), like the counters.
    pub fn merge(&mut self, other: &ProtectionHealth) {
        self.plans_held += other.plans_held;
        self.activations += other.activations;
        self.stale_discards += other.stale_discards;
    }

    /// Absorbs one router's raw counter triple — the seam that keeps
    /// `smrp-metrics` free of a dependency on the protocol crate's
    /// counter type.
    pub fn absorb(&mut self, plans_held: u64, activations: u64, stale_discards: u64) {
        self.plans_held += plans_held;
        self.activations += activations;
        self.stale_discards += stale_discards;
    }

    /// Merges an iterator of slices into one aggregate.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a ProtectionHealth>) -> ProtectionHealth {
        let mut total = ProtectionHealth::default();
        for p in parts {
            total.merge(p);
        }
        total
    }

    /// Whether nothing at all was recorded (reactive run that never
    /// touched a plan cache).
    pub fn is_quiet(&self) -> bool {
        *self == ProtectionHealth::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_absorb_accumulate() {
        let mut a = ProtectionHealth {
            plans_held: 5,
            activations: 1,
            stale_discards: 0,
        };
        a.merge(&ProtectionHealth {
            plans_held: 3,
            activations: 2,
            stale_discards: 1,
        });
        a.absorb(1, 0, 1);
        assert_eq!(a.plans_held, 9);
        assert_eq!(a.activations, 3);
        assert_eq!(a.stale_discards, 2);
        assert!(!a.is_quiet());
        assert!(ProtectionHealth::default().is_quiet());
    }

    #[test]
    fn merged_rolls_up_slices() {
        let a = ProtectionHealth {
            plans_held: 2,
            ..ProtectionHealth::default()
        };
        let b = ProtectionHealth {
            activations: 4,
            stale_discards: 1,
            ..ProtectionHealth::default()
        };
        let total = ProtectionHealth::merged([&a, &b]);
        assert_eq!(total.plans_held, 2);
        assert_eq!(total.activations, 4);
        assert_eq!(total.stale_discards, 1);
        assert!(ProtectionHealth::merged([]).is_quiet());
    }

    #[test]
    fn serializes_stably() {
        let h = ProtectionHealth {
            plans_held: 7,
            activations: 2,
            stale_discards: 1,
        };
        let json = serde_json::to_string(&h).unwrap();
        let back: ProtectionHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
