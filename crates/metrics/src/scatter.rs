//! ASCII scatter plots with a `y = x` reference line (Figure 7).
//!
//! Figure 7 of the paper plots, for every member in every topology, the
//! recovery distance via global detour (x) against the local detour (y);
//! the claim is that most points fall below the diagonal. This module
//! renders the same picture in a terminal.

/// Configuration and renderer for an ASCII scatter plot.
#[derive(Debug, Clone)]
pub struct ScatterPlot {
    title: String,
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
    diagonal: bool,
    points: Vec<(f64, f64)>,
}

impl ScatterPlot {
    /// Creates an empty plot with default 60×24 character canvas.
    pub fn new<S: Into<String>>(title: S) -> Self {
        ScatterPlot {
            title: title.into(),
            x_label: "x".to_string(),
            y_label: "y".to_string(),
            width: 60,
            height: 24,
            diagonal: false,
            points: Vec::new(),
        }
    }

    /// Sets the axis labels.
    pub fn labels<S: Into<String>>(mut self, x: S, y: S) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Sets the canvas size in characters.
    pub fn size(mut self, width: usize, height: usize) -> Self {
        self.width = width.max(10);
        self.height = height.max(5);
        self
    }

    /// Draws the `y = x` reference diagonal.
    pub fn with_diagonal(mut self) -> Self {
        self.diagonal = true;
        self
    }

    /// Adds one point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Adds many points.
    pub fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        self.points.extend(iter);
    }

    /// Number of points currently plotted.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plot has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Fraction of points strictly below the diagonal (`y < x`). The
    /// paper's headline for Figure 7 is that this is well above one half.
    pub fn below_diagonal_fraction(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let below = self.points.iter().filter(|(x, y)| y < x).count();
        below as f64 / self.points.len() as f64
    }

    /// Renders the plot.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        if self.points.is_empty() {
            out.push_str("(no points)\n");
            return out;
        }
        let max_x = self
            .points
            .iter()
            .map(|p| p.0)
            .fold(f64::NEG_INFINITY, f64::max);
        let max_y = self
            .points
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max);
        // Square scale so the diagonal is meaningful.
        let max = max_x.max(max_y).max(f64::MIN_POSITIVE);

        let mut grid = vec![vec![' '; self.width]; self.height];
        if self.diagonal {
            let (w, h) = (self.width, self.height);
            for (col, x) in (0..w).map(|c| (c, c as f64 / (w - 1) as f64)) {
                let row = ((1.0 - x) * (h - 1) as f64).round() as usize;
                grid[row][col] = '.';
            }
        }
        for &(x, y) in &self.points {
            let col = ((x / max) * (self.width - 1) as f64).round() as usize;
            let row = ((1.0 - y / max) * (self.height - 1) as f64).round() as usize;
            let col = col.min(self.width - 1);
            let row = row.min(self.height - 1);
            grid[row][col] = '*';
        }
        for (i, line) in grid.iter().enumerate() {
            let ylab = if i == 0 {
                format!("{max:>8.1} |")
            } else if i == self.height - 1 {
                format!("{:>8.1} |", 0.0)
            } else {
                "         |".to_string()
            };
            out.push_str(&ylab);
            let row: String = line.iter().collect();
            out.push_str(row.trim_end());
            out.push('\n');
        }
        out.push_str("         +");
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        out.push_str(&format!(
            "          0{:>width$.1}\n",
            max,
            width = self.width - 1
        ));
        out.push_str(&format!(
            "          x: {}, y: {} ({} points, {:.0}% below y = x)\n",
            self.x_label,
            self.y_label,
            self.points.len(),
            self.below_diagonal_fraction() * 100.0
        ));
        out
    }
}

impl std::fmt::Display for ScatterPlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_diagonal_fraction_counts_correctly() {
        let mut p = ScatterPlot::new("t");
        p.push(1.0, 0.5); // below
        p.push(1.0, 2.0); // above
        p.push(2.0, 1.0); // below
        p.push(1.0, 1.0); // on the line: not below
        assert!((p.below_diagonal_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_plot_renders_placeholder() {
        let p = ScatterPlot::new("empty");
        assert!(p.is_empty());
        assert!(p.render().contains("(no points)"));
        assert_eq!(p.below_diagonal_fraction(), 0.0);
    }

    #[test]
    fn render_contains_points_and_diagonal() {
        let mut p = ScatterPlot::new("fig7").with_diagonal().size(30, 10);
        p.extend([(1.0, 0.5), (2.0, 1.5), (3.0, 2.0)]);
        let text = p.render();
        assert!(text.contains('*'));
        assert!(text.contains('.'));
        assert!(text.contains("below y = x"));
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn labels_appear_in_footer() {
        let mut p = ScatterPlot::new("t").labels("global RD", "local RD");
        p.push(1.0, 1.0);
        let text = p.render();
        assert!(text.contains("global RD"));
        assert!(text.contains("local RD"));
    }

    #[test]
    fn extreme_points_stay_in_bounds() {
        let mut p = ScatterPlot::new("t").size(20, 8);
        p.extend([(0.0, 0.0), (100.0, 100.0), (100.0, 0.0), (0.0, 100.0)]);
        // Must not panic, and the grid rows (between title and axis) stay
        // within the canvas width plus the y-label margin.
        let text = p.render();
        for line in text.lines().skip(1).take(8) {
            assert!(line.len() <= 20 + 10, "grid row too wide: {line:?}");
        }
        assert!(text.matches('*').count() >= 3);
    }
}
