//! Per-recovery-domain counters for hierarchical campaigns.
//!
//! N-level hierarchical recovery (§3.3.3 generalized) promises failure
//! *confinement*: a failure owned by one recovery domain is repaired with
//! control traffic that never leaves that domain. [`DomainRollup`]
//! accumulates, per domain, what each failure case cost — affected
//! members and aggregated receiver populations, restorations, control
//! messages, elections — and, crucially, how many control messages were
//! observed crossing the domain's border ([`DomainRollup::border_crossings`]).
//! A healthy hierarchical campaign rolls up to zero crossings everywhere;
//! any nonzero value is a confinement violation, not a tuning problem.

use serde::{Deserialize, Serialize};

/// Accumulated counters for one recovery domain across a campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainRollup {
    /// The domain's id within its topology.
    pub domain: u32,
    /// The domain's depth in the hierarchy (0 = root).
    pub level: u32,
    /// Cases whose failure this domain owned and repaired.
    pub cases_owned: u64,
    /// Real members that lost service across this domain's cases.
    pub affected_members: u64,
    /// Total receivers (members plus aggregated populations) that lost
    /// service across this domain's cases.
    pub affected_population: u64,
    /// Affected members that regained service within the run.
    pub restored_members: u64,
    /// Control messages this domain's session lanes sent across the
    /// campaign (all cases, owned or not — steady state included).
    pub control_messages: u64,
    /// Control messages of this domain's session observed on a link with
    /// an endpoint outside the domain's session node set. Must be zero:
    /// the DomainLocality invariant.
    pub border_crossings: u64,
    /// New-agent elections performed when this domain's border attachment
    /// died and a backup gateway took over.
    pub elections: u64,
    /// Cases owned by this domain that no in-domain detour (nor backup
    /// gateway) could repair.
    pub unrepairable: u64,
}

impl DomainRollup {
    /// A fresh rollup for `domain` at `level`.
    pub fn new(domain: u32, level: u32) -> Self {
        DomainRollup {
            domain,
            level,
            ..DomainRollup::default()
        }
    }

    /// Accumulates another rollup for the same domain into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the rollups describe different domains.
    pub fn merge(&mut self, other: &DomainRollup) {
        assert_eq!(
            (self.domain, self.level),
            (other.domain, other.level),
            "rollups describe different domains"
        );
        self.cases_owned += other.cases_owned;
        self.affected_members += other.affected_members;
        self.affected_population += other.affected_population;
        self.restored_members += other.restored_members;
        self.control_messages += other.control_messages;
        self.border_crossings += other.border_crossings;
        self.elections += other.elections;
        self.unrepairable += other.unrepairable;
    }

    /// Whether the DomainLocality invariant held for everything this
    /// rollup saw.
    pub fn is_confined(&self) -> bool {
        self.border_crossings == 0
    }
}

/// Campaign-level locality verdict over every domain's rollup.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalityHealth {
    /// Control messages observed crossing any domain border, summed.
    pub border_crossings: u64,
    /// Cases audited against the locality invariant.
    pub cases_audited: u64,
    /// Cases whose trace overflowed its buffer before the audit ran; the
    /// verdict for those is *unknown*, and a healthy campaign has none.
    pub cases_unaudited: u64,
}

impl LocalityHealth {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &LocalityHealth) {
        self.border_crossings += other.border_crossings;
        self.cases_audited += other.cases_audited;
        self.cases_unaudited += other.cases_unaudited;
    }

    /// Whether every audited case stayed confined and every case was
    /// audited.
    pub fn is_clean(&self) -> bool {
        self.border_crossings == 0 && self.cases_unaudited == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_and_checks_identity() {
        let mut a = DomainRollup::new(3, 1);
        a.cases_owned = 2;
        a.affected_population = 10_000;
        a.border_crossings = 0;
        let mut b = DomainRollup::new(3, 1);
        b.cases_owned = 1;
        b.affected_population = 5;
        b.elections = 1;
        a.merge(&b);
        assert_eq!(a.cases_owned, 3);
        assert_eq!(a.affected_population, 10_005);
        assert_eq!(a.elections, 1);
        assert!(a.is_confined());
    }

    #[test]
    #[should_panic(expected = "different domains")]
    fn merging_different_domains_panics() {
        let mut a = DomainRollup::new(1, 1);
        a.merge(&DomainRollup::new(2, 1));
    }

    #[test]
    fn locality_health_gates_on_crossings_and_coverage() {
        let mut h = LocalityHealth {
            border_crossings: 0,
            cases_audited: 10,
            cases_unaudited: 0,
        };
        assert!(h.is_clean());
        h.merge(&LocalityHealth {
            border_crossings: 2,
            cases_audited: 1,
            cases_unaudited: 0,
        });
        assert!(!h.is_clean());
        assert_eq!(h.cases_audited, 11);
        let partial = LocalityHealth {
            border_crossings: 0,
            cases_audited: 3,
            cases_unaudited: 1,
        };
        assert!(!partial.is_clean());
    }

    #[test]
    fn serializes_stably() {
        let r = DomainRollup {
            domain: 2,
            level: 1,
            cases_owned: 4,
            affected_members: 6,
            affected_population: 1_000_000,
            restored_members: 6,
            control_messages: 1234,
            border_crossings: 0,
            elections: 1,
            unrepairable: 0,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: DomainRollup = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
