//! Student-t 95% confidence intervals (the error bars of Figure 8).

use serde::{Deserialize, Serialize};

use crate::stats::Stats;

/// Two-sided 95% critical values of the t-distribution for small degrees of
/// freedom (`df = 1..=30`). Indexed by `df - 1`.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Additional anchors for larger degrees of freedom.
const T_95_LARGE: [(u64, f64); 5] = [
    (40, 2.021),
    (60, 2.000),
    (80, 1.990),
    (120, 1.980),
    (u64::MAX, 1.960),
];

/// Two-sided 95% t critical value for `df` degrees of freedom.
///
/// Exact table values for `df ≤ 30`, interpolated anchors beyond, and the
/// normal limit `1.96` asymptotically. Returns `f64::INFINITY` for
/// `df == 0` (a single observation carries no interval information).
pub fn t_critical_95(df: u64) -> f64 {
    if df == 0 {
        return f64::INFINITY;
    }
    if df <= 30 {
        return T_95[(df - 1) as usize];
    }
    let mut prev = (30u64, T_95[29]);
    for &(d, t) in &T_95_LARGE {
        if df <= d {
            // Interpolate in 1/df, which is nearly linear in t.
            let x0 = 1.0 / prev.0 as f64;
            let x1 = 1.0 / d as f64;
            let x = 1.0 / df as f64;
            let w = if (x1 - x0).abs() < f64::EPSILON {
                0.0
            } else {
                (x - x0) / (x1 - x0)
            };
            return prev.1 + w * (t - prev.1);
        }
        prev = (d, t);
    }
    1.960
}

/// A symmetric confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the interval (`0.0` when undefined).
    pub half_width: f64,
    /// Number of observations behind the estimate.
    pub count: u64,
}

impl ConfidenceInterval {
    /// Computes the 95% confidence interval of the mean of `stats`.
    ///
    /// With fewer than two observations the half-width is `0.0` (no spread
    /// information), matching how plotting tools treat degenerate error
    /// bars.
    pub fn from_stats(stats: &Stats) -> Self {
        let count = stats.count();
        let half_width = if count < 2 {
            0.0
        } else {
            t_critical_95(count - 1) * stats.standard_error()
        };
        ConfidenceInterval {
            mean: stats.mean(),
            half_width,
            count,
        }
    }

    /// Lower bound of the interval.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `value` lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.low() && value <= self.high()
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_df_matches_table() {
        assert_eq!(t_critical_95(1), 12.706);
        assert_eq!(t_critical_95(10), 2.228);
        assert_eq!(t_critical_95(30), 2.042);
    }

    #[test]
    fn large_df_approaches_normal() {
        let t100 = t_critical_95(100);
        assert!(t100 > 1.96 && t100 < 2.0);
        assert!((t_critical_95(1_000_000) - 1.96).abs() < 0.01);
    }

    #[test]
    fn critical_values_decrease_with_df() {
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = t_critical_95(df);
            assert!(t <= prev + 1e-12, "t({df}) = {t} rose above {prev}");
            prev = t;
        }
    }

    #[test]
    fn zero_df_is_infinite() {
        assert!(t_critical_95(0).is_infinite());
    }

    #[test]
    fn interval_brackets_the_mean() {
        let stats: Stats = (0..50).map(|i| (i % 7) as f64).collect();
        let ci = ConfidenceInterval::from_stats(&stats);
        assert!(ci.contains(ci.mean));
        assert!(ci.low() < ci.mean && ci.mean < ci.high());
        assert_eq!(ci.count, 50);
    }

    #[test]
    fn known_interval_for_small_sample() {
        // Sample 1..5: mean 3, sd sqrt(2.5), se sqrt(0.5), t(4) = 2.776.
        let stats: Stats = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        let ci = ConfidenceInterval::from_stats(&stats);
        let expected = 2.776 * (2.5f64 / 5.0).sqrt();
        assert!((ci.half_width - expected).abs() < 1e-9);
        assert_eq!(ci.mean, 3.0);
    }

    #[test]
    fn degenerate_samples_have_zero_width() {
        let one: Stats = [4.0].into_iter().collect();
        let ci = ConfidenceInterval::from_stats(&one);
        assert_eq!(ci.half_width, 0.0);
        let empty = Stats::new();
        let ci = ConfidenceInterval::from_stats(&empty);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.mean, 0.0);
    }

    #[test]
    fn display_shows_plus_minus() {
        let stats: Stats = [1.0, 2.0, 3.0].into_iter().collect();
        let ci = ConfidenceInterval::from_stats(&stats);
        assert!(ci.to_string().contains('±'));
    }
}
