//! Property tests for the statistics layer.

use proptest::prelude::*;

use smrp_metrics::ci::{t_critical_95, ConfidenceInterval};
use smrp_metrics::csvout::Csv;
use smrp_metrics::relative;
use smrp_metrics::Stats;

fn naive_mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn naive_sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = naive_mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn welford_matches_naive(xs in proptest::collection::vec(-1e4f64..1e4, 1..200)) {
        let s: Stats = xs.iter().copied().collect();
        prop_assert_eq!(s.count(), xs.len() as u64);
        prop_assert!((s.mean() - naive_mean(&xs)).abs() < 1e-6);
        prop_assert!((s.sample_variance() - naive_sample_variance(&xs)).abs() < 1e-4);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), Some(min));
        prop_assert_eq!(s.max(), Some(max));
    }

    #[test]
    fn merge_is_associative_enough(
        xs in proptest::collection::vec(-100f64..100.0, 1..60),
        ys in proptest::collection::vec(-100f64..100.0, 1..60),
        zs in proptest::collection::vec(-100f64..100.0, 1..60),
    ) {
        let stat = |v: &[f64]| v.iter().copied().collect::<Stats>();
        // (x + y) + z  vs  x + (y + z)
        let mut left = stat(&xs);
        left.merge(&stat(&ys));
        left.merge(&stat(&zs));
        let mut right_tail = stat(&ys);
        right_tail.merge(&stat(&zs));
        let mut right = stat(&xs);
        right.merge(&right_tail);
        prop_assert!((left.mean() - right.mean()).abs() < 1e-9);
        prop_assert!((left.sample_variance() - right.sample_variance()).abs() < 1e-6);
        prop_assert_eq!(left.count(), right.count());
    }

    #[test]
    fn ci_narrows_with_replication(
        xs in proptest::collection::vec(-10f64..10.0, 3..40),
        reps in 2usize..6,
    ) {
        let base: Stats = xs.iter().copied().collect();
        let replicated: Stats =
            std::iter::repeat_n(xs.iter().copied(), reps).flatten().collect();
        let ci_base = ConfidenceInterval::from_stats(&base);
        let ci_rep = ConfidenceInterval::from_stats(&replicated);
        // Same mean, tighter (or equal, when variance is 0) interval.
        prop_assert!((ci_base.mean - ci_rep.mean).abs() < 1e-9);
        prop_assert!(ci_rep.half_width <= ci_base.half_width + 1e-12);
    }

    #[test]
    fn t_table_is_monotone(df1 in 1u64..10_000, df2 in 1u64..10_000) {
        let (lo, hi) = if df1 <= df2 { (df1, df2) } else { (df2, df1) };
        prop_assert!(t_critical_95(hi) <= t_critical_95(lo) + 1e-12);
        prop_assert!(t_critical_95(hi) >= 1.959);
    }

    #[test]
    fn relative_metrics_identities(spf in 0.001f64..1e4, smrp in 0.0f64..1e4) {
        let rd = relative::rd_relative(spf, smrp);
        prop_assert!(rd <= 1.0 + 1e-12);
        // Identity: rd_relative == -delay_relative with roles swapped.
        let d = relative::delay_relative(smrp, spf);
        prop_assert!((rd + d).abs() < 1e-9);
        // Zero difference means zero metric.
        prop_assert!(relative::cost_relative(spf, spf).abs() < 1e-12);
    }

    #[test]
    fn csv_escaping_round_trips_simple_fields(
        cells in proptest::collection::vec("[a-z0-9 ,\"]{0,12}", 1..6),
    ) {
        let mut csv = Csv::new(vec!["h".to_string(); cells.len()]);
        csv.row(cells.clone());
        let rendered = csv.render();
        // The rendered document has exactly two lines (header + row) and
        // the number of unquoted commas in the header matches arity.
        let lines: Vec<&str> = rendered.lines().collect();
        prop_assert_eq!(lines.len(), 2);
        prop_assert_eq!(lines[0].split(',').count(), cells.len());
    }
}
