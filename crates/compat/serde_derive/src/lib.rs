//! Offline drop-in subset of `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! sibling offline `serde` stub's value-based data model. Supports exactly
//! the shapes this workspace uses: named-field structs, tuple/newtype
//! structs, unit structs, and enums whose variants are all unit variants.
//! Generic types and `#[serde(...)]` attributes are rejected with a clear
//! compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a derive input item.
enum Input {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

fn is_punct(tok: &TokenTree, ch: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Skips leading outer attributes (`#[...]`) and a visibility modifier
/// (`pub`, `pub(...)`), returning the index of the next significant token.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(t) if is_punct(t, '#') => {
                // `#` followed by a bracketed group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits a brace-group body into comma-separated pieces, ignoring commas
/// nested inside `<...>` (delimiter groups are already nested by the lexer).
fn split_top_level(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut pieces = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0usize;
    for t in toks {
        if is_punct(t, '<') {
            angle_depth += 1;
        } else if is_punct(t, '>') {
            angle_depth = angle_depth.saturating_sub(1);
        } else if is_punct(t, ',') && angle_depth == 0 {
            pieces.push(std::mem::take(&mut cur));
            continue;
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        pieces.push(cur);
    }
    pieces
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);

    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;
    if toks.get(i).is_some_and(|t| is_punct(t, '<')) {
        panic!("serde derive (offline stub): generic type `{name}` is not supported");
    }

    match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut fields = Vec::new();
                for piece in split_top_level(&body) {
                    let j = skip_attrs_and_vis(&piece, 0);
                    match piece.get(j) {
                        Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
                        None => {}
                        other => panic!("serde derive: bad field in `{name}`: {other:?}"),
                    }
                }
                Input::NamedStruct { name, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let arity = split_top_level(&body).len();
                Input::TupleStruct { name, arity }
            }
            Some(t) if is_punct(t, ';') => Input::UnitStruct { name },
            other => panic!("serde derive: bad struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for piece in split_top_level(&body) {
                    let j = skip_attrs_and_vis(&piece, 0);
                    match (piece.get(j), piece.get(j + 1)) {
                        (Some(TokenTree::Ident(id)), None) => variants.push(id.to_string()),
                        (None, _) => {}
                        other => panic!(
                            "serde derive (offline stub): enum `{name}` has a non-unit \
                             variant ({other:?}); only unit variants are supported"
                        ),
                    }
                }
                Input::UnitEnum { name, variants }
            }
            other => panic!("serde derive: bad enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde derive: expected `struct` or `enum`, found `{other}`"),
    }
}

/// Derives `serde::Serialize` (offline stub data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Input::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Input::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::serialize(&self.0)\n\
                 }}\n\
             }}"
        ),
        Input::TupleStruct { name, arity } => {
            let entries: String = (0..arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Input::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde derive: generated impl failed to parse")
}

/// Derives `serde::Deserialize` (offline stub data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Input::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                             ::serde::field(value, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Input::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(value: &::serde::Value) \
                     -> ::core::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name}(::serde::Deserialize::deserialize(value)?))\n\
                 }}\n\
             }}"
        ),
        Input::TupleStruct { name, arity } => {
            let inits: String = (0..arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&seq[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         let seq = value.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected sequence for {name}\"))?;\n\
                         if seq.len() != {arity} {{\n\
                             return Err(::serde::Error::custom(\
                                 \"wrong tuple arity for {name}\"));\n\
                         }}\n\
                         Ok({name}({inits}))\n\
                     }}\n\
                 }}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(_value: &::serde::Value) \
                     -> ::core::result::Result<Self, ::serde::Error> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}"
        ),
        Input::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) \
                         -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match value.as_str() {{\n\
                             Some(s) => match s {{\n\
                                 {arms}\n\
                                 other => Err(::serde::Error::custom(format!(\
                                     \"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             None => Err(::serde::Error::custom(\
                                 \"expected string variant for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde derive: generated impl failed to parse")
}
