//! Offline drop-in subset of `proptest`.
//!
//! The build environment for this workspace is hermetic (no crates.io
//! access), so this crate provides the slice of proptest the workspace's
//! property tests use: range/tuple/`Just`/mapped/union/vec strategies, the
//! `proptest!` test-harness macro with `#![proptest_config(..)]`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` family.
//!
//! Differences from upstream worth knowing: generation is driven by a
//! fixed-seed deterministic RNG (every run explores the same cases), there
//! is no shrinking (the failing inputs are printed as generated), and
//! rejected cases (`prop_assume!`) are simply skipped rather than retried.

use std::fmt::Debug;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SampleUniform, SeedableRng};

/// Deterministic RNG driving strategy generation.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// A fixed-seed generator; every test run explores the same cases.
    pub fn deterministic() -> Self {
        TestRng(SmallRng::seed_from_u64(0x5eed_cafe_f00d_d00d))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// The inputs were rejected by `prop_assume!` — not a failure.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure from any message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection from any message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type each generated case evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to generate per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy producing always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Half-open numeric ranges are strategies drawing uniformly.
impl<T: SampleUniform + Debug> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// String patterns are strategies generating matching strings (real
/// proptest accepts any regex; this subset covers a single character class
/// with a `{min,max}` repetition, e.g. `"[a-z0-9 ]{0,12}"` — anything else
/// is treated as a literal).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let Some((class, min, max)) = parse_class_repeat(self) else {
            return (*self).to_string();
        };
        let len = rng.gen_range(min..max + 1);
        (0..len)
            .map(|_| class[rng.gen_range(0..class.len())])
            .collect()
    }
}

/// Parses `[<chars>]{min,max}` into (alphabet, min, max); `a-z` ranges are
/// expanded, every other character inside the class is literal.
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class_src, tail) = rest.split_at(close);
    let counts = tail.strip_prefix("]{")?.strip_suffix('}')?;
    let (min_s, max_s) = counts.split_once(',')?;
    let (min, max) = (min_s.parse().ok()?, max_s.parse().ok()?);
    if min > max {
        return None;
    }
    let src: Vec<char> = class_src.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < src.len() {
        if i + 2 < src.len() && src[i + 1] == '-' {
            for c in src[i]..=src[i + 2] {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(src[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        None
    } else {
        Some((alphabet, min, max))
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T: Debug> Union<T> {
    /// Builds a union; panics on an empty variant list.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof!: no variants");
        Union(variants)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Collection strategies.
pub mod collection {
    use super::{Rng, Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len` and elements
    /// drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors of `elem` values with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{a:?} != {b:?}");
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{a:?} != {b:?}: {}", format!($($fmt)+));
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{a:?} == {b:?}");
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond).to_string()));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines `#[test]` functions over generated inputs.
///
/// Each case's body runs in a closure returning [`TestCaseResult`], so
/// `prop_assert!`-family macros and early `return Ok(())` work as in
/// upstream proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    (@run $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __pt_config: $crate::ProptestConfig = $config;
            let mut __pt_rng = $crate::TestRng::deterministic();
            let mut __pt_ran: u32 = 0;
            let mut __pt_attempts: u32 = 0;
            while __pt_ran < __pt_config.cases && __pt_attempts < __pt_config.cases * 20 {
                __pt_attempts += 1;
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __pt_rng);)*
                let __pt_inputs = format!("{:?}", ($(&$arg,)*));
                let __pt_result: $crate::TestCaseResult = (move || {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match __pt_result {
                    Ok(()) => __pt_ran += 1,
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed: {}\n  inputs: {}",
                            msg, __pt_inputs
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy as _;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A(usize),
        B,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn tuples_vecs_and_maps_compose(
            pair in (0usize..4, 10u32..20),
            v in crate::collection::vec(0usize..100, 2..6),
        ) {
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn early_ok_return_is_accepted(x in 0usize..10) {
            if x > 3 {
                return Ok(());
            }
            prop_assert!(x <= 3);
        }
    }

    #[test]
    fn oneof_covers_all_variants() {
        let strat = prop_oneof![(0usize..5).prop_map(Pick::A), Just(Pick::B)];
        let mut rng = crate::TestRng::deterministic();
        let mut saw_a = false;
        let mut saw_b = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                Pick::A(x) => {
                    assert!(x < 5);
                    saw_a = true;
                }
                Pick::B => saw_b = true,
            }
        }
        assert!(saw_a && saw_b);
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
