//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace is hermetic (no crates.io
//! access), so this crate re-implements exactly the surface the workspace
//! uses: a seedable small PRNG, `gen`/`gen_range`/`gen_bool`, and the
//! `SliceRandom` shuffle/choose helpers. The generator is a deterministic
//! xoshiro256**; sequences differ from upstream `rand`, but every consumer
//! in this workspace only relies on *seed-determinism*, not on specific
//! sequences.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Rejection-free bounded integer sampling (Lemire-style multiply-shift).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Multiply-shift maps a random u64 into [0, bound) with negligible
    // bias for the bounds used in this workspace (all far below 2^32).
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add(bounded_u64(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * f32::sample_standard(rng)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's standard distribution
    /// (`[0, 1)` for floats, full domain for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_in(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seed-deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffle and sample operations over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(3usize..17);
            assert!((3..17).contains(&y));
            let z = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&z));
        }
    }

    #[test]
    fn ranges_cover_their_domain() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes_and_choose_picks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((300..700).contains(&hits), "got {hits}");
    }
}
