//! Offline drop-in subset of `serde`.
//!
//! The build environment for this workspace is hermetic (no crates.io
//! access), so this crate provides the slice of serde the workspace
//! actually uses: `#[derive(Serialize, Deserialize)]` on plain structs,
//! newtype structs and unit-variant enums, serialized through a simple
//! self-describing [`Value`] tree. `serde_json` (the sibling offline
//! stub) renders and parses that tree as JSON.
//!
//! This is intentionally *not* the full serde architecture (no visitors,
//! no zero-copy, no custom serializers); it exists so experiment state can
//! be archived and round-tripped without network access.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A self-describing serialized value tree (the data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only produced for negative values).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered string-keyed map (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The value as a sequence, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a float (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::U64(x) => Some(x as f64),
            Value::I64(x) => Some(x as f64),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) if x >= 0 => Some(x as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a map, if it is one.
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Map lookup by key (`Null` for missing keys, mirroring
    /// `serde_json::Value` indexing).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|v| v.get(i)).unwrap_or(&NULL)
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the data model.
    fn serialize(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the data model.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Fetches a struct field from a serialized map (derive-macro helper).
///
/// Missing keys resolve to [`Value::Null`] so `Option` fields tolerate
/// omission.
///
/// # Errors
///
/// Returns [`Error`] when `value` is not a map at all.
pub fn field<'v>(value: &'v Value, name: &str) -> Result<&'v Value, Error> {
    match value {
        Value::Map(_) => Ok(value.get(name).unwrap_or(&NULL)),
        other => Err(Error::custom(format!(
            "expected map with field `{name}`, found {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, found {value:?}"))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = match *value {
                    Value::I64(x) => x,
                    Value::U64(x) => i64::try_from(x)
                        .map_err(|_| Error::custom(format!("{x} out of i64 range")))?,
                    ref other => {
                        return Err(Error::custom(format!(
                            "expected signed integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::custom(format!("expected number, found {value:?}")))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, found {value:?}")))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, found {value:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!(
                "expected one-char string, got {s:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected sequence, found {value:?}")))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected sequence, found {value:?}")))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom(format!("expected map, found {value:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom(format!("expected map, found {value:?}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+) with $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let seq = value
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected tuple, found {value:?}")))?;
                if seq.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of {}, found {} elements", $len, seq.len()
                    )));
                }
                Ok(($($name::deserialize(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0) with 1;
    (A.0, B.1) with 2;
    (A.0, B.1, C.2) with 3;
    (A.0, B.1, C.2, D.3) with 4;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&17u32.serialize()).unwrap(), 17);
        assert_eq!(i64::deserialize(&(-4i64).serialize()).unwrap(), -4);
        assert_eq!(f64::deserialize(&2.5f64.serialize()).unwrap(), 2.5);
        assert_eq!(bool::deserialize(&true.serialize()).unwrap(), true);
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2u64), (3, 4)];
        assert_eq!(Vec::<(u32, u64)>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&o.serialize()).unwrap(), None);
        let s: BTreeSet<u32> = [3, 1, 2].into_iter().collect();
        assert_eq!(BTreeSet::<u32>::deserialize(&s.serialize()).unwrap(), s);
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(u32::deserialize(&Value::Str("x".into())).is_err());
        assert!(Vec::<u32>::deserialize(&Value::U64(3)).is_err());
        assert!(bool::deserialize(&Value::Null).is_err());
    }

    #[test]
    fn value_indexing() {
        let v = Value::Map(vec![(
            "points".into(),
            Value::Seq(vec![Value::F64(1.5), Value::U64(2)]),
        )]);
        assert_eq!(v["points"][0].as_f64(), Some(1.5));
        assert_eq!(v["points"][1].as_u64(), Some(2));
        assert_eq!(v["missing"], Value::Null);
    }
}
