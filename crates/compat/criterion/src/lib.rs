//! Offline drop-in subset of `criterion`.
//!
//! The build environment for this workspace is hermetic (no crates.io
//! access), so this crate provides the macro/API surface the benches use
//! (`Criterion`, `Bencher::iter`/`iter_batched`, `criterion_group!`,
//! `criterion_main!`, `black_box`) backed by a simple wall-clock harness:
//! a warm-up pass, then `sample_size` timed samples, reporting the median
//! per-iteration time. No statistical analysis, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup between runs (accepted for API
/// compatibility; this harness always runs setup per batch of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times closures for one benchmark.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, called in a loop, over `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate so one sample takes roughly 5ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        self.iters_per_sample =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        per_iter[per_iter.len() / 2]
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let ns = b.median_ns();
        let (value, unit) = if ns >= 1e9 {
            (ns / 1e9, "s")
        } else if ns >= 1e6 {
            (ns / 1e6, "ms")
        } else if ns >= 1e3 {
            (ns / 1e3, "µs")
        } else {
            (ns, "ns")
        };
        println!("{id:<45} time: {value:>10.3} {unit}/iter");
        self
    }
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("smoke/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        quick(&mut c);
    }

    criterion_group! {
        name = group_smoke;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    #[test]
    fn group_macro_expands_and_runs() {
        group_smoke();
    }
}
