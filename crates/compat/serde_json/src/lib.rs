//! Offline drop-in subset of `serde_json`.
//!
//! Renders and parses the offline `serde` stub's [`Value`] data model as
//! JSON. Floats are written with Rust's shortest-round-trip formatting (so
//! `from_str(to_string(x))` restores `x` bit-for-bit, the upstream
//! `float_roundtrip` behavior); infinities are written as `±1e999`, which
//! the standard float parser reads back as infinities.

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// JSON serialization / parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for this stub's data model; the `Result` mirrors upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Infallible for this stub's data model; the `Result` mirrors upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::deserialize(&value)?)
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                write_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("null");
    } else if x == f64::INFINITY {
        out.push_str("1e999");
    } else if x == f64::NEG_INFINITY {
        out.push_str("-1e999");
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting and always
        // includes a `.0` or exponent, keeping the token a JSON number that
        // parses back to the identical bits.
        out.push_str(&format!("{x:?}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent).
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-7", "2.5", "\"hi\""] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 6.02e23, -2.5, f64::MAX] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn infinities_survive() {
        let text = to_string(&f64::INFINITY).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, f64::INFINITY);
        let back: f64 = from_str(&to_string(&f64::NEG_INFINITY).unwrap()).unwrap();
        assert_eq!(back, f64::NEG_INFINITY);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Map(vec![
            (
                "xs".into(),
                Value::Seq(vec![Value::U64(1), Value::F64(2.5)]),
            ),
            ("s".into(), Value::Str("a\"b\\c\nd".into())),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn typed_containers_round_trip() {
        let rows: Vec<(u32, f64)> = vec![(1, 0.5), (2, 1.5)];
        let back: Vec<(u32, f64)> = from_str(&to_string(&rows).unwrap()).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn malformed_inputs_error() {
        for bad in ["", "{", "[1,", "\"open", "tru", "1 2", "{\"a\" 1}"] {
            assert!(from_str::<Value>(bad).is_err(), "{bad:?} parsed");
        }
    }
}
