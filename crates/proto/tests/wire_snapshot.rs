//! Byte-exact snapshot fixtures for the wire codec.
//!
//! Every [`ProtoMsg`] variant has a pinned encoding here. These bytes are
//! the compatibility contract between daemons: if any fixture changes, the
//! format changed, and `WIRE_VERSION` must be bumped so old and new
//! binaries refuse to misread each other (the graceful-rejection test at
//! the bottom is what that refusal looks like).

use smrp_net::{GroupId, NodeId};
use smrp_proto::wire::{
    decode_datagram, decode_msg, encode_datagram, encode_msg, WireError, MAX_NESTING, WIRE_VERSION,
};
use smrp_proto::{GroupMsg, ProtoMsg};

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn gm(inner: ProtoMsg) -> GroupMsg {
    GroupMsg {
        group: GroupId::new(2),
        inner,
    }
}

/// `[version][group=2 LE]` — the prefix shared by every fixture.
fn header() -> Vec<u8> {
    vec![WIRE_VERSION, 2, 0, 0, 0]
}

#[track_caller]
fn assert_snapshot(msg: ProtoMsg, body: &[u8]) {
    let msg = gm(msg);
    let mut expected = header();
    expected.extend_from_slice(body);
    let encoded = encode_msg(&msg);
    assert_eq!(encoded, expected, "encoding drifted for {:?}", msg.inner);
    assert_eq!(decode_msg(&encoded).unwrap(), msg, "round-trip failed");
}

#[test]
fn setup_snapshot() {
    assert_snapshot(
        ProtoMsg::Setup {
            path: vec![n(1), n(2), n(3)],
            idx: 1,
        },
        &[
            0, // tag
            3, 0, 0, 0, // path len
            1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, // path
            1, 0, 0, 0, // idx
        ],
    );
}

#[test]
fn leave_req_snapshot() {
    assert_snapshot(ProtoMsg::LeaveReq, &[1]);
}

#[test]
fn refresh_snapshot() {
    assert_snapshot(ProtoMsg::Refresh, &[2]);
}

#[test]
fn hello_snapshot() {
    assert_snapshot(ProtoMsg::Hello, &[3]);
}

#[test]
fn data_snapshot() {
    assert_snapshot(
        ProtoMsg::Data {
            seq: 0x0102_0304_0506_0708,
        },
        &[4, 8, 7, 6, 5, 4, 3, 2, 1],
    );
}

#[test]
fn query_snapshot() {
    assert_snapshot(
        ProtoMsg::Query {
            origin: n(4),
            path: vec![n(4), n(5)],
            delay: 1.5,
        },
        &[
            5, // tag
            4, 0, 0, 0, // origin
            2, 0, 0, 0, 4, 0, 0, 0, 5, 0, 0, 0, // path
            0, 0, 0, 0, 0, 0, 0xf8, 0x3f, // 1.5 f64 LE
        ],
    );
}

#[test]
fn query_resp_snapshot() {
    assert_snapshot(
        ProtoMsg::QueryResp {
            approach: vec![n(6)],
            approach_delay: 2.0,
            shr: 7,
            tree_delay: 0.25,
            idx: 0,
        },
        &[
            6, // tag
            1, 0, 0, 0, 6, 0, 0, 0, // approach
            0, 0, 0, 0, 0, 0, 0, 0x40, // 2.0
            7, 0, 0, 0, // shr
            0, 0, 0, 0, 0, 0, 0xd0, 0x3f, // 0.25
            0, 0, 0, 0, // idx
        ],
    );
}

#[test]
fn reliable_snapshot() {
    assert_snapshot(
        ProtoMsg::Reliable {
            seq: 9,
            base: 3,
            inner: Box::new(ProtoMsg::Refresh),
        },
        &[
            7, // tag
            9, 0, 0, 0, 0, 0, 0, 0, // seq
            3, 0, 0, 0, 0, 0, 0, 0, // base
            2, // inner Refresh
        ],
    );
}

#[test]
fn ack_snapshot() {
    assert_snapshot(ProtoMsg::Ack { seq: 1 }, &[8, 1, 0, 0, 0, 0, 0, 0, 0]);
}

#[test]
fn datagram_snapshot_carries_sender_before_group() {
    let bytes = encode_datagram(n(9), &gm(ProtoMsg::Hello));
    assert_eq!(bytes, vec![WIRE_VERSION, 9, 0, 0, 0, 2, 0, 0, 0, 3]);
    assert_eq!(
        decode_datagram(&bytes).unwrap(),
        (n(9), gm(ProtoMsg::Hello))
    );
}

#[test]
fn every_variant_round_trips() {
    let variants = vec![
        ProtoMsg::Setup {
            path: vec![n(0), n(7), n(3)],
            idx: 2,
        },
        ProtoMsg::LeaveReq,
        ProtoMsg::Refresh,
        ProtoMsg::Hello,
        ProtoMsg::Data { seq: u64::MAX },
        ProtoMsg::Query {
            origin: n(1),
            path: vec![n(1)],
            delay: 0.0,
        },
        ProtoMsg::QueryResp {
            approach: vec![],
            approach_delay: f64::MAX,
            shr: u32::MAX,
            tree_delay: f64::MIN_POSITIVE,
            idx: 41,
        },
        ProtoMsg::Reliable {
            seq: 5,
            base: 5,
            inner: Box::new(ProtoMsg::Setup {
                path: vec![n(2), n(4)],
                idx: 0,
            }),
        },
        ProtoMsg::Ack { seq: 0 },
    ];
    for inner in variants {
        let msg = gm(inner);
        let round = decode_msg(&encode_msg(&msg)).unwrap();
        assert_eq!(round, msg);
    }
}

#[test]
fn unknown_version_is_rejected_gracefully() {
    let mut bytes = encode_msg(&gm(ProtoMsg::Hello));
    bytes[0] = WIRE_VERSION + 1;
    assert_eq!(
        decode_msg(&bytes),
        Err(WireError::UnknownVersion(WIRE_VERSION + 1))
    );
    // The error carries enough to explain itself to an operator.
    let rendered = WireError::UnknownVersion(WIRE_VERSION + 1).to_string();
    assert!(rendered.contains("unknown wire version"), "{rendered}");
}

#[test]
fn unknown_tag_is_rejected() {
    let mut bytes = header();
    bytes.push(99);
    assert_eq!(decode_msg(&bytes), Err(WireError::UnknownTag(99)));
}

#[test]
fn truncation_anywhere_is_rejected_not_panicked() {
    let bytes = encode_msg(&gm(ProtoMsg::Reliable {
        seq: 1,
        base: 0,
        inner: Box::new(ProtoMsg::Setup {
            path: vec![n(1), n(2)],
            idx: 1,
        }),
    }));
    for cut in 0..bytes.len() {
        let err = decode_msg(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, WireError::Truncated | WireError::UnknownVersion(_)),
            "cut at {cut} gave {err:?}"
        );
    }
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut bytes = encode_msg(&gm(ProtoMsg::Hello));
    bytes.push(0xAB);
    assert_eq!(decode_msg(&bytes), Err(WireError::TrailingBytes(1)));
}

#[test]
fn nesting_limit_is_documented_and_enforced() {
    // Depth MAX_NESTING decodes; one deeper does not.
    let mut ok = ProtoMsg::Hello;
    for _ in 0..MAX_NESTING {
        ok = ProtoMsg::Reliable {
            seq: 0,
            base: 0,
            inner: Box::new(ok),
        };
    }
    let msg = gm(ok);
    assert_eq!(decode_msg(&encode_msg(&msg)).unwrap(), msg);

    let deeper = gm(ProtoMsg::Reliable {
        seq: 0,
        base: 0,
        inner: Box::new(msg.inner),
    });
    assert_eq!(decode_msg(&encode_msg(&deeper)), Err(WireError::TooDeep));
}
