//! Direct unit tests for the multiplexing seam: `Ctx::derive`,
//! `into_commands`, and `MultiRouter::with_lane` re-tagging.
//!
//! Before this suite, token preservation across the lane seam was only
//! covered *indirectly* — a bug would surface as a byte-level divergence
//! in the backend-equivalence suites, far from its cause. These tests
//! drive the seam in isolation through `Ctx::standalone` (the same entry
//! point the `smrpd` daemon uses) and assert the exact contract:
//!
//! * tokens allocated by derived contexts stay globally unique per node;
//! * `with_lane` re-tags lane sends as [`GroupMsg`] and re-issues lane
//!   timers under their *original* token, so a lane's later cancel still
//!   reaches the engine entry it armed;
//! * lane cancels pass through untouched.

use std::cell::Cell;

use smrp_net::{FailureScenario, Graph, GroupId, NodeId};
use smrp_proto::{GroupMsg, GroupTimer, MultiRouter, ProtoMsg, Router, RouterConfig, TimerKind};
use smrp_sim::{Ctx, NodeCommand, SimTime, TimerToken};

fn two_node_world() -> (Graph, NodeId, NodeId) {
    let mut g = Graph::with_nodes(2);
    let ids: Vec<NodeId> = g.node_ids().collect();
    g.add_link(ids[0], ids[1], 1.0).unwrap();
    (g, ids[0], ids[1])
}

#[test]
fn derived_contexts_share_one_token_counter() {
    let (graph, me, _) = two_node_world();
    let failures = FailureScenario::none();
    let counter = Cell::new(0);
    let mut outer: Ctx<'_, MultiRouter> =
        Ctx::standalone(SimTime::ZERO, me, &graph, &failures, &counter);

    let mut inner_a = outer.derive::<Router>();
    let t0 = inner_a.set_timer(SimTime::from_ms(1.0), TimerKind::HelloTick);
    let mut inner_b = outer.derive::<Router>();
    let t1 = inner_b.set_timer(SimTime::from_ms(2.0), TimerKind::RefreshTick);
    let t2 = outer.set_timer(
        SimTime::from_ms(3.0),
        GroupTimer {
            group: GroupId::new(0),
            inner: TimerKind::ExpiryCheck,
        },
    );

    assert_ne!(t0, t1, "sibling derived contexts must not collide");
    assert_ne!(t1, t2, "outer allocation must see inner allocations");
    assert_ne!(t0, t2);
    assert_eq!(counter.get(), 3, "three allocations, three tokens");
}

#[test]
fn with_lane_retags_sends_and_preserves_timer_tokens() {
    let (graph, me, peer) = two_node_world();
    let failures = FailureScenario::none();
    let counter = Cell::new(0);
    let group = GroupId::new(5);
    let mut process = MultiRouter::new(RouterConfig::default());
    let mut ctx: Ctx<'_, MultiRouter> =
        Ctx::standalone(SimTime::ZERO, me, &graph, &failures, &counter);

    let mut armed: Option<TimerToken> = None;
    process.with_lane(&mut ctx, group, |_lane, ictx| {
        ictx.send(peer, ProtoMsg::Hello);
        armed = Some(ictx.set_timer(SimTime::from_ms(10.0), TimerKind::HelloTick));
    });
    let armed = armed.expect("closure ran");

    let commands = ctx.into_commands();
    assert_eq!(commands.len(), 2);
    match &commands[0] {
        NodeCommand::Send { to, msg } => {
            assert_eq!(*to, peer);
            assert_eq!(
                *msg,
                GroupMsg {
                    group,
                    inner: ProtoMsg::Hello
                },
                "lane sends must come out tagged with the lane's group"
            );
        }
        other => panic!("expected Send first, got {other:?}"),
    }
    match &commands[1] {
        NodeCommand::Timer {
            delay,
            timer,
            token,
        } => {
            assert_eq!(*delay, SimTime::from_ms(10.0));
            assert_eq!(
                *timer,
                GroupTimer {
                    group,
                    inner: TimerKind::HelloTick
                }
            );
            assert_eq!(
                *token, armed,
                "the outer Timer command must carry the token the lane saw, \
                 or the lane's later cancel targets a timer that never existed"
            );
        }
        other => panic!("expected Timer second, got {other:?}"),
    }
}

#[test]
fn with_lane_passes_cancels_through_unchanged() {
    let (graph, me, _) = two_node_world();
    let failures = FailureScenario::none();
    let counter = Cell::new(0);
    let group = GroupId::new(0);
    let mut process = MultiRouter::new(RouterConfig::default());

    // First handler turn: the lane arms a timer.
    let mut ctx: Ctx<'_, MultiRouter> =
        Ctx::standalone(SimTime::ZERO, me, &graph, &failures, &counter);
    let mut armed: Option<TimerToken> = None;
    process.with_lane(&mut ctx, group, |_lane, ictx| {
        armed = Some(ictx.set_timer(SimTime::from_ms(50.0), TimerKind::StarvationCheck));
    });
    let armed = armed.unwrap();
    drop(ctx.into_commands());

    // A later handler turn: the lane cancels using the token it kept.
    let mut ctx: Ctx<'_, MultiRouter> =
        Ctx::standalone(SimTime::from_ms(5.0), me, &graph, &failures, &counter);
    process.with_lane(&mut ctx, group, |_lane, ictx| {
        ictx.cancel_timer(armed);
    });
    let commands = ctx.into_commands();
    assert_eq!(commands.len(), 1);
    match &commands[0] {
        NodeCommand::CancelTimer { token } => assert_eq!(*token, armed),
        other => panic!("expected CancelTimer, got {other:?}"),
    }
}

#[test]
fn interleaved_lanes_keep_distinct_tokens() {
    let (graph, me, peer) = two_node_world();
    let failures = FailureScenario::none();
    let counter = Cell::new(0);
    let mut process = MultiRouter::new(RouterConfig::default());
    let mut ctx: Ctx<'_, MultiRouter> =
        Ctx::standalone(SimTime::ZERO, me, &graph, &failures, &counter);

    let mut tokens = Vec::new();
    for g in 0..4 {
        process.with_lane(&mut ctx, GroupId::new(g), |_lane, ictx| {
            tokens.push(ictx.set_timer(SimTime::from_ms(1.0), TimerKind::HelloTick));
            ictx.send(peer, ProtoMsg::Refresh);
        });
    }
    for (i, a) in tokens.iter().enumerate() {
        for b in &tokens[i + 1..] {
            assert_ne!(a, b, "tokens leaked across lanes");
        }
    }

    // Each lane's timer came out tagged with its own group, same token.
    let timer_cmds: Vec<_> = ctx
        .into_commands()
        .into_iter()
        .filter_map(|c| match c {
            NodeCommand::Timer { timer, token, .. } => Some((timer.group, token)),
            _ => None,
        })
        .collect();
    assert_eq!(timer_cmds.len(), 4);
    for (i, (group, token)) in timer_cmds.iter().enumerate() {
        assert_eq!(*group, GroupId::new(i));
        assert_eq!(*token, tokens[i]);
    }
}
