//! Property test for the reliable-delivery layer (see `smrp_proto::reliable`):
//! duplicated and out-of-order delivery of tree-mutating control envelopes
//! must leave every router's soft state identical to a single in-order
//! delivery of the same script.
//!
//! The harness puppets neighbor `A` on a 3-node line `A — B — C`: a random
//! script of `Setup`/`Refresh`/`LeaveReq` messages is wrapped in reliable
//! envelopes and injected into `B` twice — once in sequence order, once in
//! a seeded shuffle where each envelope may arrive up to three times. The
//! reliable layer must ack, dedup and re-order so that the released
//! control sequence (and therefore the resulting tree state, including the
//! cascade `B` forwards to `C`) cannot tell the difference.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use smrp_net::{Graph, NodeId};
use smrp_proto::{ProtoMsg, Router, RouterConfig};
use smrp_sim::{NetSim, NodeBehavior, SimTime};

/// One node's structural soft state; the property compares these.
type Digest = (bool, bool, Option<NodeId>, Vec<NodeId>, bool, u32);

fn line3() -> Graph {
    let mut g = Graph::with_nodes(3);
    g.add_link(NodeId::new(0), NodeId::new(1), 1.0).unwrap();
    g.add_link(NodeId::new(1), NodeId::new(2), 1.0).unwrap();
    g
}

/// Timers stretched far past the test horizon: the property is about
/// message handling, so soft-state expiry, heartbeat checks and refresh
/// ticks must not fire mid-experiment and entangle timing with structure.
fn quiet_config() -> RouterConfig {
    RouterConfig {
        hello_interval: SimTime::from_ms(1_000.0),
        refresh_interval: SimTime::from_ms(2_000.0),
        holdtime: SimTime::from_ms(10_000.0),
        data_interval: SimTime::from_ms(1_000.0),
        starvation_limit: SimTime::from_ms(50_000.0),
        ..RouterConfig::default()
    }
}

fn script_msg(choice: u8) -> ProtoMsg {
    match choice % 3 {
        0 => ProtoMsg::Setup {
            path: vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
            idx: 1,
        },
        1 => ProtoMsg::Refresh,
        _ => ProtoMsg::LeaveReq,
    }
}

/// Delivers the scripted envelopes to `B` in the given arrival order
/// (indices into `script`, possibly repeated) and returns the structural
/// digest of all three routers after the dust settles.
fn run_delivery(script: &[ProtoMsg], arrivals: &[usize]) -> Vec<Digest> {
    let graph = line3();
    let (a, b) = (NodeId::new(0), NodeId::new(1));
    let routers: Vec<Router> = (0..3).map(|_| Router::new(quiet_config())).collect();
    let mut sim = NetSim::new(&graph, routers);

    for (k, &i) in arrivals.iter().enumerate() {
        sim.run_until(SimTime::from_ms(10.0 * (k as f64 + 1.0)));
        let envelope = ProtoMsg::Reliable {
            seq: i as u64,
            base: 0,
            inner: Box::new(script[i].clone()),
        };
        sim.with_node(b, |r, ctx| r.on_message(ctx, a, envelope));
    }
    // Long enough for the B → C cascade (reliable hops + acks) to finish,
    // short enough that no periodic timer of `quiet_config` has fired.
    sim.run_until(SimTime::from_ms(10.0 * arrivals.len() as f64 + 500.0));

    (0..3)
        .map(|i| {
            let r = sim.node(NodeId::new(i));
            (
                r.is_on_tree(),
                r.is_member(),
                r.upstream(),
                {
                    let mut d = r.downstream();
                    d.sort();
                    d
                },
                r.is_recovering(),
                r.advertised_shr(),
            )
        })
        .collect()
}

/// Arrival order for the perturbed run: every script index once, plus
/// `dups` extra copies, shuffled by a seeded Fisher–Yates.
fn perturbed_arrivals(len: usize, dups: &[usize], shuffle_seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..len).collect();
    order.extend(dups.iter().map(|d| d % len));
    let mut rng = SmallRng::seed_from_u64(shuffle_seed);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..i + 1));
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shuffled_duplicated_delivery_matches_in_order_once(
        choices in proptest::collection::vec(0u8..3, 1..7),
        dups in proptest::collection::vec(0usize..16, 0..7),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let script: Vec<ProtoMsg> = choices.iter().map(|&c| script_msg(c)).collect();

        let in_order: Vec<usize> = (0..script.len()).collect();
        let reference = run_delivery(&script, &in_order);

        let perturbed = perturbed_arrivals(script.len(), &dups, shuffle_seed);
        let shuffled = run_delivery(&script, &perturbed);

        prop_assert_eq!(reference, shuffled);
    }
}
