//! Timer-hygiene regression tests for the token/cancel engine.
//!
//! Before generation-stamped timer tokens, cancelled timers were merely
//! *filtered*: a periodic tick armed before a node failure still sat in
//! the queue, and because the engine checks node usability at fire time,
//! a quick repair let it fire after `on_reboot` had already re-armed a
//! fresh chain — two concurrent hello/refresh chains per outage,
//! compounding on every flap. These tests pin the fixed behavior: a
//! cancelled-then-refired timer cannot mutate router state, and reliable
//! lanes are garbage-collected when a neighbor is declared dead.

use smrp_net::{Graph, NodeId};
use smrp_proto::{Router, RouterConfig};
use smrp_sim::{NetSim, SimTime};

/// Line topology: S — R — M.
fn line() -> (Graph, [NodeId; 3]) {
    let mut g = Graph::with_nodes(3);
    let ids: Vec<NodeId> = g.node_ids().collect();
    g.add_link(ids[0], ids[1], 1.0).unwrap();
    g.add_link(ids[1], ids[2], 1.0).unwrap();
    (g, [ids[0], ids[1], ids[2]])
}

/// Pre-loaded S—R—M session with all periodic chains running.
fn loaded_line_sim<'a>(g: &'a Graph, [s, r, m]: [NodeId; 3]) -> NetSim<'a, Router> {
    let mut routers: Vec<Router> = (0..3)
        .map(|_| Router::new(RouterConfig::default()))
        .collect();
    routers[s.index()].set_source();
    routers[s.index()].load_state(None, &[r], false);
    routers[r.index()].load_state(Some(s), &[m], false);
    routers[m.index()].load_state(Some(r), &[], true);
    let mut sim = NetSim::new(g, routers);
    for &n in &[s, r, m] {
        sim.with_node(n, |rt, ctx| rt.start_timers(ctx));
    }
    sim
}

/// A repair faster than the hello miss window must not leave the relay
/// running doubled periodic chains.
///
/// The outage (100 ms → 102 ms) is shorter than the 10 ms hello
/// interval, so the chain link armed before the failure is still
/// in-flight at repair time. `on_reboot` re-arms every chain; if the
/// pre-failure links were only filtered rather than cancelled, the relay
/// would tick two interleaved chains for the rest of the run and its
/// hello count would come out near 2× the unfailed baseline.
#[test]
fn quick_repair_does_not_duplicate_periodic_chains() {
    let until = SimTime::from_ms(1100.0);

    let (g, ids) = line();
    let mut baseline = loaded_line_sim(&g, ids);
    baseline.run_until(until);
    let baseline_hellos = baseline.node(ids[1]).control_sent().hellos;
    assert!(
        baseline_hellos > 50,
        "sanity: chains ran ({baseline_hellos})"
    );

    let mut sim = loaded_line_sim(&g, ids);
    sim.run_until(SimTime::from_ms(100.0));
    sim.schedule_node_repair(SimTime::from_ms(102.0), ids[1]);
    sim.fail_node_now(ids[1]);
    sim.run_until(until);
    let repaired_hellos = sim.node(ids[1]).control_sent().hellos;

    let ratio = repaired_hellos as f64 / baseline_hellos as f64;
    assert!(
        ratio < 1.2,
        "stale chain survived the reboot: {repaired_hellos} hellos vs \
         baseline {baseline_hellos} ({ratio:.2}x)"
    );
    assert!(
        ratio > 0.8,
        "chains did not restart after repair: {repaired_hellos} hellos vs \
         baseline {baseline_hellos} ({ratio:.2}x)"
    );

    // And the repaired relay still behaves: on tree, serving its member.
    assert!(sim.node(ids[1]).is_on_tree());
    assert!(sim
        .node(ids[2])
        .first_delivery_after(SimTime::from_ms(1000.0))
        .is_some());
}

/// Reliable lanes must return to baseline once a neighbor is declared
/// dead — by downstream expiry at the parent, and by upstream failure
/// detection at the child.
///
/// The session is built through message-level joins so real reliable
/// traffic (Setup envelopes) opens lanes on every hop. Killing the relay
/// silences its refreshes: the source expires the relay's downstream
/// state and garbage-collects the lane, while the member's failure
/// detector reclaims its upstream lane. Neither keeps per-peer buffers
/// for a dead node.
#[test]
fn lane_count_returns_to_baseline_after_node_death() {
    let (g, [s, r, m]) = line();
    let mut routers: Vec<Router> = (0..3)
        .map(|_| Router::new(RouterConfig::default()))
        .collect();
    routers[s.index()].set_source();
    let mut sim = NetSim::new(&g, routers);

    assert_eq!(sim.node(s).reliable_lane_count(), 0, "pre-join baseline");
    assert_eq!(sim.node(m).reliable_lane_count(), 0, "pre-join baseline");

    sim.with_node(s, |rt, ctx| rt.start_timers(ctx));
    sim.with_node(m, |rt, ctx| rt.initiate_setup(ctx, vec![m, r, s], true));
    sim.run_until(SimTime::from_ms(200.0));

    // The join's reliable envelopes opened lanes along the path.
    assert!(sim.node(m).deliveries().len() > 10, "join must take");
    assert!(
        sim.node(s).reliable_lane_count() >= 1,
        "the relay's Setup opened a lane at the source"
    );
    assert!(
        sim.node(r).reliable_lane_count() >= 1,
        "the member's Setup opened a lane at the relay"
    );

    // Kill the relay for good. Its refreshes stop: the source's soft
    // state for it expires after the holdtime; the member detects the
    // dead upstream via hello silence (no plan installed, so it just
    // enters recovery).
    sim.fail_node_now(r);
    sim.run_until(SimTime::from_ms(1000.0));

    assert!(
        sim.node(s).downstream().is_empty(),
        "source must expire the dead relay's branch"
    );
    assert_eq!(
        sim.node(s).reliable_lane_count(),
        0,
        "downstream expiry must reclaim the dead relay's lane"
    );
    assert!(sim.node(m).is_recovering());
    assert_eq!(
        sim.node(m).reliable_lane_count(),
        0,
        "upstream-failure detection must reclaim the dead relay's lane"
    );
}
