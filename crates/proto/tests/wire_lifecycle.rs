//! Wire-level lifecycle integration: a realistic session on a random
//! topology driven entirely through protocol messages — joins, churn,
//! reshaping, a persistent failure and its recovery.

use smrp_core::recovery;
use smrp_core::SmrpConfig;
use smrp_net::waxman::WaxmanConfig;
use smrp_net::{FailureScenario, Graph, NodeId};
use smrp_proto::{DynamicSession, ProtoSession, RecoveryStrategy, TreeProtocol};
use smrp_sim::SimTime;

fn topology(seed: u64) -> Graph {
    WaxmanConfig::new(40)
        .alpha(0.3)
        .seed(seed)
        .generate()
        .expect("valid settings")
        .into_graph()
}

fn config() -> SmrpConfig {
    SmrpConfig {
        auto_reshape: false,
        ..SmrpConfig::default()
    }
}

#[test]
fn full_session_lifecycle_over_the_wire() {
    let graph = topology(3);
    let ids: Vec<NodeId> = graph.node_ids().collect();
    let source = ids[0];
    let mut session = DynamicSession::new(&graph, source, config()).unwrap();

    // Wave 1: five members join at staggered times.
    let wave1: Vec<NodeId> = ids.iter().copied().skip(2).step_by(7).take(5).collect();
    for &m in &wave1 {
        session.join(m).unwrap();
        session.run_for(SimTime::from_ms(40.0));
    }
    session.run_for(SimTime::from_ms(300.0));
    for &m in &wave1 {
        assert!(session.deliveries(m) > 10, "{m} starved after joining");
    }

    // Churn: two leave, two more join.
    session.leave(wave1[0]).unwrap();
    session.leave(wave1[3]).unwrap();
    let wave2: Vec<NodeId> = ids
        .iter()
        .copied()
        .skip(3)
        .step_by(11)
        .filter(|m| !session.control_tree().is_member(*m) && *m != source)
        .take(2)
        .collect();
    for &m in &wave2 {
        session.join(m).unwrap();
    }
    session.run_for(SimTime::from_ms(800.0));

    // Leavers no longer accumulate deliveries; stayers and newcomers do.
    let frozen = session.deliveries(wave1[0]);
    session.run_for(SimTime::from_ms(300.0));
    assert!(
        session.deliveries(wave1[0]) <= frozen + 2,
        "a departed member kept receiving"
    );
    for &m in &wave2 {
        assert!(session.deliveries(m) > 10, "{m} starved after joining late");
    }

    // A reshape sweep keeps the session consistent.
    let _ = session.reshape_sweep().unwrap();
    session.run_for(SimTime::from_ms(500.0));
    session
        .control_tree()
        .validate(&graph)
        .expect("control tree stays valid through the whole lifecycle");
    for m in session.control_tree().members().collect::<Vec<_>>() {
        let before = session.deliveries(m);
        session.run_for(SimTime::from_ms(200.0));
        assert!(
            session.deliveries(m) > before,
            "{m} stopped receiving after the sweep"
        );
    }
}

#[test]
fn recovery_after_failure_on_random_topology_restores_all() {
    // Across several seeds: build, fail the busiest branch, recover
    // everyone that the algorithmic engine says is recoverable.
    for seed in [11u64, 12, 13] {
        let graph = topology(seed);
        let ids: Vec<NodeId> = graph.node_ids().collect();
        let members: Vec<NodeId> = ids.iter().copied().skip(1).step_by(5).take(7).collect();
        let session = ProtoSession::build(
            &graph,
            ids[0],
            &members,
            TreeProtocol::Smrp(SmrpConfig::default()),
        )
        .unwrap();
        // Busiest source-adjacent branch.
        let tree = session.tree();
        let worst = tree
            .children(ids[0])
            .iter()
            .copied()
            .max_by_key(|c| tree.subtree_members(*c))
            .expect("tree has branches");
        let link = graph.link_between(ids[0], worst).unwrap();
        let scenario = FailureScenario::link(link);

        let report = session.run_failure(
            &scenario,
            RecoveryStrategy::LocalDetour,
            SimTime::from_ms(150.0),
            SimTime::from_ms(6000.0),
        );
        for (m, latency) in &report.restorations {
            let algorithmic =
                recovery::recover(&graph, tree, &scenario, *m, recovery::DetourKind::Local);
            match algorithmic {
                Ok(_) => {
                    // The member itself can detour; whether its fragment
                    // root repaired first or it starved and self-recovered,
                    // service must be back.
                    assert!(
                        latency.is_some(),
                        "seed {seed}: member {m} never restored at wire level"
                    );
                }
                Err(_) => {
                    // Physically unrecoverable: the wire cannot do better.
                }
            }
        }
    }
}
