//! Golden-trace regression test for the canonical Figure 1 experiment
//! under the multi-session engine.
//!
//! The single-group `MultiSession` is contractually the degenerate case
//! of `ProtoSession::run_failure_spec` — same event order, same recovery,
//! same latencies. This test pins that down at the message level: the
//! exact sequence of `Setup` sends after the A–D cut (the local-detour
//! graft propagating hop by hop) must match a golden transcript, and the
//! measured restoration latencies must equal the single-session runner's
//! to the bit. Any change to lane dispatch, timer ordering or reliable
//! sequencing that perturbs the wire behavior shows up here as a diff.

use smrp_core::SmrpConfig;
use smrp_net::FailureScenario;
use smrp_proto::{
    FailureTiming, InjectionTiming, MultiSession, ProtoSession, RecoveryStrategy, TreeProtocol,
};
use smrp_sim::{SimTime, TraceEvent, TraceLog};

/// Every post-failure `Setup` send of the Figure 1 local-detour recovery,
/// exactly as the multi-session engine emits it today. The reliable
/// envelope (seq/base) and the group tag are part of the pinned surface
/// on purpose: they are the sharding seam this test guards.
/// The whole recovery is one hop: member D (`n4`) detects the cut at
/// 130 ms (one missed hello past the 100 ms failure) and grafts straight
/// to the nearest on-tree node C (`n3`).
const GOLDEN_SETUP_SENDS: &[&str] = &["130.00ms n4->n3 GroupMsg { group: GroupId(0), inner: \
     Reliable { seq: 0, base: 0, inner: Setup { path: [NodeId(4), NodeId(3)], idx: 1 } } }"];

fn setup_sends(trace: &TraceLog, after: SimTime) -> Vec<String> {
    trace
        .entries()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Sent {
                time,
                from,
                to,
                what,
            } if *time >= after && what.contains("Setup") => {
                Some(format!("{:.2}ms {from}->{to} {what}", time.as_ms()))
            }
            _ => None,
        })
        .collect()
}

#[test]
fn figure1_local_detour_trace_is_golden() {
    let (graph, nodes) = smrp_core::paper::figure1_graph();
    let session = ProtoSession::build(
        &graph,
        nodes.s,
        &[nodes.c, nodes.d],
        TreeProtocol::Smrp(SmrpConfig::default()),
    )
    .unwrap();
    let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
    let scenario = FailureScenario::link(l_ad);
    let fail_at = SimTime::from_ms(100.0);
    let timing = InjectionTiming::Once(FailureTiming::persistent(fail_at));
    let until = SimTime::from_ms(3000.0);
    let channel = smrp_sim::ChannelSpec::perfect();

    let single = session.run_failure_spec(
        &scenario,
        RecoveryStrategy::LocalDetour,
        timing,
        &channel,
        until,
    );

    let multi = MultiSession::from_sessions(vec![session]);
    let (report, trace) = multi.run_failure_spec_traced(
        &scenario,
        RecoveryStrategy::LocalDetour,
        timing,
        &channel,
        until,
        TraceLog::new(65_536),
    );
    assert_eq!(trace.discarded(), 0, "trace capacity must hold the run");

    // M=1 equivalence: identical restorations, to the bit.
    assert_eq!(report.groups.len(), 1);
    assert_eq!(report.groups[0].restorations, single.restorations);
    assert!(report.all_restored(), "{:?}", report.groups[0].restorations);

    let actual = setup_sends(&trace, fail_at);
    assert!(
        !actual.is_empty(),
        "the local detour must graft via Setup messages"
    );
    let expected: Vec<String> = GOLDEN_SETUP_SENDS.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        actual,
        expected,
        "Setup-send trace diverged from the golden transcript.\nactual:\n{}",
        actual.join("\n")
    );
}
