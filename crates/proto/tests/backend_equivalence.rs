//! Differential tests: the production timer wheel vs the reference heap.
//!
//! The engine offers two timer backends (`smrp_sim::TimerBackend`): the
//! hierarchical wheel used everywhere, and a reference implementation
//! where timers ride the binary-heap event queue and cancellations are
//! filtered at fire time. Both share the global insertion-sequence
//! counter, so they are contractually *byte-identical* — not just
//! statistically equivalent. These tests replay the repo's golden
//! protocol scenarios under both backends and diff the full simulator
//! trace and the resulting reports, byte for byte.

use smrp_core::SmrpConfig;
use smrp_net::{FailureScenario, Graph, NodeId};
use smrp_proto::{
    FailureTiming, InjectionTiming, MultiRecoveryReport, MultiSession, ProtoSession,
    RecoveryStrategy, TreeProtocol,
};
use smrp_sim::{ChannelSpec, SimTime, TimerBackend, TraceLog};

/// Runs one multi-session failure experiment under `backend`, returning
/// the report and the full trace rendered to strings.
fn run_with_backend(
    sessions: &[ProtoSession<'_>],
    scenario: &FailureScenario,
    channel: &ChannelSpec,
    until: SimTime,
    backend: TimerBackend,
) -> (MultiRecoveryReport, Vec<String>) {
    let mut multi = MultiSession::from_sessions(sessions.to_vec());
    multi.set_timer_backend(backend);
    let (report, trace) = multi.run_failure_spec_traced(
        scenario,
        RecoveryStrategy::LocalDetour,
        InjectionTiming::Once(FailureTiming::persistent(SimTime::from_ms(100.0))),
        channel,
        until,
        TraceLog::new(1 << 20),
    );
    assert_eq!(trace.discarded(), 0, "trace capacity must hold the run");
    let lines = trace.entries().iter().map(|e| format!("{e:?}")).collect();
    (report, lines)
}

/// Asserts byte-identical traces and reports across the two backends.
fn assert_backends_agree(
    sessions: &[ProtoSession<'_>],
    scenario: &FailureScenario,
    channel: &ChannelSpec,
    until: SimTime,
) {
    let (wheel_report, wheel_trace) =
        run_with_backend(sessions, scenario, channel, until, TimerBackend::Wheel);
    let (heap_report, heap_trace) = run_with_backend(
        sessions,
        scenario,
        channel,
        until,
        TimerBackend::ReferenceHeap,
    );
    for (i, (w, h)) in wheel_trace.iter().zip(&heap_trace).enumerate() {
        assert_eq!(w, h, "trace diverged at entry {i}");
    }
    assert_eq!(wheel_trace.len(), heap_trace.len(), "trace length diverged");
    assert_eq!(
        format!("{wheel_report:?}"),
        format!("{heap_report:?}"),
        "reports diverged"
    );
    assert!(
        wheel_report.all_restored(),
        "golden cases restore: {:?}",
        wheel_report.groups
    );
}

/// Figure 1 local detour: member D grafts to C after the A–D cut.
#[test]
fn figure1_detour_is_byte_identical_across_backends() {
    let (graph, nodes) = smrp_core::paper::figure1_graph();
    let session = ProtoSession::build(
        &graph,
        nodes.s,
        &[nodes.c, nodes.d],
        TreeProtocol::Smrp(SmrpConfig::default()),
    )
    .unwrap();
    let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
    assert_backends_agree(
        &[session],
        &FailureScenario::link(l_ad),
        &ChannelSpec::perfect(),
        SimTime::from_ms(3000.0),
    );
}

/// Two sources behind one transit spine, two members behind one shared
/// conduit: the shared-fate SRLG topology from the faultlab tests.
fn shared_fate_topology() -> (Graph, [NodeId; 7]) {
    let mut g = Graph::with_nodes(7);
    let n: Vec<NodeId> = g.node_ids().collect();
    let [s0, s1, x, y, m0, m1, d] = [n[0], n[1], n[2], n[3], n[4], n[5], n[6]];
    g.add_link(s0, x, 1.0).unwrap();
    g.add_link(s1, x, 1.0).unwrap();
    g.add_link(x, y, 1.0).unwrap();
    g.add_link(y, m0, 1.0).unwrap();
    g.add_link(y, m1, 1.0).unwrap();
    g.add_link(d, x, 1.0).unwrap();
    g.add_link(d, m0, 2.0).unwrap();
    g.add_link(d, m1, 2.0).unwrap();
    (g, [s0, s1, x, y, m0, m1, d])
}

/// Shared-fate SRLG: one conduit cut severs two groups' trees at once and
/// both detours contend for the same relay — heavy same-instant timer
/// pileups across lanes, the regime where wheel slot ordering matters.
#[test]
fn shared_fate_srlg_is_byte_identical_across_backends() {
    let (graph, [s0, s1, _x, y, m0, m1, _d]) = shared_fate_topology();
    let g0 = ProtoSession::build(&graph, s0, &[m0], TreeProtocol::Spf).unwrap();
    let g1 = ProtoSession::build(&graph, s1, &[m1], TreeProtocol::Spf).unwrap();
    let l_ym0 = graph.link_between(y, m0).unwrap();
    let l_ym1 = graph.link_between(y, m1).unwrap();
    assert_backends_agree(
        &[g0, g1],
        &FailureScenario::links([l_ym0, l_ym1]),
        &ChannelSpec::perfect(),
        SimTime::from_ms(3000.0),
    );
}

/// A lossy channel multiplies retransmission timers — cancel-heavy wheel
/// traffic (every ack kills a timer). The backends must still agree on
/// every event.
#[test]
fn lossy_figure1_is_byte_identical_across_backends() {
    let (graph, nodes) = smrp_core::paper::figure1_graph();
    let session =
        ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
    let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
    assert_backends_agree(
        &[session],
        &FailureScenario::link(l_ad),
        &ChannelSpec::uniform_loss(0.1, 0xFEED),
        SimTime::from_ms(3000.0),
    );
}
