//! Cross-session isolation property for the multi-session router.
//!
//! Two groups share the Figure 1 substrate. Each group gets its own
//! random stream of membership events (leaves and re-grafts), the
//! substrate gets a shared schedule of link failures and repairs, and
//! the streams interleave in time. The property: running both groups
//! together must leave each group's final lane state — tree structure,
//! membership, advertised SHR, data deliveries and control spend —
//! identical to running that group's stream *alone* over the same
//! substrate schedule. One group's protocol activity (its grafts, its
//! prunes, its recovery traffic) must be invisible to the other's lanes.
//!
//! The channel is lossless here on purpose: a shared lossy channel
//! consumes one RNG stream across all groups, so adding a tenant shifts
//! which messages the other tenant loses — contention through the
//! substrate is expected and measured, lane corruption is not (see
//! DESIGN.md §10).

use proptest::prelude::*;
use smrp_core::paper;
use smrp_net::{Graph, GroupId, LinkId, NodeId};
use smrp_proto::{MultiRouter, ProtoSession, RouterConfig, TreeProtocol};
use smrp_sim::{NetSim, SimTime};

/// One lane's structural end state: on-tree, member, upstream,
/// downstream (sorted), advertised SHR, deliveries, control spend.
type LaneDigest = (bool, bool, Option<NodeId>, Vec<NodeId>, u32, usize, u64);

/// One group's membership event: which member (index into the group's
/// member list) and what it does. Values ≥ 2 are deliberate no-ops so
/// the generator also produces sparse streams.
#[derive(Debug, Clone, Copy)]
struct Op {
    member: u8,
    kind: u8,
}

struct GroupSpec<'g> {
    /// The group's identity — stable across the solo and combined runs,
    /// so lane state lands under the same key either way.
    id: GroupId,
    session: ProtoSession<'g>,
    members: Vec<NodeId>,
    /// Source-to-member graft path of each member on the original tree.
    paths: Vec<Vec<NodeId>>,
    ops: Vec<Op>,
    /// When this group's k-th op fires, in milliseconds.
    op_at: fn(usize) -> f64,
}

/// The member's graft path on the original tree: member first (setup
/// paths are source-routed from the initiator), then parents up to the
/// source.
fn member_path(session: &ProtoSession<'_>, member: NodeId) -> Vec<NodeId> {
    let tree = session.tree();
    let mut path = vec![member];
    let mut cur = member;
    while let Some(p) = tree.parent(cur) {
        path.push(p);
        cur = p;
    }
    path
}

fn load_group(procs: &mut [MultiRouter], session: &ProtoSession<'_>, group: GroupId) {
    let tree = session.tree();
    for n in tree.on_tree_nodes() {
        let upstream = tree.parent(n);
        let downstream: Vec<NodeId> = tree.children(n).to_vec();
        procs[n.index()]
            .lane_mut(group)
            .load_state(upstream, &downstream, tree.is_member(n));
    }
    procs[session.source().index()].lane_mut(group).set_source();
}

/// Runs the scenario hosting `groups` (one or both) and returns the
/// digest of every node's lane for group `observe`.
fn run_groups(
    graph: &Graph,
    groups: &[&GroupSpec<'_>],
    substrate: &[(SimTime, bool, LinkId)],
    observe: GroupId,
) -> Vec<LaneDigest> {
    let config = RouterConfig::default();
    let mut procs: Vec<MultiRouter> = (0..graph.node_count())
        .map(|_| MultiRouter::new(config))
        .collect();
    for g in groups {
        load_group(&mut procs, &g.session, g.id);
    }

    let mut sim = NetSim::new(graph, procs);
    for g in groups {
        let gid = g.id;
        for n in g.session.tree().on_tree_nodes() {
            sim.with_node(n, |p, ctx| {
                p.with_lane(ctx, gid, |r, ictx| r.start_timers(ictx));
            });
        }
    }
    for &(at, down, link) in substrate {
        if down {
            sim.schedule_link_failure(at, link);
        } else {
            sim.schedule_link_repair(at, link);
        }
    }

    // Interleave every hosted group's ops in absolute-time order; each
    // op fires at the same instant whether or not the other group runs.
    let mut events: Vec<(SimTime, GroupId, Op, NodeId, Vec<NodeId>)> = Vec::new();
    for g in groups {
        for (k, &op) in g.ops.iter().enumerate() {
            let mi = usize::from(op.member) % g.members.len();
            events.push((
                SimTime::from_ms((g.op_at)(k)),
                g.id,
                op,
                g.members[mi],
                g.paths[mi].clone(),
            ));
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));

    for (at, gid, op, member, path) in events {
        sim.run_until(at);
        sim.with_node(member, |p, ctx| {
            p.with_lane(ctx, gid, |r, ictx| match op.kind {
                0 => r.leave_group(),
                1 => r.initiate_setup(ictx, path.clone(), true),
                _ => {}
            });
        });
    }
    sim.run_until(SimTime::from_ms(3000.0));

    graph
        .node_ids()
        .map(|n| {
            let lane = sim.node(n).lane(observe);
            lane.map_or((false, false, None, Vec::new(), 0, 0, 0), |r| {
                let mut down = r.downstream();
                down.sort();
                (
                    r.is_on_tree(),
                    r.is_member(),
                    r.upstream(),
                    down,
                    r.advertised_shr(),
                    r.deliveries().len(),
                    r.control_sent().total(),
                )
            })
        })
        .collect()
}

fn substrate_schedule(toggles: usize, link: LinkId) -> Vec<(SimTime, bool, LinkId)> {
    (0..toggles)
        .map(|k| (SimTime::from_ms(350.0 + 400.0 * k as f64), k % 2 == 0, link))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn groups_are_isolated_under_interleaved_streams(
        raw0 in proptest::collection::vec((0u8..4, 0u8..4), 0..5),
        raw1 in proptest::collection::vec((0u8..4, 0u8..4), 0..5),
        toggles in 0usize..4,
    ) {
        let (graph, nodes) = paper::figure1_graph();
        let s0 =
            ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
        let s1 =
            ProtoSession::build(&graph, nodes.b, &[nodes.a, nodes.c], TreeProtocol::Spf).unwrap();

        let g0 = GroupSpec {
            id: GroupId::new(0),
            members: vec![nodes.c, nodes.d],
            paths: vec![member_path(&s0, nodes.c), member_path(&s0, nodes.d)],
            session: s0,
            ops: raw0.iter().map(|&(member, kind)| Op { member, kind }).collect(),
            op_at: |k| 200.0 + 300.0 * k as f64,
        };
        let g1 = GroupSpec {
            id: GroupId::new(1),
            members: vec![nodes.a, nodes.c],
            paths: vec![member_path(&s1, nodes.a), member_path(&s1, nodes.c)],
            session: s1,
            ops: raw1.iter().map(|&(member, kind)| Op { member, kind }).collect(),
            op_at: |k| 350.0 + 300.0 * k as f64,
        };
        let link = graph.link_between(nodes.a, nodes.d).unwrap();
        let substrate = substrate_schedule(toggles, link);

        let together0 = run_groups(&graph, &[&g0, &g1], &substrate, GroupId::new(0));
        let together1 = run_groups(&graph, &[&g0, &g1], &substrate, GroupId::new(1));
        let alone0 = run_groups(&graph, &[&g0], &substrate, GroupId::new(0));
        let alone1 = run_groups(&graph, &[&g1], &substrate, GroupId::new(1));

        prop_assert_eq!(together0, alone0, "group 0 saw its neighbor");
        prop_assert_eq!(together1, alone1, "group 1 saw its neighbor");
    }
}
