//! Differential regression gate for the N-level hierarchy rewrite.
//!
//! The original 2-level transit-stub recovery engine is vendored below,
//! verbatim in behavior, as `legacy`. The gate drives it and the new
//! N-level engine (via the `HierarchicalSession` wrapper at `levels = 2`)
//! through every single-link failure on a battery of seeded transit-stub
//! topologies — including the `hierarchy.csv` experiment's exact
//! parameters — and demands *identical* outcomes case by case, plus an
//! FNV-1a digest over the full outcome stream that must match bit for
//! bit. Only because this gate is green was the legacy engine allowed to
//! be deleted from `src/hierarchy.rs`.

use smrp_core::SmrpConfig;
use smrp_net::transit_stub::{TransitStubConfig, TransitStubTopology};
use smrp_net::NodeId;
use smrp_proto::hierarchy::{FailureScope, HierarchicalSession};

/// The 2-level engine exactly as it shipped before the N-level rewrite.
mod legacy {
    use smrp_core::recovery::{self, DetourKind};
    use smrp_core::{MulticastTree, SmrpConfig, SmrpError, SmrpSession};
    use smrp_net::transit_stub::{DomainId, TransitStubTopology};
    use smrp_net::{FailureScenario, Graph, LinkId, NodeId};

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FailureScope {
        Stub(DomainId),
        Transit,
    }

    #[derive(Debug, Clone)]
    struct DomainSession {
        graph: Graph,
        to_global: Vec<NodeId>,
        to_local: Vec<Option<NodeId>>,
        tree: MulticastTree,
    }

    impl DomainSession {
        fn build(
            parent: &Graph,
            nodes: &[NodeId],
            source_global: NodeId,
            members_global: &[NodeId],
            config: SmrpConfig,
        ) -> Result<Self, SmrpError> {
            let (graph, to_global) = parent.induced_subgraph(nodes);
            let mut to_local = vec![None; parent.node_count()];
            for (local_idx, &global) in to_global.iter().enumerate() {
                to_local[global.index()] = Some(NodeId::new(local_idx));
            }
            let source =
                to_local[source_global.index()].ok_or(SmrpError::UnknownNode(source_global))?;
            let mut sess = SmrpSession::new(&graph, source, config)?;
            for &m in members_global {
                let local = to_local[m.index()].ok_or(SmrpError::UnknownNode(m))?;
                if local != source {
                    sess.join(local)?;
                }
            }
            let tree = sess.tree().clone();
            Ok(DomainSession {
                graph,
                to_global,
                to_local,
                tree,
            })
        }

        fn localize_scenario(&self, parent: &Graph, scenario: &FailureScenario) -> FailureScenario {
            let mut local = FailureScenario::none();
            for n in scenario.failed_nodes() {
                if let Some(l) = self.to_local[n.index()] {
                    local.fail_node(l);
                }
            }
            for lk in scenario.failed_links() {
                let link = parent.link(lk);
                let (Some(a), Some(b)) = (
                    self.to_local[link.a().index()],
                    self.to_local[link.b().index()],
                ) else {
                    continue;
                };
                if let Some(local_link) = self.graph.link_between(a, b) {
                    local.fail_link(local_link);
                }
            }
            local
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    pub struct HierarchicalRecovery {
        pub scope: FailureScope,
        pub affected_members: Vec<NodeId>,
        pub restoration_paths: Vec<Vec<NodeId>>,
        pub recovery_distance: f64,
        pub domains_involved: usize,
    }

    #[derive(Debug, Clone)]
    pub struct HierarchicalSession<'t> {
        topo: &'t TransitStubTopology,
        stubs: Vec<Option<DomainSession>>,
        transit: DomainSession,
        members: Vec<NodeId>,
    }

    impl<'t> HierarchicalSession<'t> {
        pub fn build(
            topo: &'t TransitStubTopology,
            source: NodeId,
            members: &[NodeId],
            config: SmrpConfig,
        ) -> Result<Self, SmrpError> {
            let graph = topo.graph();
            let source_domain = topo.domain_of(source);
            if source_domain == topo.transit_domain().id() {
                return Err(SmrpError::InvalidConfig {
                    name: "source",
                    reason: "the source must live in a stub domain",
                });
            }

            let mut stubs: Vec<Option<DomainSession>> = vec![None; topo.domains().len()];
            let mut active_agents: Vec<(DomainId, NodeId)> = Vec::new();

            for stub in topo.stub_domains() {
                let mut domain_members: Vec<NodeId> = members
                    .iter()
                    .copied()
                    .filter(|m| topo.domain_of(*m) == stub.id())
                    .collect();
                let hosts_source = stub.id() == source_domain;
                if domain_members.is_empty() && !hosts_source {
                    continue;
                }
                let (border, _) = stub.attachment().expect("stub domains have attachments");
                if hosts_source {
                    if !domain_members.contains(&border) && border != source {
                        domain_members.push(border);
                    }
                    let sess =
                        DomainSession::build(graph, stub.nodes(), source, &domain_members, config)?;
                    stubs[stub.id().index()] = Some(sess);
                } else {
                    let sess =
                        DomainSession::build(graph, stub.nodes(), border, &domain_members, config)?;
                    stubs[stub.id().index()] = Some(sess);
                }
                active_agents.push((stub.id(), border));
            }

            let (source_agent, _) = topo.domains()[source_domain.index()]
                .attachment()
                .expect("source domain is a stub");
            let mut transit_nodes: Vec<NodeId> = topo.transit_domain().nodes().to_vec();
            for &(_, agent) in &active_agents {
                transit_nodes.push(agent);
            }
            let transit_members: Vec<NodeId> = active_agents
                .iter()
                .map(|&(_, a)| a)
                .filter(|&a| a != source_agent)
                .collect();
            let transit = DomainSession::build(
                graph,
                &transit_nodes,
                source_agent,
                &transit_members,
                config,
            )?;

            Ok(HierarchicalSession {
                topo,
                stubs,
                transit,
                members: members.to_vec(),
            })
        }

        pub fn domain_of_link(&self, link: LinkId) -> FailureScope {
            let l = self.topo.graph().link(link);
            let da = self.topo.domain_of(l.a());
            let db = self.topo.domain_of(l.b());
            let transit_id = self.topo.transit_domain().id();
            if da == db && da != transit_id {
                FailureScope::Stub(da)
            } else {
                FailureScope::Transit
            }
        }

        fn members_in_stub(&self, domain: DomainId) -> Vec<NodeId> {
            self.members
                .iter()
                .copied()
                .filter(|m| self.topo.domain_of(*m) == domain)
                .collect()
        }

        pub fn recover(&self, link: LinkId) -> Result<HierarchicalRecovery, String> {
            let scope = self.domain_of_link(link);
            let graph = self.topo.graph();
            let scenario = FailureScenario::link(link);

            let (session, affected_members) = match scope {
                FailureScope::Stub(d) => {
                    let Some(sess) = self.stubs[d.index()].as_ref() else {
                        return Ok(HierarchicalRecovery {
                            scope,
                            affected_members: Vec::new(),
                            restoration_paths: Vec::new(),
                            recovery_distance: 0.0,
                            domains_involved: 0,
                        });
                    };
                    (sess, self.members_in_stub(d))
                }
                FailureScope::Transit => (&self.transit, Vec::new()),
            };

            let local_scenario = session.localize_scenario(graph, &scenario);
            if local_scenario.is_empty() {
                return Ok(HierarchicalRecovery {
                    scope,
                    affected_members: Vec::new(),
                    restoration_paths: Vec::new(),
                    recovery_distance: 0.0,
                    domains_involved: 0,
                });
            }

            let mut paths = Vec::new();
            let mut total_rd = 0.0;
            let mut any_affected = false;
            for n in session.tree.on_tree_nodes() {
                let Some(p) = session.tree.parent(n) else {
                    continue;
                };
                let Some(l) = session.graph.link_between(n, p) else {
                    continue;
                };
                if local_scenario.link_usable(&session.graph, l) {
                    continue;
                }
                any_affected = true;
                let rec = recovery::recover(
                    &session.graph,
                    &session.tree,
                    &local_scenario,
                    n,
                    DetourKind::Local,
                )
                .map_err(|e| format!("fragment at {n} cannot recover inside its domain: {e}"))?;
                total_rd += rec.recovery_distance();
                paths.push(
                    rec.restoration_path()
                        .nodes()
                        .iter()
                        .map(|ln| session.to_global[ln.index()])
                        .collect::<Vec<NodeId>>(),
                );
            }

            let affected = if any_affected {
                match scope {
                    FailureScope::Stub(_) => affected_members,
                    FailureScope::Transit => {
                        let mut out = Vec::new();
                        let local = &self.transit;
                        let affected_local =
                            recovery::affected_members(&local.graph, &local.tree, &local_scenario);
                        for a in affected_local {
                            let agent_global = local.to_global[a.index()];
                            let d = self.topo.domain_of(agent_global);
                            out.extend(self.members_in_stub(d));
                        }
                        out
                    }
                }
            } else {
                Vec::new()
            };

            Ok(HierarchicalRecovery {
                scope,
                affected_members: affected,
                restoration_paths: paths,
                recovery_distance: total_rd,
                domains_involved: usize::from(any_affected),
            })
        }
    }
}

/// FNV-1a over a byte stream; the differential digest.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn bytes(&mut self, b: &[u8]) {
        for &x in b {
            self.0 ^= u64::from(x);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// Canonical digest fields of one recovery outcome (engine-agnostic).
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    is_transit: bool,
    stub: Option<usize>,
    affected: Vec<NodeId>,
    paths: Vec<Vec<NodeId>>,
    rd_bits: u64,
    domains: usize,
    failed: bool,
}

impl Outcome {
    fn digest_into(&self, h: &mut Fnv) {
        h.u64(u64::from(self.failed));
        if self.failed {
            return;
        }
        h.u64(u64::from(self.is_transit));
        h.u64(self.stub.map_or(u64::MAX, |s| s as u64));
        h.u64(self.affected.len() as u64);
        for m in &self.affected {
            h.u64(m.index() as u64);
        }
        h.u64(self.paths.len() as u64);
        for p in &self.paths {
            h.u64(p.len() as u64);
            for n in p {
                h.u64(n.index() as u64);
            }
        }
        h.u64(self.rd_bits);
        h.u64(self.domains as u64);
    }
}

fn legacy_outcome(r: Result<legacy::HierarchicalRecovery, String>) -> Outcome {
    match r {
        Ok(rec) => Outcome {
            is_transit: matches!(rec.scope, legacy::FailureScope::Transit),
            stub: match rec.scope {
                legacy::FailureScope::Stub(d) => Some(d.index()),
                legacy::FailureScope::Transit => None,
            },
            affected: rec.affected_members,
            paths: rec.restoration_paths,
            rd_bits: rec.recovery_distance.to_bits(),
            domains: rec.domains_involved,
            failed: false,
        },
        Err(_) => Outcome {
            is_transit: false,
            stub: None,
            affected: Vec::new(),
            paths: Vec::new(),
            rd_bits: 0,
            domains: 0,
            failed: true,
        },
    }
}

fn new_outcome(r: Result<smrp_proto::hierarchy::HierarchicalRecovery, String>) -> Outcome {
    match r {
        Ok(rec) => Outcome {
            is_transit: matches!(rec.scope, FailureScope::Transit),
            stub: match rec.scope {
                FailureScope::Stub(d) => Some(d.index()),
                FailureScope::Transit => None,
            },
            affected: rec.affected_members,
            paths: rec.restoration_paths,
            rd_bits: rec.recovery_distance.to_bits(),
            domains: rec.domains_involved,
            failed: false,
        },
        Err(_) => Outcome {
            is_transit: false,
            stub: None,
            affected: Vec::new(),
            paths: Vec::new(),
            rd_bits: 0,
            domains: 0,
            failed: true,
        },
    }
}

/// One differential case: a topology plus source/member picks.
struct Case {
    name: &'static str,
    topo: TransitStubTopology,
    source: NodeId,
    members: Vec<NodeId>,
}

/// The `hierarchy.csv` experiment's exact member-selection scheme.
fn experiment_pick(topo: &TransitStubTopology) -> (NodeId, Vec<NodeId>) {
    let stubs: Vec<_> = topo.stub_domains().collect();
    let source = stubs[0].nodes()[0];
    let members: Vec<_> = stubs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .flat_map(|(_, s)| s.nodes().iter().copied().skip(2).take(2))
        .filter(|&m| m != source)
        .collect();
    (source, members)
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();
    // The hierarchy.csv experiment's five seeded topologies, with its
    // exact generation parameters and member picks.
    for seed in 0..5u64 {
        let topo = TransitStubConfig::new()
            .transit_nodes(4)
            .stubs_per_transit_node(2)
            .stub_nodes(8)
            .extra_edge_prob(0.45)
            .seed(seed * 71 + 13)
            .generate()
            .unwrap();
        let (source, members) = experiment_pick(&topo);
        out.push(Case {
            name: "hierarchy_csv",
            topo,
            source,
            members,
        });
    }
    // Denser and sparser shapes to stress attribution and confinement.
    for (name, tn, spt, sn, p, seed) in [
        ("dense", 3usize, 3usize, 6usize, 0.6f64, 101u64),
        ("sparse", 5, 1, 4, 0.1, 202),
        ("wide", 6, 2, 10, 0.4, 303),
    ] {
        let topo = TransitStubConfig::new()
            .transit_nodes(tn)
            .stubs_per_transit_node(spt)
            .stub_nodes(sn)
            .extra_edge_prob(p)
            .seed(seed)
            .generate()
            .unwrap();
        let (source, members) = experiment_pick(&topo);
        out.push(Case {
            name,
            topo,
            source,
            members,
        });
    }
    out
}

/// Every single-link failure must produce an identical outcome under the
/// legacy 2-level engine and the N-level engine at levels = 2.
#[test]
fn nlevel_at_two_levels_matches_legacy_case_for_case() {
    for case in cases() {
        let old = legacy::HierarchicalSession::build(
            &case.topo,
            case.source,
            &case.members,
            SmrpConfig::default(),
        )
        .expect("legacy builds");
        let new = HierarchicalSession::build(
            &case.topo,
            case.source,
            &case.members,
            SmrpConfig::default(),
        )
        .expect("wrapper builds");
        for link in case.topo.graph().link_ids() {
            let a = legacy_outcome(old.recover(link));
            let b = new_outcome(new.recover(link));
            assert_eq!(
                a, b,
                "case {} link {link}: legacy and N-level outcomes diverge",
                case.name
            );
        }
    }
}

/// The full outcome stream digests identically — the bit-for-bit gate the
/// legacy removal was conditioned on.
#[test]
fn differential_digest_is_identical() {
    let mut old_h = Fnv::new();
    let mut new_h = Fnv::new();
    for case in cases() {
        let old = legacy::HierarchicalSession::build(
            &case.topo,
            case.source,
            &case.members,
            SmrpConfig::default(),
        )
        .unwrap();
        let new = HierarchicalSession::build(
            &case.topo,
            case.source,
            &case.members,
            SmrpConfig::default(),
        )
        .unwrap();
        for link in case.topo.graph().link_ids() {
            legacy_outcome(old.recover(link)).digest_into(&mut old_h);
            new_outcome(new.recover(link)).digest_into(&mut new_h);
        }
    }
    assert_eq!(
        format!("{:016x}", old_h.0),
        format!("{:016x}", new_h.0),
        "differential digest diverged"
    );
}

/// Link attribution (the routing-visible domain metadata) agrees on every
/// link of every case.
#[test]
fn attribution_matches_legacy_on_every_link() {
    for case in cases() {
        let old = legacy::HierarchicalSession::build(
            &case.topo,
            case.source,
            &case.members,
            SmrpConfig::default(),
        )
        .unwrap();
        let new = HierarchicalSession::build(
            &case.topo,
            case.source,
            &case.members,
            SmrpConfig::default(),
        )
        .unwrap();
        for link in case.topo.graph().link_ids() {
            let a = old.domain_of_link(link);
            let b = new.domain_of_link(link);
            let same = matches!(
                (a, b),
                (legacy::FailureScope::Transit, FailureScope::Transit)
            ) || matches!(
                (a, b),
                (legacy::FailureScope::Stub(x), FailureScope::Stub(y)) if x == y
            );
            assert!(same, "case {}: attribution diverged on {link}", case.name);
        }
    }
}
