//! Reliable delivery for tree-mutating control messages.
//!
//! SMRP's soft state is self-healing against *stale* information — a lost
//! `Refresh` is covered by the next one — but not against unlucky streaks:
//! over a degraded channel (see `smrp_sim::channel`) a run of lost
//! refreshes expires live branches, a lost recovery `Setup` strands a
//! member until starvation kicks in, and a duplicated or reordered
//! `Setup`/`LeaveReq` pair can install state the tree oracle rejects. This
//! module adds the standard cure, scoped to the three tree-mutating
//! messages (`Setup`, `LeaveReq`, `Refresh`):
//!
//! * **per-neighbor sequence numbers** — each `(sender, receiver)` pair
//!   has its own monotone lane;
//! * **acks + retransmission** — every envelope is acked individually;
//!   unacked envelopes are retransmitted with exponential backoff
//!   ([`ReliableConfig::backoff`]) starting from an adaptive RTO
//!   (≈4× the one-way link delay, floored at
//!   [`ReliableConfig::rto_floor`]) up to [`ReliableConfig::max_retries`]
//!   attempts;
//! * **duplicate suppression + in-order release** — receivers ack every
//!   copy but deliver each sequence number exactly once, in sequence
//!   order, buffering gaps; re-applied control traffic therefore cannot
//!   corrupt SHR/N bookkeeping (the property test in
//!   `tests/reliable_prop.rs` pins this down);
//! * **a bounded retry budget** — a sender that gives up records a
//!   *retry exhaustion*, which lossy campaigns treat as a failure signal.
//!   Envelopes addressed to a neighbor the router has since declared dead
//!   are *abandoned* instead (not exhaustion: giving up on a corpse is
//!   correct behavior);
//! * **gap skipping via a lane base** — every envelope carries the
//!   sender's lane *base*: the lowest sequence number still pending toward
//!   that receiver (or the next unused one if nothing is pending). An
//!   abandoned or exhausted envelope leaves a hole the receiver would
//!   otherwise wait on forever, wedging the lane and silently burying all
//!   later traffic from that neighbor. Seeing `base` beyond its cursor,
//!   the receiver releases anything it had buffered below it (those were
//!   received and acked — the sender moved on *because* of the acks) and
//!   advances to `base`, unwedging the lane.
//!
//! With the default budget (8 retries) the probability that uniform 10%
//! loss defeats one envelope is `0.1^9 = 1e-9` — a 1000-scenario campaign
//! sees none.

use std::collections::BTreeMap;

use smrp_net::NodeId;
use smrp_sim::SimTime;

use crate::messages::ProtoMsg;

/// Tunables of the reliable-delivery layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliableConfig {
    /// Minimum retransmission timeout. The effective RTO per neighbor is
    /// `max(rto_floor, 4 × one-way link delay)` — Waxman links in this
    /// workspace carry tens of milliseconds of propagation delay, so a
    /// fixed RTO would retransmit spuriously on long links.
    pub rto_floor: SimTime,
    /// Multiplier applied to the RTO after each retransmission.
    pub backoff: f64,
    /// Retransmissions allowed before the sender gives up (the envelope is
    /// sent `1 + max_retries` times in total).
    pub max_retries: u32,
}

impl Default for ReliableConfig {
    /// 15 ms floor, ×1.5 backoff, 8 retries: survives 10% uniform loss
    /// with failure probability 1e-9 per envelope while giving up within
    /// ~0.7 s of a genuinely dead neighbor.
    fn default() -> Self {
        ReliableConfig {
            rto_floor: SimTime::from_ms(15.0),
            backoff: 1.5,
            max_retries: 8,
        }
    }
}

impl ReliableConfig {
    /// Retransmission delay before attempt `attempts + 1`, given the
    /// neighbor's base RTO.
    pub fn delay_for_attempt(&self, base_rto: SimTime, attempts: u32) -> SimTime {
        SimTime::from_ms(base_rto.as_ms() * self.backoff.powi(attempts as i32))
    }
}

/// What the reliable layer has done so far on one router.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityCounters {
    /// Envelopes registered for first transmission.
    pub sent: u64,
    /// Retransmissions fired.
    pub retransmits: u64,
    /// Duplicate envelopes suppressed on receive.
    pub dup_drops: u64,
    /// Envelopes given up on after exhausting the retry budget.
    pub retry_exhaustions: u64,
    /// Envelopes abandoned because the neighbor was declared dead.
    pub abandoned: u64,
    /// Acks sent back to envelope senders.
    pub acks_sent: u64,
    /// Acks received for pending envelopes.
    pub acks_received: u64,
}

#[derive(Debug, Clone)]
struct PendingTx {
    msg: ProtoMsg,
    attempts: u32,
}

#[derive(Debug, Clone, Default)]
struct RxLane {
    next: u64,
    buffered: BTreeMap<u64, ProtoMsg>,
}

/// Outcome of a retransmission-timer firing.
#[derive(Debug, Clone, PartialEq)]
pub enum RetransmitAction {
    /// Send this copy again, then re-arm after the given delay.
    Retry {
        /// The envelope payload to resend.
        msg: ProtoMsg,
        /// Backoff delay until the *next* retransmission check.
        delay: SimTime,
    },
    /// The retry budget is exhausted; the envelope was dropped and
    /// counted. The caller should surface this through health reporting.
    Exhausted,
    /// The envelope was acked or abandoned meanwhile: nothing to do.
    Done,
}

/// Per-router reliable-delivery state: tx lanes, rx lanes, counters.
#[derive(Debug, Clone, Default)]
pub struct ReliableEndpoint {
    next_tx: BTreeMap<NodeId, u64>,
    pending: BTreeMap<(NodeId, u64), PendingTx>,
    rx: BTreeMap<NodeId, RxLane>,
    counters: ReliabilityCounters,
}

impl ReliableEndpoint {
    /// Counter snapshot.
    pub fn counters(&self) -> ReliabilityCounters {
        self.counters
    }

    /// Registers `msg` for reliable delivery to `to` and returns the
    /// sequence number to stamp on the envelope. The caller performs the
    /// actual send and arms the first retransmission timer.
    pub fn register(&mut self, to: NodeId, msg: ProtoMsg) -> u64 {
        let seq = self.next_tx.entry(to).or_insert(0);
        let assigned = *seq;
        *seq += 1;
        self.pending
            .insert((to, assigned), PendingTx { msg, attempts: 0 });
        self.counters.sent += 1;
        assigned
    }

    /// Notes that `from` acked sequence `seq`.
    pub fn on_ack(&mut self, from: NodeId, seq: u64) {
        if self.pending.remove(&(from, seq)).is_some() {
            self.counters.acks_received += 1;
        }
    }

    /// Notes that an ack is being sent (bookkeeping only).
    pub fn note_ack_sent(&mut self) {
        self.counters.acks_sent += 1;
    }

    /// The lane base to stamp on an envelope toward `to`: the lowest
    /// sequence number still pending, or the next unused number if nothing
    /// is pending. Everything below the base is settled from the sender's
    /// point of view — acked, abandoned, or exhausted.
    pub fn base_for(&self, to: NodeId) -> u64 {
        self.pending
            .range((to, 0)..=(to, u64::MAX))
            .next()
            .map_or_else(|| self.next_tx.get(&to).copied().unwrap_or(0), |(k, _)| k.1)
    }

    /// Whether the envelope `(to, seq)` is still awaiting an ack (i.e. not
    /// yet acked, abandoned, or exhausted).
    pub fn is_pending(&self, to: NodeId, seq: u64) -> bool {
        self.pending.contains_key(&(to, seq))
    }

    /// Processes a received envelope `(seq, base, inner)` from `from` and
    /// returns the payloads now releasable *in sequence order* (empty for
    /// duplicates and out-of-order arrivals that still have a gap ahead).
    ///
    /// A `base` beyond the lane cursor means the gap in between was
    /// abandoned by the sender and will never be retried: buffered
    /// payloads below `base` release immediately (they *were* delivered
    /// and acked — the sender's base moved past them because of those
    /// acks) and the cursor jumps to `base`.
    pub fn on_receive(
        &mut self,
        from: NodeId,
        seq: u64,
        base: u64,
        inner: ProtoMsg,
    ) -> Vec<ProtoMsg> {
        let lane = self.rx.entry(from).or_default();
        let mut released = Vec::new();
        if base > lane.next {
            let settled: Vec<u64> = lane.buffered.range(..base).map(|(&s, _)| s).collect();
            for s in settled {
                if let Some(msg) = lane.buffered.remove(&s) {
                    released.push(msg);
                }
            }
            lane.next = base;
        }
        if seq < lane.next || lane.buffered.contains_key(&seq) {
            self.counters.dup_drops += 1;
            return released;
        }
        lane.buffered.insert(seq, inner);
        while let Some(msg) = lane.buffered.remove(&lane.next) {
            released.push(msg);
            lane.next += 1;
        }
        released
    }

    /// Decides what to do when the retransmission timer for `(to, seq)`
    /// fires.
    pub fn on_retransmit_timer(
        &mut self,
        to: NodeId,
        seq: u64,
        config: &ReliableConfig,
        base_rto: SimTime,
    ) -> RetransmitAction {
        let Some(entry) = self.pending.get_mut(&(to, seq)) else {
            return RetransmitAction::Done;
        };
        if entry.attempts >= config.max_retries {
            self.pending.remove(&(to, seq));
            self.counters.retry_exhaustions += 1;
            return RetransmitAction::Exhausted;
        }
        entry.attempts += 1;
        let attempts = entry.attempts;
        let msg = entry.msg.clone();
        self.counters.retransmits += 1;
        RetransmitAction::Retry {
            msg,
            delay: config.delay_for_attempt(base_rto, attempts),
        }
    }

    /// Drops every pending envelope addressed to `peer` without counting
    /// exhaustion — called when the router declares `peer` dead (upstream
    /// failure detection) or re-points its upstream elsewhere. Retransmit
    /// timers for the dropped entries become no-ops.
    pub fn abandon(&mut self, peer: NodeId) {
        let keys: Vec<(NodeId, u64)> = self
            .pending
            .range((peer, 0)..=(peer, u64::MAX))
            .map(|(&k, _)| k)
            .collect();
        self.counters.abandoned += keys.len() as u64;
        for k in keys {
            self.pending.remove(&k);
        }
    }

    /// Pending `(neighbor, seq)` pairs — used by `on_reboot` to re-arm
    /// retransmission timers that died with the node.
    pub fn pending_keys(&self) -> Vec<(NodeId, u64)> {
        self.pending.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sequences_are_per_neighbor() {
        let mut ep = ReliableEndpoint::default();
        assert_eq!(ep.register(n(1), ProtoMsg::Refresh), 0);
        assert_eq!(ep.register(n(1), ProtoMsg::Refresh), 1);
        assert_eq!(ep.register(n(2), ProtoMsg::Refresh), 0);
        assert_eq!(ep.counters().sent, 3);
    }

    #[test]
    fn ack_clears_pending() {
        let mut ep = ReliableEndpoint::default();
        let seq = ep.register(n(1), ProtoMsg::LeaveReq);
        ep.on_ack(n(1), seq);
        assert_eq!(ep.counters().acks_received, 1);
        let act = ep.on_retransmit_timer(
            n(1),
            seq,
            &ReliableConfig::default(),
            SimTime::from_ms(15.0),
        );
        assert_eq!(act, RetransmitAction::Done);
    }

    #[test]
    fn unacked_envelope_retries_with_backoff_then_exhausts() {
        let mut ep = ReliableEndpoint::default();
        let cfg = ReliableConfig {
            rto_floor: SimTime::from_ms(10.0),
            backoff: 2.0,
            max_retries: 2,
        };
        let seq = ep.register(n(1), ProtoMsg::Refresh);
        let rto = SimTime::from_ms(10.0);
        match ep.on_retransmit_timer(n(1), seq, &cfg, rto) {
            RetransmitAction::Retry { delay, .. } => assert_eq!(delay, SimTime::from_ms(20.0)),
            other => panic!("expected retry, got {other:?}"),
        }
        match ep.on_retransmit_timer(n(1), seq, &cfg, rto) {
            RetransmitAction::Retry { delay, .. } => assert_eq!(delay, SimTime::from_ms(40.0)),
            other => panic!("expected retry, got {other:?}"),
        }
        assert_eq!(
            ep.on_retransmit_timer(n(1), seq, &cfg, rto),
            RetransmitAction::Exhausted
        );
        assert_eq!(ep.counters().retransmits, 2);
        assert_eq!(ep.counters().retry_exhaustions, 1);
        // The entry is gone; a late timer is a no-op.
        assert_eq!(
            ep.on_retransmit_timer(n(1), seq, &cfg, rto),
            RetransmitAction::Done
        );
    }

    #[test]
    fn receiver_releases_in_order_and_drops_dups() {
        let mut ep = ReliableEndpoint::default();
        // seq 1 arrives first: buffered, nothing released.
        assert!(ep.on_receive(n(3), 1, 0, ProtoMsg::LeaveReq).is_empty());
        // seq 0 fills the gap: both release, in order.
        let released = ep.on_receive(n(3), 0, 0, ProtoMsg::Refresh);
        assert_eq!(released, vec![ProtoMsg::Refresh, ProtoMsg::LeaveReq]);
        // Retransmitted copies of both are suppressed.
        assert!(ep.on_receive(n(3), 0, 0, ProtoMsg::Refresh).is_empty());
        assert!(ep.on_receive(n(3), 1, 0, ProtoMsg::LeaveReq).is_empty());
        assert_eq!(ep.counters().dup_drops, 2);
    }

    #[test]
    fn buffered_duplicate_is_suppressed_too() {
        let mut ep = ReliableEndpoint::default();
        assert!(ep.on_receive(n(3), 2, 0, ProtoMsg::Refresh).is_empty());
        assert!(ep.on_receive(n(3), 2, 0, ProtoMsg::Refresh).is_empty());
        assert_eq!(ep.counters().dup_drops, 1);
    }

    #[test]
    fn base_unwedges_lane_after_abandoned_gap() {
        let mut ep = ReliableEndpoint::default();
        // Sender side: seq 0 is lost in flight and then abandoned (e.g.
        // the sender declared this hop's upstream dead); seq 1 and 2 are
        // registered afterwards.
        let mut tx = ReliableEndpoint::default();
        assert_eq!(tx.register(n(3), ProtoMsg::LeaveReq), 0);
        tx.abandon(n(3));
        assert_eq!(tx.register(n(3), ProtoMsg::Refresh), 1);
        assert_eq!(tx.base_for(n(3)), 1);
        // Receiver: seq 1 stamped with base 1 releases immediately — the
        // lane skips the abandoned seq 0 instead of waiting forever.
        let released = ep.on_receive(n(3), 1, tx.base_for(n(3)), ProtoMsg::Refresh);
        assert_eq!(released, vec![ProtoMsg::Refresh]);
        // With nothing pending, the base is the next unused number, so a
        // retransmitted copy of seq 1 is still recognized as a duplicate.
        tx.on_ack(n(3), 1);
        assert_eq!(tx.base_for(n(3)), 2);
        assert!(ep
            .on_receive(n(3), 1, tx.base_for(n(3)), ProtoMsg::Refresh)
            .is_empty());
        assert_eq!(ep.counters().dup_drops, 1);
    }

    #[test]
    fn base_jump_releases_acked_buffered_payloads() {
        let mut ep = ReliableEndpoint::default();
        // seq 1 arrived (and was acked) but seq 0 never did; it buffers.
        assert!(ep.on_receive(n(3), 1, 0, ProtoMsg::LeaveReq).is_empty());
        // The sender abandons seq 0; its next envelope carries base 2
        // (seq 1 was acked, nothing pending). The buffered seq 1 must be
        // *applied*, not discarded — the sender believes it was delivered.
        let released = ep.on_receive(n(3), 2, 2, ProtoMsg::Refresh);
        assert_eq!(released, vec![ProtoMsg::LeaveReq, ProtoMsg::Refresh]);
    }

    #[test]
    fn abandon_drops_only_that_peer() {
        let mut ep = ReliableEndpoint::default();
        let s1 = ep.register(n(1), ProtoMsg::Refresh);
        let s2 = ep.register(n(2), ProtoMsg::Refresh);
        ep.abandon(n(1));
        assert_eq!(ep.counters().abandoned, 1);
        let cfg = ReliableConfig::default();
        let rto = SimTime::from_ms(15.0);
        assert_eq!(
            ep.on_retransmit_timer(n(1), s1, &cfg, rto),
            RetransmitAction::Done
        );
        assert!(matches!(
            ep.on_retransmit_timer(n(2), s2, &cfg, rto),
            RetransmitAction::Retry { .. }
        ));
        assert_eq!(ep.pending_keys(), vec![(n(2), s2)]);
    }
}
