//! Reliable delivery for tree-mutating control messages.
//!
//! SMRP's soft state is self-healing against *stale* information — a lost
//! `Refresh` is covered by the next one — but not against unlucky streaks:
//! over a degraded channel (see `smrp_sim::channel`) a run of lost
//! refreshes expires live branches, a lost recovery `Setup` strands a
//! member until starvation kicks in, and a duplicated or reordered
//! `Setup`/`LeaveReq` pair can install state the tree oracle rejects. This
//! module adds the standard cure, scoped to the three tree-mutating
//! messages (`Setup`, `LeaveReq`, `Refresh`):
//!
//! * **per-neighbor sequence numbers** — each `(sender, receiver)` pair
//!   has its own monotone lane;
//! * **acks + retransmission** — every envelope is acked individually;
//!   unacked envelopes are retransmitted with exponential backoff
//!   ([`ReliableConfig::backoff`]) starting from an adaptive RTO
//!   (≈4× the one-way link delay, floored at
//!   [`ReliableConfig::rto_floor`]) up to [`ReliableConfig::max_retries`]
//!   attempts;
//! * **duplicate suppression + in-order release** — receivers ack every
//!   copy but deliver each sequence number exactly once, in sequence
//!   order, buffering gaps; re-applied control traffic therefore cannot
//!   corrupt SHR/N bookkeeping (the property test in
//!   `tests/reliable_prop.rs` pins this down);
//! * **a bounded retry budget** — a sender that gives up records a
//!   *retry exhaustion*, which lossy campaigns treat as a failure signal.
//!   Envelopes addressed to a neighbor the router has since declared dead
//!   are *abandoned* instead (not exhaustion: giving up on a corpse is
//!   correct behavior);
//! * **gap skipping via a lane base** — every envelope carries the
//!   sender's lane *base*: the lowest sequence number still pending toward
//!   that receiver (or the next unused one if nothing is pending). An
//!   abandoned or exhausted envelope leaves a hole the receiver would
//!   otherwise wait on forever, wedging the lane and silently burying all
//!   later traffic from that neighbor. Seeing `base` beyond its cursor,
//!   the receiver releases anything it had buffered below it (those were
//!   received and acked — the sender moved on *because* of the acks) and
//!   advances to `base`, unwedging the lane;
//! * **dead-neighbor garbage collection** — when the router declares a
//!   neighbor dead ([`ReliableEndpoint::gc_peer`]) its receive lane and
//!   pending envelopes are dropped wholesale, so long lossy campaigns
//!   with churn stay bounded. The *transmit* sequence counter survives:
//!   a neighbor declared dead by mistake still holds our old receive
//!   cursor, and restarting at seq 0 would make it drop everything we
//!   send as duplicates forever.
//!
//! State lives in a struct-of-arrays neighbor arena: `peers[slot]` names
//! the neighbor, and parallel vectors carry that slot's tx counter,
//! pending envelopes and receive lane. Node degree is small, so slot
//! lookup is a linear scan over a few `NodeId`s — cheaper and far more
//! cache-friendly than the `BTreeMap<(NodeId, u64), _>` walks it
//! replaces.
//!
//! With the default budget (8 retries) the probability that uniform 10%
//! loss defeats one envelope is `0.1^9 = 1e-9` — a 1000-scenario campaign
//! sees none.

use smrp_net::NodeId;
use smrp_sim::{SimTime, TimerToken};

use crate::messages::ProtoMsg;

/// Tunables of the reliable-delivery layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliableConfig {
    /// Minimum retransmission timeout. The effective RTO per neighbor is
    /// `max(rto_floor, 4 × one-way link delay)` — Waxman links in this
    /// workspace carry tens of milliseconds of propagation delay, so a
    /// fixed RTO would retransmit spuriously on long links.
    pub rto_floor: SimTime,
    /// Multiplier applied to the RTO after each retransmission.
    pub backoff: f64,
    /// Retransmissions allowed before the sender gives up (the envelope is
    /// sent `1 + max_retries` times in total).
    pub max_retries: u32,
}

impl Default for ReliableConfig {
    /// 15 ms floor, ×1.5 backoff, 8 retries: survives 10% uniform loss
    /// with failure probability 1e-9 per envelope while giving up within
    /// ~0.7 s of a genuinely dead neighbor.
    fn default() -> Self {
        ReliableConfig {
            rto_floor: SimTime::from_ms(15.0),
            backoff: 1.5,
            max_retries: 8,
        }
    }
}

impl ReliableConfig {
    /// Retransmission delay before attempt `attempts + 1`, given the
    /// neighbor's base RTO.
    pub fn delay_for_attempt(&self, base_rto: SimTime, attempts: u32) -> SimTime {
        SimTime::from_ms(base_rto.as_ms() * self.backoff.powi(attempts as i32))
    }
}

/// What the reliable layer has done so far on one router.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityCounters {
    /// Envelopes registered for first transmission.
    pub sent: u64,
    /// Retransmissions fired.
    pub retransmits: u64,
    /// Duplicate envelopes suppressed on receive.
    pub dup_drops: u64,
    /// Envelopes given up on after exhausting the retry budget.
    pub retry_exhaustions: u64,
    /// Envelopes abandoned because the neighbor was declared dead.
    pub abandoned: u64,
    /// Acks sent back to envelope senders.
    pub acks_sent: u64,
    /// Acks received for pending envelopes.
    pub acks_received: u64,
}

#[derive(Debug, Clone)]
struct PendingTx {
    seq: u64,
    msg: ProtoMsg,
    attempts: u32,
    /// Engine token of the armed retransmission timer, so acks and
    /// abandonment can cancel it instead of letting a dead entry fire.
    token: Option<TimerToken>,
}

/// Outcome of a retransmission-timer firing.
#[derive(Debug, Clone, PartialEq)]
pub enum RetransmitAction {
    /// Send this copy again, then re-arm after the given delay.
    Retry {
        /// The envelope payload to resend.
        msg: ProtoMsg,
        /// Backoff delay until the *next* retransmission check.
        delay: SimTime,
    },
    /// The retry budget is exhausted; the envelope was dropped and
    /// counted. The caller should surface this through health reporting.
    Exhausted,
    /// The envelope was acked or abandoned meanwhile: nothing to do.
    Done,
}

/// Per-router reliable-delivery state: tx lanes, rx lanes, counters, laid
/// out as a struct-of-arrays neighbor arena (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct ReliableEndpoint {
    /// `peers[slot]` is the neighbor owning that slot. Slots are created
    /// on first contact and never removed (bounded by node degree).
    peers: Vec<NodeId>,
    /// Next transmit sequence number per slot. Survives [`Self::gc_peer`].
    next_tx: Vec<u64>,
    /// Unacked envelopes per slot, ascending by `seq` (registration
    /// order; sequence numbers are monotone, so pushes keep it sorted).
    pending: Vec<Vec<PendingTx>>,
    /// Receive cursor per slot: lowest sequence number not yet released.
    rx_next: Vec<u64>,
    /// Out-of-order arrivals per slot, ascending by sequence number.
    rx_buffered: Vec<Vec<(u64, ProtoMsg)>>,
    /// Whether the slot's receive lane holds live state (cleared by GC).
    rx_active: Vec<bool>,
    counters: ReliabilityCounters,
}

impl ReliableEndpoint {
    /// Counter snapshot.
    pub fn counters(&self) -> ReliabilityCounters {
        self.counters
    }

    /// The arena slot of `peer`, if one exists. Linear scan: the arena
    /// holds at most one slot per neighbor, and node degree is small.
    fn slot(&self, peer: NodeId) -> Option<usize> {
        self.peers.iter().position(|&p| p == peer)
    }

    fn slot_or_insert(&mut self, peer: NodeId) -> usize {
        if let Some(s) = self.slot(peer) {
            return s;
        }
        self.peers.push(peer);
        self.next_tx.push(0);
        self.pending.push(Vec::new());
        self.rx_next.push(0);
        self.rx_buffered.push(Vec::new());
        self.rx_active.push(false);
        self.peers.len() - 1
    }

    /// Number of neighbor lanes currently holding state: a receive lane
    /// that saw traffic (and was not garbage-collected) or at least one
    /// pending envelope. Campaign audits use this to check that lanes to
    /// dead neighbors are reclaimed.
    pub fn lane_count(&self) -> usize {
        (0..self.peers.len())
            .filter(|&s| self.rx_active[s] || !self.pending[s].is_empty())
            .count()
    }

    /// Registers `msg` for reliable delivery to `to` and returns the
    /// sequence number to stamp on the envelope. The caller performs the
    /// actual send, arms the first retransmission timer and records its
    /// token via [`Self::set_retransmit_token`].
    pub fn register(&mut self, to: NodeId, msg: ProtoMsg) -> u64 {
        let s = self.slot_or_insert(to);
        let assigned = self.next_tx[s];
        self.next_tx[s] += 1;
        self.pending[s].push(PendingTx {
            seq: assigned,
            msg,
            attempts: 0,
            token: None,
        });
        self.counters.sent += 1;
        assigned
    }

    /// Records the engine token of the retransmission timer currently
    /// armed for `(to, seq)`, returning the replaced one (if any) so the
    /// caller can cancel it. A no-op returning `None` when the envelope is
    /// no longer pending.
    pub fn set_retransmit_token(
        &mut self,
        to: NodeId,
        seq: u64,
        token: TimerToken,
    ) -> Option<TimerToken> {
        let s = self.slot(to)?;
        let i = self.pending[s].binary_search_by_key(&seq, |p| p.seq).ok()?;
        self.pending[s][i].token.replace(token)
    }

    /// Notes that `from` acked sequence `seq`. Returns the token of the
    /// now-obsolete retransmission timer, for the caller to cancel.
    pub fn on_ack(&mut self, from: NodeId, seq: u64) -> Option<TimerToken> {
        let s = self.slot(from)?;
        let i = self.pending[s].binary_search_by_key(&seq, |p| p.seq).ok()?;
        let entry = self.pending[s].remove(i);
        self.counters.acks_received += 1;
        entry.token
    }

    /// Notes that an ack is being sent (bookkeeping only).
    pub fn note_ack_sent(&mut self) {
        self.counters.acks_sent += 1;
    }

    /// The lane base to stamp on an envelope toward `to`: the lowest
    /// sequence number still pending, or the next unused number if nothing
    /// is pending. Everything below the base is settled from the sender's
    /// point of view — acked, abandoned, or exhausted.
    pub fn base_for(&self, to: NodeId) -> u64 {
        match self.slot(to) {
            Some(s) => self.pending[s].first().map_or(self.next_tx[s], |p| p.seq),
            None => 0,
        }
    }

    /// Whether the envelope `(to, seq)` is still awaiting an ack (i.e. not
    /// yet acked, abandoned, or exhausted).
    pub fn is_pending(&self, to: NodeId, seq: u64) -> bool {
        self.slot(to).is_some_and(|s| {
            self.pending[s]
                .binary_search_by_key(&seq, |p| p.seq)
                .is_ok()
        })
    }

    /// Processes a received envelope `(seq, base, inner)` from `from` and
    /// returns the payloads now releasable *in sequence order* (empty for
    /// duplicates and out-of-order arrivals that still have a gap ahead).
    ///
    /// A `base` beyond the lane cursor means the gap in between was
    /// abandoned by the sender and will never be retried: buffered
    /// payloads below `base` release immediately (they *were* delivered
    /// and acked — the sender's base moved past them because of those
    /// acks) and the cursor jumps to `base`.
    pub fn on_receive(
        &mut self,
        from: NodeId,
        seq: u64,
        base: u64,
        inner: ProtoMsg,
    ) -> Vec<ProtoMsg> {
        let s = self.slot_or_insert(from);
        self.rx_active[s] = true;
        let mut released = Vec::new();
        if base > self.rx_next[s] {
            let below = self.rx_buffered[s].partition_point(|&(q, _)| q < base);
            for (_, msg) in self.rx_buffered[s].drain(..below) {
                released.push(msg);
            }
            self.rx_next[s] = base;
        }
        if seq < self.rx_next[s] || self.rx_buffered[s].iter().any(|&(q, _)| q == seq) {
            self.counters.dup_drops += 1;
            return released;
        }
        let at = self.rx_buffered[s].partition_point(|&(q, _)| q < seq);
        self.rx_buffered[s].insert(at, (seq, inner));
        while self.rx_buffered[s].first().map(|&(q, _)| q) == Some(self.rx_next[s]) {
            let (_, msg) = self.rx_buffered[s].remove(0);
            released.push(msg);
            self.rx_next[s] += 1;
        }
        released
    }

    /// Decides what to do when the retransmission timer for `(to, seq)`
    /// fires.
    pub fn on_retransmit_timer(
        &mut self,
        to: NodeId,
        seq: u64,
        config: &ReliableConfig,
        base_rto: SimTime,
    ) -> RetransmitAction {
        let Some(s) = self.slot(to) else {
            return RetransmitAction::Done;
        };
        let Ok(i) = self.pending[s].binary_search_by_key(&seq, |p| p.seq) else {
            return RetransmitAction::Done;
        };
        let entry = &mut self.pending[s][i];
        if entry.attempts >= config.max_retries {
            self.pending[s].remove(i);
            self.counters.retry_exhaustions += 1;
            return RetransmitAction::Exhausted;
        }
        entry.attempts += 1;
        let attempts = entry.attempts;
        let msg = entry.msg.clone();
        self.counters.retransmits += 1;
        RetransmitAction::Retry {
            msg,
            delay: config.delay_for_attempt(base_rto, attempts),
        }
    }

    /// Drops every pending envelope addressed to `peer` without counting
    /// exhaustion — called when the router declares `peer` dead (upstream
    /// failure detection) or re-points its upstream elsewhere. Returns the
    /// tokens of the dropped entries' retransmission timers, for the
    /// caller to cancel.
    pub fn abandon(&mut self, peer: NodeId) -> Vec<TimerToken> {
        let Some(s) = self.slot(peer) else {
            return Vec::new();
        };
        let dropped = std::mem::take(&mut self.pending[s]);
        self.counters.abandoned += dropped.len() as u64;
        dropped.into_iter().filter_map(|p| p.token).collect()
    }

    /// Garbage-collects every lane toward `peer` after the router declares
    /// it dead: pending envelopes are abandoned (as [`Self::abandon`]) and
    /// the receive lane — cursor and gap buffer — is reclaimed, so long
    /// campaigns with churn don't accumulate state for corpses. The
    /// transmit sequence counter deliberately survives; see the module
    /// docs for why restarting it would wedge a falsely-declared-dead
    /// neighbor's receive lane.
    ///
    /// Returns the retransmission-timer tokens to cancel.
    pub fn gc_peer(&mut self, peer: NodeId) -> Vec<TimerToken> {
        let tokens = self.abandon(peer);
        if let Some(s) = self.slot(peer) {
            self.rx_next[s] = 0;
            self.rx_buffered[s].clear();
            self.rx_buffered[s].shrink_to_fit();
            self.rx_active[s] = false;
        }
        tokens
    }

    /// Pending `(neighbor, seq)` pairs, ascending — used by `on_reboot` to
    /// re-arm retransmission timers that died with the node.
    pub fn pending_keys(&self) -> Vec<(NodeId, u64)> {
        let mut keys: Vec<(NodeId, u64)> = (0..self.peers.len())
            .flat_map(|s| self.pending[s].iter().map(move |p| (self.peers[s], p.seq)))
            .collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sequences_are_per_neighbor() {
        let mut ep = ReliableEndpoint::default();
        assert_eq!(ep.register(n(1), ProtoMsg::Refresh), 0);
        assert_eq!(ep.register(n(1), ProtoMsg::Refresh), 1);
        assert_eq!(ep.register(n(2), ProtoMsg::Refresh), 0);
        assert_eq!(ep.counters().sent, 3);
    }

    #[test]
    fn ack_clears_pending() {
        let mut ep = ReliableEndpoint::default();
        let seq = ep.register(n(1), ProtoMsg::LeaveReq);
        ep.on_ack(n(1), seq);
        assert_eq!(ep.counters().acks_received, 1);
        let act = ep.on_retransmit_timer(
            n(1),
            seq,
            &ReliableConfig::default(),
            SimTime::from_ms(15.0),
        );
        assert_eq!(act, RetransmitAction::Done);
    }

    #[test]
    fn unacked_envelope_retries_with_backoff_then_exhausts() {
        let mut ep = ReliableEndpoint::default();
        let cfg = ReliableConfig {
            rto_floor: SimTime::from_ms(10.0),
            backoff: 2.0,
            max_retries: 2,
        };
        let seq = ep.register(n(1), ProtoMsg::Refresh);
        let rto = SimTime::from_ms(10.0);
        match ep.on_retransmit_timer(n(1), seq, &cfg, rto) {
            RetransmitAction::Retry { delay, .. } => assert_eq!(delay, SimTime::from_ms(20.0)),
            other => panic!("expected retry, got {other:?}"),
        }
        match ep.on_retransmit_timer(n(1), seq, &cfg, rto) {
            RetransmitAction::Retry { delay, .. } => assert_eq!(delay, SimTime::from_ms(40.0)),
            other => panic!("expected retry, got {other:?}"),
        }
        assert_eq!(
            ep.on_retransmit_timer(n(1), seq, &cfg, rto),
            RetransmitAction::Exhausted
        );
        assert_eq!(ep.counters().retransmits, 2);
        assert_eq!(ep.counters().retry_exhaustions, 1);
        // The entry is gone; a late timer is a no-op.
        assert_eq!(
            ep.on_retransmit_timer(n(1), seq, &cfg, rto),
            RetransmitAction::Done
        );
    }

    #[test]
    fn receiver_releases_in_order_and_drops_dups() {
        let mut ep = ReliableEndpoint::default();
        // seq 1 arrives first: buffered, nothing released.
        assert!(ep.on_receive(n(3), 1, 0, ProtoMsg::LeaveReq).is_empty());
        // seq 0 fills the gap: both release, in order.
        let released = ep.on_receive(n(3), 0, 0, ProtoMsg::Refresh);
        assert_eq!(released, vec![ProtoMsg::Refresh, ProtoMsg::LeaveReq]);
        // Retransmitted copies of both are suppressed.
        assert!(ep.on_receive(n(3), 0, 0, ProtoMsg::Refresh).is_empty());
        assert!(ep.on_receive(n(3), 1, 0, ProtoMsg::LeaveReq).is_empty());
        assert_eq!(ep.counters().dup_drops, 2);
    }

    #[test]
    fn buffered_duplicate_is_suppressed_too() {
        let mut ep = ReliableEndpoint::default();
        assert!(ep.on_receive(n(3), 2, 0, ProtoMsg::Refresh).is_empty());
        assert!(ep.on_receive(n(3), 2, 0, ProtoMsg::Refresh).is_empty());
        assert_eq!(ep.counters().dup_drops, 1);
    }

    #[test]
    fn base_unwedges_lane_after_abandoned_gap() {
        let mut ep = ReliableEndpoint::default();
        // Sender side: seq 0 is lost in flight and then abandoned (e.g.
        // the sender declared this hop's upstream dead); seq 1 and 2 are
        // registered afterwards.
        let mut tx = ReliableEndpoint::default();
        assert_eq!(tx.register(n(3), ProtoMsg::LeaveReq), 0);
        tx.abandon(n(3));
        assert_eq!(tx.register(n(3), ProtoMsg::Refresh), 1);
        assert_eq!(tx.base_for(n(3)), 1);
        // Receiver: seq 1 stamped with base 1 releases immediately — the
        // lane skips the abandoned seq 0 instead of waiting forever.
        let released = ep.on_receive(n(3), 1, tx.base_for(n(3)), ProtoMsg::Refresh);
        assert_eq!(released, vec![ProtoMsg::Refresh]);
        // With nothing pending, the base is the next unused number, so a
        // retransmitted copy of seq 1 is still recognized as a duplicate.
        tx.on_ack(n(3), 1);
        assert_eq!(tx.base_for(n(3)), 2);
        assert!(ep
            .on_receive(n(3), 1, tx.base_for(n(3)), ProtoMsg::Refresh)
            .is_empty());
        assert_eq!(ep.counters().dup_drops, 1);
    }

    #[test]
    fn base_jump_releases_acked_buffered_payloads() {
        let mut ep = ReliableEndpoint::default();
        // seq 1 arrived (and was acked) but seq 0 never did; it buffers.
        assert!(ep.on_receive(n(3), 1, 0, ProtoMsg::LeaveReq).is_empty());
        // The sender abandons seq 0; its next envelope carries base 2
        // (seq 1 was acked, nothing pending). The buffered seq 1 must be
        // *applied*, not discarded — the sender believes it was delivered.
        let released = ep.on_receive(n(3), 2, 2, ProtoMsg::Refresh);
        assert_eq!(released, vec![ProtoMsg::LeaveReq, ProtoMsg::Refresh]);
    }

    #[test]
    fn abandon_drops_only_that_peer() {
        let mut ep = ReliableEndpoint::default();
        let s1 = ep.register(n(1), ProtoMsg::Refresh);
        let s2 = ep.register(n(2), ProtoMsg::Refresh);
        ep.abandon(n(1));
        assert_eq!(ep.counters().abandoned, 1);
        let cfg = ReliableConfig::default();
        let rto = SimTime::from_ms(15.0);
        assert_eq!(
            ep.on_retransmit_timer(n(1), s1, &cfg, rto),
            RetransmitAction::Done
        );
        assert!(matches!(
            ep.on_retransmit_timer(n(2), s2, &cfg, rto),
            RetransmitAction::Retry { .. }
        ));
        assert_eq!(ep.pending_keys(), vec![(n(2), s2)]);
    }

    #[test]
    fn gc_reclaims_rx_lane_and_pending_but_not_tx_sequence() {
        let mut ep = ReliableEndpoint::default();
        // Build up state toward n(1): a pending envelope and a receive
        // lane with a buffered gap.
        let s0 = ep.register(n(1), ProtoMsg::Refresh);
        assert_eq!(s0, 0);
        assert!(ep.on_receive(n(1), 1, 0, ProtoMsg::LeaveReq).is_empty());
        assert_eq!(ep.lane_count(), 1);

        ep.gc_peer(n(1));
        assert_eq!(ep.lane_count(), 0, "lane reclaimed after death");
        assert_eq!(ep.counters().abandoned, 1);
        assert!(!ep.is_pending(n(1), s0));

        // The tx sequence survives: the next envelope continues the lane
        // instead of restarting at 0, so a falsely-declared-dead neighbor
        // (whose receive cursor is still beyond 0) does not dup-drop
        // everything we send forever.
        assert_eq!(ep.register(n(1), ProtoMsg::Refresh), 1);
    }

    #[test]
    fn lane_count_counts_each_neighbor_once() {
        let mut ep = ReliableEndpoint::default();
        ep.register(n(1), ProtoMsg::Refresh);
        ep.on_receive(n(1), 0, 0, ProtoMsg::Refresh);
        ep.register(n(2), ProtoMsg::Refresh);
        assert_eq!(ep.lane_count(), 2);
        // Acking n(2)'s envelope empties its pending lane; it never had
        // receive state, so it stops counting.
        ep.on_ack(n(2), 0);
        assert_eq!(ep.lane_count(), 1);
    }

    #[test]
    fn ack_and_abandon_surrender_retransmit_tokens() {
        // Fake tokens by arming through a real context is engine-level;
        // here we only check the plumbing: a token recorded for a pending
        // envelope comes back from the ack (or abandon) that retires it.
        let mut ep = ReliableEndpoint::default();
        let seq = ep.register(n(1), ProtoMsg::Refresh);
        assert_eq!(ep.on_ack(n(1), seq), None, "no token recorded yet");
        let seq2 = ep.register(n(1), ProtoMsg::Refresh);
        // set_retransmit_token on an unknown key is a no-op.
        ep.set_retransmit_token(n(9), 0, fake_token());
        ep.set_retransmit_token(n(1), seq2, fake_token());
        assert!(ep.on_ack(n(1), seq2).is_some());
        let seq3 = ep.register(n(1), ProtoMsg::Refresh);
        ep.set_retransmit_token(n(1), seq3, fake_token());
        assert_eq!(ep.abandon(n(1)).len(), 1);
    }

    /// Builds a real token through a throwaway simulation context.
    fn fake_token() -> TimerToken {
        use smrp_net::Graph;
        use smrp_sim::{Ctx, NetSim, NodeBehavior};
        struct Noop;
        impl NodeBehavior for Noop {
            type Msg = ();
            type Timer = ();
            fn on_message(&mut self, _: &mut Ctx<'_, Self>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, Self>, _: ()) {}
        }
        let g = Graph::with_nodes(1);
        let mut sim = NetSim::new(&g, vec![Noop]);
        let mut token = None;
        sim.with_node(g.node_ids().next().unwrap(), |_, ctx| {
            token = Some(ctx.set_timer(SimTime::from_ms(1.0), ()));
        });
        token.unwrap()
    }
}
