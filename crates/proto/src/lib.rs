#![warn(missing_docs)]

//! Message-level SMRP: the protocol machinery of §3.2–§3.3 running on the
//! discrete-event simulator.
//!
//! `smrp-core` implements SMRP's *algorithms* (path selection, reshaping,
//! detour computation); this crate implements SMRP as a *protocol*:
//!
//! * [`router`] — the per-node state machine: soft-state multicast routing
//!   entries refreshed by periodic `Refresh` messages (and expired when
//!   refreshes stop), hop-by-hop `Setup` propagation for joins and grafts,
//!   data forwarding down the tree, and heartbeat (`Hello`) exchange with
//!   the upstream neighbor for failure detection;
//! * [`runner`] — [`ProtoSession`]: builds a tree with `smrp-core`, loads
//!   it into routers, pumps data from the source, injects a persistent
//!   failure and measures each member's **service restoration latency**
//!   under either recovery strategy:
//!   [`RecoveryStrategy::LocalDetour`] (SMRP: graft to the nearest
//!   connected on-tree node as soon as the failure is detected) or
//!   [`RecoveryStrategy::GlobalDetour`] (PIM/MOSPF: wait out unicast
//!   reconvergence — tens of seconds per Wang et al.'s ICNP 2000
//!   measurements cited by the paper — then re-join along the new
//!   shortest path);
//! * [`multi`] — multi-session sharding: one [`MultiRouter`] process per
//!   node hosting independent per-group [`Router`] lanes (tree, SHR,
//!   soft state and reliable-delivery sequence lanes all keyed by
//!   [`smrp_net::GroupId`]) over shared links, and [`MultiSession`]
//!   running N concurrent groups through one failure experiment;
//! * [`hierarchy`] — the N-level recovery architecture of §3.3.3
//!   instantiated for 2 levels on transit-stub topologies: per-domain
//!   SMRP sessions with border *agents*, failure attribution to a domain,
//!   and confinement metrics;
//! * [`wire`] — the versioned binary codec that puts [`GroupMsg`] values
//!   on a real transport (the `smrpd` daemon's UDP datagrams and framed
//!   streams);
//! * [`snapshot`] — timing-insensitive final-state capture and the
//!   conformance digest that ties daemon replays back to sim runs.

pub mod hierarchy;
pub mod membership;
pub mod messages;
pub mod multi;
pub mod query;
pub mod reliable;
pub mod router;
pub mod runner;
pub mod snapshot;
pub mod wire;

pub use membership::DynamicSession;
pub use messages::{GroupMsg, GroupTimer, ProtoMsg, TimerKind};
pub use multi::{GroupRecoveryReport, MultiRecoveryReport, MultiRouter, MultiSession};
pub use reliable::{ReliabilityCounters, ReliableConfig};
pub use router::{ControlCounters, ProtectionCounters, RecoveryPlan, Router, RouterConfig};
pub use runner::{
    FailureTiming, InjectionTiming, OverheadReport, ProtoSession, RecoveryPlans, RecoveryReport,
    RecoveryStrategy, TreeProtocol,
};
pub use snapshot::{AffectedGroup, GroupState, NodeTreeState, SessionState};
pub use wire::{WireError, WIRE_VERSION};
