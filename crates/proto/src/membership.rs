//! Dynamic membership at the message level.
//!
//! [`DynamicSession`] drives a live protocol simulation through explicit
//! join and leave events, mirroring the control-plane state in an
//! `smrp-core` session so each join uses the real SMRP path selection
//! (§3.2.2) while the wire behavior — `Setup` propagation, soft-state
//! refresh, pruning after departures — runs entirely through
//! [`crate::router::Router`]s on the simulator.

use smrp_core::select::{self, SelectionMode};
use smrp_core::{SmrpConfig, SmrpError, SmrpSession};
use smrp_net::{Graph, NodeId};
use smrp_sim::{NetSim, SimTime, TraceLog};

use crate::router::{Router, RouterConfig};

/// A live protocol session accepting joins and leaves over virtual time.
pub struct DynamicSession<'g> {
    graph: &'g Graph,
    sim: NetSim<'g, Router>,
    /// Control-plane mirror used for SMRP path selection.
    control: SmrpSession<'g>,
}

impl<'g> DynamicSession<'g> {
    /// Creates a session rooted at `source` with default protocol timers.
    ///
    /// # Errors
    ///
    /// Fails on an unknown source or invalid configuration.
    pub fn new(graph: &'g Graph, source: NodeId, config: SmrpConfig) -> Result<Self, SmrpError> {
        let control = SmrpSession::new(graph, source, config)?;
        let mut routers: Vec<Router> = (0..graph.node_count())
            .map(|_| Router::new(RouterConfig::default()))
            .collect();
        routers[source.index()].set_source();
        routers[source.index()].load_state(None, &[], false);
        let mut sim = NetSim::new(graph, routers);
        sim.set_trace(TraceLog::disabled());
        sim.with_node(source, |r, ctx| r.start_timers(ctx));
        Ok(DynamicSession {
            graph,
            sim,
            control,
        })
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Read access to a router.
    pub fn router(&self, node: NodeId) -> &Router {
        self.sim.node(node)
    }

    /// The control-plane view of the tree.
    pub fn control_tree(&self) -> &smrp_core::MulticastTree {
        self.control.tree()
    }

    /// Joins `member` now: the control plane selects the SMRP path, the
    /// member issues the source-routed `Setup`, and state installs hop by
    /// hop.
    ///
    /// # Errors
    ///
    /// Propagates control-plane selection errors.
    pub fn join(&mut self, member: NodeId) -> Result<(), SmrpError> {
        // Path selection against the mirror (reshaping disabled at the
        // wire level: path switches would need teardown messages that the
        // scope of this driver omits).
        if self.control.tree().is_on_tree(member) {
            // Already a relay: membership is local state.
            self.control.join(member)?;
            self.sim.with_node(member, |r, ctx| {
                r.load_state(r.upstream(), &r.downstream(), true);
                r.start_timers(ctx);
            });
            return Ok(());
        }
        let selection = select::select_path(
            self.graph,
            self.control.tree(),
            self.control.spt(),
            member,
            self.control.config().d_thresh,
            SelectionMode::FullTopology,
            &[],
        )?;
        self.control.join(member)?;
        let mut path = selection.candidate.approach.nodes().to_vec();
        debug_assert_eq!(path[0], member);
        if path.len() == 1 {
            path.push(selection.candidate.merger);
        }
        self.sim
            .with_node(member, |r, ctx| r.initiate_setup(ctx, path, true));
        Ok(())
    }

    /// Leaves `member` now; pruning happens through soft-state expiry.
    ///
    /// # Errors
    ///
    /// Propagates control-plane membership errors.
    pub fn leave(&mut self, member: NodeId) -> Result<(), SmrpError> {
        self.control.leave(member)?;
        self.sim.with_node(member, |r, _| r.leave_group());
        Ok(())
    }

    /// Attempts the §3.2.3 reshaping for `member` and, if the control plane
    /// switches its path, re-synchronizes the wire state: the member issues
    /// a `Setup` along its new source path (reorienting every hop), and the
    /// abandoned branch decays through soft-state expiry.
    ///
    /// Returns whether a switch happened.
    ///
    /// # Errors
    ///
    /// Propagates control-plane errors.
    pub fn reshape(&mut self, member: NodeId) -> Result<bool, SmrpError> {
        use smrp_core::session::ReshapeOutcome;
        match self.control.reshape_member(member)? {
            ReshapeOutcome::Kept => Ok(false),
            ReshapeOutcome::Switched { .. } => {
                let path = self
                    .control
                    .tree()
                    .path_from_source(member)
                    .expect("member stays on the tree")
                    .reversed();
                let nodes = path.nodes().to_vec();
                self.sim
                    .with_node(member, |r, ctx| r.initiate_setup(ctx, nodes, true));
                Ok(true)
            }
        }
    }

    /// Runs one Condition II sweep over all members, resyncing switched
    /// paths onto the wire. Returns the number of switches.
    ///
    /// # Errors
    ///
    /// Propagates control-plane errors.
    pub fn reshape_sweep(&mut self) -> Result<usize, SmrpError> {
        let members: Vec<NodeId> = self.control.members().collect();
        let mut switched = 0;
        for m in members {
            if self.reshape(m)? {
                switched += 1;
            }
        }
        Ok(switched)
    }

    /// Advances virtual time by `delta`.
    pub fn run_for(&mut self, delta: SimTime) {
        let target = self.sim.now() + delta;
        self.sim.run_until(target);
    }

    /// Data packets delivered to `member` so far.
    pub fn deliveries(&self, member: NodeId) -> usize {
        self.sim.node(member).deliveries().len()
    }
}

impl std::fmt::Debug for DynamicSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicSession")
            .field("now", &self.sim.now())
            .field("members", &self.control.tree().member_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrp_core::paper;

    fn session(graph: &Graph, source: NodeId) -> DynamicSession<'_> {
        let config = SmrpConfig {
            auto_reshape: false,
            ..SmrpConfig::default()
        };
        DynamicSession::new(graph, source, config).unwrap()
    }

    #[test]
    fn dynamic_join_starts_data_flow() {
        let (graph, n) = paper::figure1_graph();
        let mut s = session(&graph, n.s);
        s.run_for(SimTime::from_ms(50.0));
        s.join(n.c).unwrap();
        s.run_for(SimTime::from_ms(200.0));
        assert!(
            s.deliveries(n.c) > 10,
            "C got {} packets",
            s.deliveries(n.c)
        );
        // The wire tree matches the control tree.
        assert_eq!(s.router(n.a).downstream(), vec![n.c]);
        assert!(s.control_tree().is_member(n.c));
    }

    #[test]
    fn staggered_joins_share_state() {
        let (graph, n) = paper::figure1_graph();
        let mut s = session(&graph, n.s);
        s.join(n.c).unwrap();
        s.run_for(SimTime::from_ms(100.0));
        s.join(n.d).unwrap();
        s.run_for(SimTime::from_ms(200.0));
        assert!(s.deliveries(n.c) > 0);
        assert!(s.deliveries(n.d) > 0);
        // A carries both children, exactly as in Figure 1(a).
        let mut down = s.router(n.a).downstream();
        down.sort();
        assert_eq!(down, vec![n.c, n.d]);
    }

    #[test]
    fn leave_prunes_via_soft_state() {
        let (graph, n) = paper::figure1_graph();
        let mut s = session(&graph, n.s);
        s.join(n.c).unwrap();
        s.run_for(SimTime::from_ms(100.0));
        let before = s.deliveries(n.c);
        s.leave(n.c).unwrap();
        // Past the holdtime, C and its relay A are gone from the wire tree.
        s.run_for(SimTime::from_ms(600.0));
        assert!(!s.router(n.c).is_on_tree());
        assert!(!s.router(n.a).is_on_tree());
        assert!(s.router(n.s).downstream().is_empty());
        // No deliveries after the prune settled.
        let after = s.deliveries(n.c);
        assert!(after - before < 60, "C kept receiving long after leaving");
    }

    #[test]
    fn rejoin_after_leave_works() {
        let (graph, n) = paper::figure1_graph();
        let mut s = session(&graph, n.s);
        s.join(n.d).unwrap();
        s.run_for(SimTime::from_ms(100.0));
        s.leave(n.d).unwrap();
        s.run_for(SimTime::from_ms(600.0));
        s.join(n.d).unwrap();
        s.run_for(SimTime::from_ms(200.0));
        let total = s.deliveries(n.d);
        assert!(total > 20, "D resumed with only {total} packets");
        assert!(s.control_tree().is_member(n.d));
    }

    #[test]
    fn figure5_reshaping_happens_on_the_wire() {
        // Drive the Figure 4 join sequence (E, G, F) at the message level,
        // then reshape E: the wire tree must converge to Figure 5(d) —
        // E reaches the source via C and A — while data keeps flowing.
        let (graph, n) = paper::figure4_graph();
        let mut s = session(&graph, n.s);
        s.join(n.e).unwrap();
        s.run_for(SimTime::from_ms(60.0));
        s.join(n.g).unwrap();
        s.run_for(SimTime::from_ms(60.0));
        s.join(n.f).unwrap();
        s.run_for(SimTime::from_ms(120.0));

        let before = s.deliveries(n.e);
        let switched = s.reshape(n.e).unwrap();
        assert!(switched, "Condition I should move E after F's admission");
        // Let the new branch install and the old one expire.
        s.run_for(SimTime::from_ms(800.0));

        assert_eq!(s.router(n.e).upstream(), Some(n.c));
        assert_eq!(s.router(n.c).upstream(), Some(n.a));
        assert!(s.router(n.c).is_on_tree());
        // D no longer carries E (only F remains beneath it).
        assert_eq!(s.router(n.d).downstream(), vec![n.f]);
        // E kept receiving data across the switch.
        let after = s.deliveries(n.e);
        assert!(after > before + 50, "E stalled during reshaping");
        // The other members were untouched.
        assert!(s.deliveries(n.f) > 0);
        assert!(s.deliveries(n.g) > 0);
    }

    #[test]
    fn quiescent_sweep_switches_nothing() {
        let (graph, n) = paper::figure1_graph();
        let mut s = session(&graph, n.s);
        s.join(n.c).unwrap();
        s.run_for(SimTime::from_ms(100.0));
        assert_eq!(s.reshape_sweep().unwrap(), 0);
    }

    #[test]
    fn relay_upgrade_join() {
        let (graph, n) = paper::figure1_graph();
        let mut s = session(&graph, n.s);
        s.join(n.c).unwrap(); // path S-A-C puts A on-tree.
        s.run_for(SimTime::from_ms(100.0));
        s.join(n.a).unwrap(); // the relay becomes a member.
        s.run_for(SimTime::from_ms(150.0));
        assert!(s.deliveries(n.a) > 0, "relay member receives data");
        assert!(s.router(n.a).is_member());
    }
}
