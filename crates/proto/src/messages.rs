//! Wire messages and timers of the SMRP protocol.

use smrp_net::{GroupId, NodeId};

/// Messages exchanged hop-by-hop between routers.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoMsg {
    /// Source-routed state installation, used both for explicit joins
    /// (`Join_Req` travelling from a new member toward its merger node)
    /// and for recovery grafts (travelling from the disconnected fragment
    /// root toward its recovery attach point).
    ///
    /// `path[idx]` is the current hop; each hop installs the previous hop
    /// as a downstream interface and the next hop as its upstream, then
    /// forwards with `idx + 1`.
    Setup {
        /// Full path from the initiating node to the attach point.
        path: Vec<NodeId>,
        /// Index of the receiving hop within `path`.
        idx: usize,
    },
    /// Explicit leave (`Leave_Req`): sent upstream; each hop removes the
    /// sender from its downstream set and forwards upstream while it has
    /// no remaining reason to stay on the tree.
    LeaveReq,
    /// Periodic soft-state refresh sent upstream (PIM-style); parents
    /// expire downstream interfaces that stop refreshing.
    Refresh,
    /// Heartbeat between tree neighbors; loss of consecutive hellos from
    /// the upstream neighbor signals a persistent failure.
    Hello,
    /// Multicast payload flooding down the tree.
    Data {
        /// Monotone sequence number stamped by the source.
        seq: u64,
    },
    /// §3.3.1 topology-free join: a query relayed hop-by-hop along each
    /// relay's unicast shortest path toward the source, looking for the
    /// first on-tree router.
    Query {
        /// The joining node that originated the query.
        origin: NodeId,
        /// Nodes visited so far, origin first (doubles as the return
        /// route and as the loop guard).
        path: Vec<NodeId>,
        /// Accumulated propagation delay along `path`.
        delay: f64,
    },
    /// Response from the first on-tree router hit by a [`ProtoMsg::Query`],
    /// retracing the query path back to the origin.
    QueryResp {
        /// Full approach path `origin → … → merger`.
        approach: Vec<NodeId>,
        /// Propagation delay of the approach path.
        approach_delay: f64,
        /// The merger's advertised `SHR(S, R)`.
        shr: u32,
        /// The merger's advertised on-tree delay from the source.
        tree_delay: f64,
        /// Index of the current hop within `approach` (counts down to 0).
        idx: usize,
    },
    /// Reliable-delivery envelope around a tree-mutating control message
    /// (`Setup`, `LeaveReq`, `Refresh`). Sequenced per `(sender, receiver)`
    /// pair; the receiver acks every copy, suppresses duplicates and
    /// releases payloads in sequence order, so a degraded channel cannot
    /// corrupt SHR/N state (see `crate::reliable`).
    Reliable {
        /// Per-neighbor sequence number assigned by the sender.
        seq: u64,
        /// The lowest sequence number the sender still has pending toward
        /// this receiver (or its next unused number if none). Everything
        /// below `base` is settled — acked or abandoned — so the receiver
        /// can skip gaps left by abandoned envelopes instead of waiting
        /// forever for a sequence number that will never be retried.
        base: u64,
        /// The wrapped control message.
        inner: Box<ProtoMsg>,
    },
    /// Acknowledgment of a [`ProtoMsg::Reliable`] envelope. Sent raw: a
    /// lost ack merely costs one duplicate retransmission.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
}

/// Node-local timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Send the next `Hello` to tree neighbors.
    HelloTick,
    /// Check whether the upstream neighbor went silent.
    UpstreamCheck,
    /// Send the next soft-state `Refresh` upstream.
    RefreshTick,
    /// Expire downstream interfaces whose refreshes stopped.
    ExpiryCheck,
    /// Source only: emit the next `Data` packet.
    DataTick,
    /// Member only: check for data starvation (failure further up the
    /// fragment than this node's own upstream).
    StarvationCheck,
    /// Joining node: the §3.3.1 query round is over; pick the best
    /// responding merger.
    QueryTimeout,
    /// Global detour: unicast routing has reconverged; re-join now.
    ReconvergenceDone,
    /// Protection mode: periodic sweep of the precomputed backup-plan
    /// cache, re-checking every cached plan against the current validity
    /// epoch and dead-neighbor set. Armed only while backup plans are
    /// installed; cancelled and re-armed across reboots like every other
    /// periodic chain.
    PlanSweep,
    /// Activation confirmation: fires shortly after a cached plan was
    /// executed. If no data has arrived since the activation, the plan
    /// failed *silently* — its graft cascade landed in a severed fragment
    /// or hung at a dead relay whose retry exhaustion never feeds back —
    /// and the fallback chain advances past it (when an alternative
    /// exists).
    PlanConfirm,
    /// Reliable layer: check whether `(to, seq)` is still unacked and, if
    /// so, retransmit with exponential backoff. A no-op when the entry was
    /// acked or abandoned in the meantime.
    Retransmit {
        /// The neighbor the envelope was sent to.
        to: smrp_net::NodeId,
        /// The envelope's sequence number.
        seq: u64,
    },
}

/// A [`ProtoMsg`] tagged with the multicast session it belongs to.
///
/// Multi-session routers (see [`crate::multi::MultiRouter`]) exchange
/// these on the wire: the tag routes each arriving message to the
/// per-group protocol lane that owns it, so one router process can serve
/// many independent trees over the same links. Reliable-delivery sequence
/// lanes become keyed by `(neighbor, group)` for free, because each group
/// lane owns its own [`crate::reliable`] endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupMsg {
    /// The session the message belongs to.
    pub group: GroupId,
    /// The tagged protocol message.
    pub inner: ProtoMsg,
}

/// A [`TimerKind`] tagged with the multicast session that armed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupTimer {
    /// The session the timer belongs to.
    pub group: GroupId,
    /// The tagged timer.
    pub inner: TimerKind,
}
