//! Orchestration helpers for the wire-level §3.3.1 query scheme.
//!
//! The query-based join needs two pieces of ambient state at each router:
//! the unicast next hop toward the source (provided by the routing
//! protocol in a real deployment) and, at on-tree routers, their
//! advertised `SHR`/tree-delay metadata (which §3.3.2 recomputes lazily —
//! "only when a query message from a certain new member is received").
//! These helpers install both from the ground truth.

use smrp_core::MulticastTree;
use smrp_net::dijkstra::ShortestPathTree;
use smrp_net::NodeId;
use smrp_sim::NetSim;

use crate::router::Router;

/// Installs unicast routing state (next hop and distance to `source`) on
/// every router, as OSPF convergence would.
pub fn install_unicast_routing(sim: &mut NetSim<'_, Router>, source: NodeId) {
    let spt = ShortestPathTree::compute(sim.graph(), source);
    for n in sim.graph().node_ids() {
        // The next hop toward the source is this node's parent in the
        // source-rooted shortest-path tree.
        let next = spt.parent(n);
        let dist = spt.distance(n).unwrap_or(f64::INFINITY);
        sim.with_node(n, |r, _| r.set_unicast_routing(next, dist));
    }
}

/// Publishes each on-tree router's `SHR` and tree delay so queries get
/// accurate answers (the lazily-recomputed state of §3.3.2).
pub fn sync_tree_metadata(sim: &mut NetSim<'_, Router>, tree: &MulticastTree) {
    let graph = sim.graph();
    let values: Vec<(NodeId, u32, f64)> = tree
        .on_tree_nodes()
        .map(|n| (n, tree.shr(n), tree.delay_to(graph, n).unwrap_or(0.0)))
        .collect();
    for (n, shr, delay) in values {
        sim.with_node(n, |r, _| r.set_tree_metadata(shr, delay));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::RouterConfig;
    use smrp_core::paper;
    use smrp_core::select::{self, SelectionMode};
    use smrp_sim::SimTime;

    /// Wire up the Figure 4 tree state after E has joined, then drive G's
    /// join through real Query/QueryResp messages.
    #[test]
    fn query_join_installs_state_through_messages() {
        let (graph, n) = paper::figure4_graph();
        // Control-plane ground truth: E joined along S-A-D-E.
        let mut tree = smrp_core::MulticastTree::new(&graph, n.s).unwrap();
        tree.attach_path(&smrp_net::Path::new(vec![n.e, n.d, n.a, n.s]));
        tree.set_member(n.e, true).unwrap();

        let mut routers: Vec<Router> = (0..graph.node_count())
            .map(|_| Router::new(RouterConfig::default()))
            .collect();
        routers[n.s.index()].set_source();
        for node in tree.on_tree_nodes() {
            routers[node.index()].load_state(
                tree.parent(node),
                tree.children(node),
                tree.is_member(node),
            );
        }
        let mut sim = NetSim::new(&graph, routers);
        install_unicast_routing(&mut sim, n.s);
        sync_tree_metadata(&mut sim, &tree);
        for node in tree.on_tree_nodes() {
            sim.with_node(node, |r, ctx| r.start_timers(ctx));
        }

        // G joins via the query scheme.
        sim.with_node(n.g, |r, ctx| {
            r.start_query_join(ctx, 0.3, SimTime::from_ms(30.0))
        });
        sim.run_until(SimTime::from_ms(400.0));

        // G must be on the tree and receiving data.
        assert!(sim.node(n.g).is_on_tree());
        assert!(sim.node(n.g).is_member());
        assert!(!sim.node(n.g).query_join_pending());
        assert!(
            !sim.node(n.g).deliveries().is_empty(),
            "G never received data after its query join"
        );

        // The wire decision matches the algorithmic §3.3.1 selection.
        let spt = ShortestPathTree::compute(&graph, tree.source());
        let algo = select::select_path(
            &graph,
            &tree,
            &spt,
            n.g,
            0.3,
            SelectionMode::NeighborQuery,
            &[],
        )
        .unwrap();
        let wire_upstream = sim.node(n.g).upstream().unwrap();
        assert_eq!(
            wire_upstream,
            algo.candidate.approach.nodes()[1],
            "wire picked a different first hop than the algorithmic query scheme"
        );
    }

    #[test]
    fn query_with_no_on_tree_reachable_times_out_silently() {
        // Only the source is on-tree, and the querying node's neighbors
        // have no next hop installed (routing not converged): no response.
        let (graph, n) = paper::figure4_graph();
        let tree = smrp_core::MulticastTree::new(&graph, n.s).unwrap();
        let mut routers: Vec<Router> = (0..graph.node_count())
            .map(|_| Router::new(RouterConfig::default()))
            .collect();
        routers[n.s.index()].set_source();
        let mut sim = NetSim::new(&graph, routers);
        sync_tree_metadata(&mut sim, &tree);
        // Deliberately skip install_unicast_routing.
        sim.with_node(n.g, |r, ctx| {
            r.start_query_join(ctx, 0.3, SimTime::from_ms(20.0))
        });
        sim.run_until(SimTime::from_ms(100.0));
        assert!(!sim.node(n.g).is_on_tree());
        assert!(!sim.node(n.g).query_join_pending());
    }

    #[test]
    fn metadata_sync_reflects_tree_values() {
        let (graph, tree, n) = paper::figure1();
        let routers: Vec<Router> = (0..graph.node_count())
            .map(|_| Router::new(RouterConfig::default()))
            .collect();
        let mut sim = NetSim::new(&graph, routers);
        sync_tree_metadata(&mut sim, &tree);
        assert_eq!(sim.node(n.c).advertised_shr(), 3);
        assert_eq!(sim.node(n.a).advertised_shr(), 2);
        assert_eq!(sim.node(n.s).advertised_shr(), 0);
    }
}
