//! Protocol-level failure/recovery experiments.
//!
//! [`ProtoSession`] ties the layers together: `smrp-core` builds the
//! multicast tree (SMRP or the SPF baseline), the tree is loaded into
//! [`Router`]s on a [`NetSim`], the source pumps data, a persistent failure
//! is injected mid-run, and the report captures each member's **service
//! restoration latency** — the motivating quantity of §1: local detours
//! restore service in heartbeat-detection time, while SPF-based recovery
//! waits for unicast routing to reconverge (tens of seconds, per the
//! ICNP 2000 measurements the paper cites).

use smrp_core::recovery::{self, DetourKind, Recovery};
use smrp_core::{MulticastTree, SmrpConfig, SmrpError, SmrpSession, SpfSession};
use smrp_metrics::ControlHealth;
use smrp_net::backup::{BackupPlanner, DetourRequest};
use smrp_net::{FailureScenario, Graph, LinkId, NodeId};
use smrp_sim::{ChannelModel, ChannelSpec, NetSim, SimTime, TimerBackend, TraceLog};

use crate::router::{RecoveryPlan, Router, RouterConfig};

/// Which algorithm builds the multicast tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeProtocol {
    /// SMRP with the given configuration.
    Smrp(SmrpConfig),
    /// The shortest-path-first baseline (PIM/MOSPF-style).
    Spf,
}

/// How disconnected fragments restore service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RecoveryStrategy {
    /// SMRP: graft to the nearest connected on-tree node immediately after
    /// detection.
    LocalDetour,
    /// SMRP with the on-demand restoration search made explicit: after
    /// detection, the fragment root spends `search` locating a detour
    /// (modelling the §3.3.1 query round against the surviving tree)
    /// before the graft fires. [`LocalDetour`](Self::LocalDetour) treats
    /// that search as free; this variant is the honest reactive baseline
    /// that protection mode is measured against.
    ReactiveSearch {
        /// Modelled on-demand detour-search delay between detection and
        /// graft initiation.
        search: SimTime,
    },
    /// Baseline: wait for unicast reconvergence, then re-join along the new
    /// shortest path.
    GlobalDetour {
        /// Modelled unicast (OSPF) reconvergence delay.
        reconvergence: SimTime,
    },
    /// Proactive protection: every on-tree node precomputes backup detours
    /// against its own upstream contingencies *before* any failure (see
    /// [`ProtoSession::protection_plans`]) and keeps them cached;
    /// restoration is local plan activation with no search delay. Plans
    /// are computed without knowledge of the scenario actually injected —
    /// the fidelity point that separates protection from the
    /// scenario-aware plan installation of the reactive strategies.
    Protection,
}

/// When a failure is injected and (optionally) repaired during a run.
///
/// The paper studies *persistent* failures; [`transient`](Self::transient)
/// timing models flapping links and maintenance windows, where the faulty
/// component comes back mid-run via the simulator's repair events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureTiming {
    /// When the failure is injected.
    pub fail_at: SimTime,
    /// When the failed components are repaired (`None` = persistent).
    pub repair_at: Option<SimTime>,
}

impl FailureTiming {
    /// A persistent failure injected at `fail_at` that never heals.
    pub fn persistent(fail_at: SimTime) -> Self {
        FailureTiming {
            fail_at,
            repair_at: None,
        }
    }

    /// A transient failure injected at `fail_at` and repaired at
    /// `repair_at`.
    pub fn transient(fail_at: SimTime, repair_at: SimTime) -> Self {
        FailureTiming {
            fail_at,
            repair_at: Some(repair_at),
        }
    }
}

/// How (and how often) a scenario's components fail during a run.
///
/// [`FailureTiming`] covers the paper's persistent cuts and single-repair
/// transients; `Flapping` injects repeated down/up cycles on the same
/// components — the regime that exercises reboot re-arming and
/// `former_upstream` branch re-extension hardest, because soft state and
/// the reliable layer must survive *several* outages in one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionTiming {
    /// One injection, optionally repaired once.
    Once(FailureTiming),
    /// Repeated cycles: down at `fail_at`, repaired `down` later, failing
    /// again `up` after that, for `cycles` full cycles (the run ends with
    /// the components up).
    Flapping {
        /// Start of the first outage.
        fail_at: SimTime,
        /// Length of each outage window.
        down: SimTime,
        /// Length of each healthy window between outages.
        up: SimTime,
        /// Number of down/up cycles.
        cycles: u32,
    },
}

impl InjectionTiming {
    /// When the first outage begins.
    pub fn fail_at(&self) -> SimTime {
        match *self {
            InjectionTiming::Once(t) => t.fail_at,
            InjectionTiming::Flapping { fail_at, .. } => fail_at,
        }
    }

    /// Every `(fail, repair)` event pair this timing schedules; a `None`
    /// repair means the outage is permanent.
    pub(crate) fn schedule(&self) -> Vec<(SimTime, Option<SimTime>)> {
        match *self {
            InjectionTiming::Once(t) => vec![(t.fail_at, t.repair_at)],
            InjectionTiming::Flapping {
                fail_at,
                down,
                up,
                cycles,
            } => (0..cycles.max(1))
                .map(|c| {
                    let start =
                        fail_at + SimTime::from_ms((down.as_ms() + up.as_ms()) * f64::from(c));
                    (start, Some(start + down))
                })
                .collect(),
        }
    }
}

/// The recovery plans one failure scenario induces on a session's tree:
/// which nodes will graft, where, and who is beyond help. Produced by
/// [`ProtoSession::plan_recoveries`]; consumed by the failure runner and by
/// external auditors (the faultlab campaign subsystem) that need the exact
/// restoration paths the routers will execute.
#[derive(Debug, Clone)]
pub struct RecoveryPlans {
    /// Computed restoration paths, one per grafting node: fragment roots
    /// when the root itself can detour, otherwise individual members of the
    /// cornered root's fragment.
    pub recoveries: Vec<Recovery>,
    /// Fragment roots that had no restoration path of their own (their
    /// members recover individually, triggered by data starvation).
    pub cornered_roots: Vec<NodeId>,
    /// Affected members with no restoration path at all — failed nodes or
    /// members physically partitioned from the surviving tree.
    pub unrecoverable: Vec<NodeId>,
}

impl RecoveryPlans {
    /// Whether every plan is a fragment-root local graft (no member had to
    /// fall back to individual, starvation-triggered recovery).
    pub fn all_root_grafts(&self) -> bool {
        self.cornered_roots.is_empty()
    }
}

/// Result of one protocol-level failure experiment.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// When the failure was injected.
    pub fail_at: SimTime,
    /// Per affected member: restoration latency (`None` if service never
    /// resumed within the run).
    pub restorations: Vec<(NodeId, Option<SimTime>)>,
    /// Members that never lost service.
    pub unaffected: Vec<NodeId>,
    /// Total messages delivered by the simulator during the run.
    pub messages_delivered: u64,
    /// Total messages dropped (failed links/nodes/channel).
    pub messages_dropped: u64,
    /// Control-plane health: reliable-layer counters aggregated across all
    /// routers plus what the degraded channel did. All-zero for lossless
    /// runs.
    pub health: ControlHealth,
    /// Protection-plane counters aggregated across all routers: plans
    /// held, local activations, stale-plan discards. All-zero unless the
    /// run used [`RecoveryStrategy::Protection`].
    pub protection: crate::router::ProtectionCounters,
}

impl RecoveryReport {
    /// Whether every affected member restored service.
    pub fn all_restored(&self) -> bool {
        self.restorations.iter().all(|(_, l)| l.is_some())
    }

    /// Mean restoration latency in milliseconds over restored members
    /// (`None` if nothing restored).
    pub fn mean_latency_ms(&self) -> Option<f64> {
        let restored: Vec<f64> = self
            .restorations
            .iter()
            .filter_map(|(_, l)| l.map(SimTime::as_ms))
            .collect();
        if restored.is_empty() {
            None
        } else {
            Some(restored.iter().sum::<f64>() / restored.len() as f64)
        }
    }

    /// Worst restoration latency in milliseconds among restored members.
    pub fn max_latency_ms(&self) -> Option<f64> {
        self.restorations
            .iter()
            .filter_map(|(_, l)| l.map(SimTime::as_ms))
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// Steady-state control-plane overhead of a session (§3.3.2).
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// Observation window.
    pub duration: SimTime,
    /// Control messages sent across all routers, by type.
    pub control: crate::router::ControlCounters,
    /// Data packets delivered to members.
    pub data_delivered: u64,
    /// Data packets forwarded by routers (link crossings).
    pub data_forwarded: u64,
    /// Number of on-tree routers carrying state.
    pub on_tree_nodes: usize,
}

impl OverheadReport {
    /// Control messages per data packet delivered (the §3.3.2 "fairly
    /// small overhead" quantity).
    pub fn control_per_delivery(&self) -> f64 {
        if self.data_delivered == 0 {
            return f64::INFINITY;
        }
        self.control.total() as f64 / self.data_delivered as f64
    }

    /// Control messages per on-tree router per second.
    pub fn control_rate_per_router(&self) -> f64 {
        let secs = self.duration.as_ms() / 1000.0;
        if secs <= 0.0 || self.on_tree_nodes == 0 {
            return 0.0;
        }
        self.control.total() as f64 / self.on_tree_nodes as f64 / secs
    }
}

/// A protocol-level multicast session ready for failure experiments.
#[derive(Debug, Clone)]
pub struct ProtoSession<'g> {
    graph: &'g Graph,
    source: NodeId,
    tree: MulticastTree,
    router_config: RouterConfig,
    timer_backend: TimerBackend,
    srlgs: Vec<Vec<LinkId>>,
}

impl<'g> ProtoSession<'g> {
    /// Builds the multicast tree for `members` with the chosen protocol.
    ///
    /// # Errors
    ///
    /// Propagates tree-construction failures from `smrp-core`.
    pub fn build(
        graph: &'g Graph,
        source: NodeId,
        members: &[NodeId],
        protocol: TreeProtocol,
    ) -> Result<Self, SmrpError> {
        let tree = match protocol {
            TreeProtocol::Smrp(config) => {
                let mut sess = SmrpSession::new(graph, source, config)?;
                for &m in members {
                    sess.join(m)?;
                }
                sess.tree().clone()
            }
            TreeProtocol::Spf => {
                let mut sess = SpfSession::new(graph, source)?;
                for &m in members {
                    sess.join(m)?;
                }
                sess.tree().clone()
            }
        };
        Ok(ProtoSession {
            graph,
            source,
            tree,
            router_config: RouterConfig::default(),
            timer_backend: TimerBackend::default(),
            srlgs: Vec::new(),
        })
    }

    /// Wraps an externally built tree — e.g. one recovery domain of a
    /// hierarchical session re-exported to global coordinates — without
    /// running any join protocol. The source is read off the tree itself;
    /// member weights (aggregated populations) travel with it.
    pub fn from_tree(graph: &'g Graph, tree: MulticastTree) -> Self {
        let source = tree.source();
        ProtoSession {
            graph,
            source,
            tree,
            router_config: RouterConfig::default(),
            timer_backend: TimerBackend::default(),
            srlgs: Vec::new(),
        }
    }

    /// Overrides the protocol timing parameters.
    pub fn set_router_config(&mut self, config: RouterConfig) {
        self.router_config = config;
    }

    /// Declares the shared-risk link groups protection plans must respect:
    /// a node whose upstream link belongs to an SRLG assumes the *whole
    /// group* fails together when precomputing its primary backup detour.
    /// Has no effect on the reactive strategies.
    pub fn set_srlgs(&mut self, srlgs: Vec<Vec<LinkId>>) {
        self.srlgs = srlgs;
    }

    /// Selects the engine timer backend for this session's runs. Defaults
    /// to the production timer wheel; the reference heap exists for
    /// differential tests (the two must produce byte-identical traces).
    pub fn set_timer_backend(&mut self, backend: TimerBackend) {
        self.timer_backend = backend;
    }

    /// The engine timer backend this session's runs use.
    pub fn timer_backend(&self) -> TimerBackend {
        self.timer_backend
    }

    /// The protocol timing parameters routers are loaded with.
    pub fn router_config(&self) -> RouterConfig {
        self.router_config
    }

    /// The graph this session's tree lives on.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The tree the routers will be loaded with.
    pub fn tree(&self) -> &MulticastTree {
        &self.tree
    }

    /// The multicast source.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Instantiates routers preloaded with the session tree.
    fn routers(&self) -> Vec<Router> {
        self.routers_with(self.router_config)
    }

    /// Like [`routers`](Self::routers) with an explicit config — lossy
    /// runs load loss-hardened timers without mutating the session.
    fn routers_with(&self, config: RouterConfig) -> Vec<Router> {
        let mut routers: Vec<Router> = (0..self.graph.node_count())
            .map(|_| Router::new(config))
            .collect();
        for n in self.tree.on_tree_nodes() {
            let upstream = self.tree.parent(n);
            let downstream: Vec<NodeId> = self.tree.children(n).to_vec();
            routers[n.index()].load_state(upstream, &downstream, self.tree.is_member(n));
        }
        routers[self.source.index()].set_source();
        routers
    }

    /// Fragment roots: usable on-tree nodes whose upstream link is broken
    /// by `scenario`. These are the nodes that detect the failure and
    /// initiate recovery for their subtree.
    pub fn fragment_roots(&self, scenario: &FailureScenario) -> Vec<NodeId> {
        let mut roots = Vec::new();
        for n in self.tree.on_tree_nodes() {
            if !scenario.node_usable(n) {
                continue;
            }
            let Some(p) = self.tree.parent(n) else {
                continue;
            };
            let Some(l) = self.graph.link_between(n, p) else {
                continue;
            };
            if !scenario.link_usable(self.graph, l) {
                roots.push(n);
            }
        }
        roots
    }

    /// Runs the session with no failures for `duration` and reports the
    /// control-plane overhead (§3.3.2): how many hellos, refreshes and
    /// setups the tree costs per unit of useful data delivered.
    pub fn run_steady(&self, duration: SimTime) -> OverheadReport {
        let routers = self.routers();
        let mut sim = NetSim::new(self.graph, routers);
        sim.set_timer_backend(self.timer_backend);
        sim.set_trace(TraceLog::disabled());
        for n in self.tree.on_tree_nodes() {
            sim.with_node(n, |r, ctx| r.start_timers(ctx));
        }
        sim.run_until(duration);

        let mut control = crate::router::ControlCounters::default();
        let mut data_delivered = 0u64;
        let mut data_forwarded = 0u64;
        for n in self.graph.node_ids() {
            let r = sim.node(n);
            control.merge(&r.control_sent());
            data_forwarded += r.forwarded_count();
            if r.is_member() {
                data_delivered += r.deliveries().len() as u64;
            }
        }
        OverheadReport {
            duration,
            control,
            data_delivered,
            data_forwarded,
            on_tree_nodes: self.tree.on_tree_nodes().count(),
        }
    }

    /// Computes the recovery plans `scenario` induces under detour `kind`,
    /// without running the simulator.
    ///
    /// Fragment roots that can reach the surviving tree graft for their
    /// whole subtree; cornered roots delegate to their members, who recover
    /// individually (§3.1: each disconnected member locates its own
    /// restoration path). Members with no non-faulty route at all are
    /// reported as unrecoverable.
    pub fn plan_recoveries(&self, scenario: &FailureScenario, kind: DetourKind) -> RecoveryPlans {
        let mut plans = RecoveryPlans {
            recoveries: Vec::new(),
            cornered_roots: Vec::new(),
            unrecoverable: Vec::new(),
        };
        for root in self.fragment_roots(scenario) {
            match recovery::recover(self.graph, &self.tree, scenario, root, kind) {
                Ok(rec) => plans.recoveries.push(rec),
                Err(_) => {
                    // The fragment root itself is cornered (e.g. its only
                    // link is the failed one).
                    plans.cornered_roots.push(root);
                    for n in self.tree.subtree_nodes(root) {
                        if !self.tree.is_member(n) {
                            continue;
                        }
                        match recovery::recover(self.graph, &self.tree, scenario, n, kind) {
                            Ok(rec) => plans.recoveries.push(rec),
                            Err(_) => plans.unrecoverable.push(n),
                        }
                    }
                }
            }
        }
        // Members whose fragment root is the failed node itself (node
        // failures leave no usable root above them) are not below any
        // fragment root; catch them by scanning affected members not
        // already covered.
        let planned: std::collections::HashSet<NodeId> = plans
            .recoveries
            .iter()
            .map(|r| r.member())
            .chain(plans.cornered_roots.iter().copied())
            .collect();
        let covered = |m: NodeId| {
            if planned.contains(&m) {
                return true;
            }
            // Below a planned graft point? Walk up the tree.
            let mut cur = m;
            while let Some(p) = self.tree.parent(cur) {
                if planned.contains(&p) {
                    return true;
                }
                cur = p;
            }
            false
        };
        for m in recovery::affected_members(self.graph, &self.tree, scenario) {
            if covered(m) || plans.unrecoverable.contains(&m) {
                continue;
            }
            match recovery::recover(self.graph, &self.tree, scenario, m, kind) {
                Ok(rec) => plans.recoveries.push(rec),
                Err(_) => plans.unrecoverable.push(m),
            }
        }
        plans
    }

    /// Precomputes the protection plane: for every on-tree node with an
    /// upstream, a fallback chain of backup detours computed against that
    /// node's *hypothetical* upstream contingencies — no knowledge of any
    /// actual failure is used.
    ///
    /// Contingencies per node `v` with upstream `u`, most conservative
    /// first:
    ///
    /// 1. `u`, the link `v–u`, and every link sharing an SRLG with `v–u`
    ///    (only when SRLG metadata was declared via
    ///    [`set_srlgs`](Self::set_srlgs) and covers the link);
    /// 2. `u` and the link `v–u` (upstream node protection);
    /// 3. the link `v–u` alone (upstream link protection).
    ///
    /// A detour computed against a contingency survives any *subset* of
    /// that contingency actually failing, so the primary plan already
    /// covers single-link, single-node and shared-fate SRLG failures; the
    /// relaxed fallbacks only matter when the conservative contingency
    /// disconnects `v` entirely. Each detour targets the nearest on-tree
    /// node still tree-connected to the source under the contingency
    /// ([`recovery::surviving_connected`]), which automatically excludes
    /// `v`'s own subtree. Batch computation goes through
    /// [`BackupPlanner`], the incremental-refresh half of the scheme.
    pub fn protection_plans(&self) -> Vec<(NodeId, Vec<RecoveryPlan>)> {
        let mut planner = BackupPlanner::new();
        // Per request: which nodes its contingency still allows as graft
        // targets. Parallel to the planner's request ids.
        let mut target_masks: Vec<Vec<bool>> = Vec::new();
        // Per protected node: its request ids, most conservative first.
        let mut per_node: Vec<(NodeId, Vec<usize>)> = Vec::new();
        for v in self.tree.on_tree_nodes() {
            let Some(u) = self.tree.parent(v) else {
                continue;
            };
            let Some(l) = self.graph.link_between(v, u) else {
                continue;
            };
            let link_only = FailureScenario::link(l);
            let node_and_link = FailureScenario::link(l).with_node(u);
            let mut conservative = FailureScenario::link(l).with_node(u);
            let mut group_links = FailureScenario::link(l);
            let mut shares_fate = false;
            for group in self.srlgs.iter().filter(|g| g.contains(&l)) {
                shares_fate = true;
                for &gl in group {
                    conservative.fail_link(gl);
                    group_links.fail_link(gl);
                }
            }
            // The fallback chain, ordered by contingency *robustness*, not
            // by detour optimality. Each entry is `(avoid, anchored)`;
            // anchored requests graft straight onto the source — the one
            // target no remote failure can cut off from itself — instead
            // of the nearest on-tree node judged surviving under the
            // contingency (that judgment is only as good as the
            // contingency, so a wider actual failure can leave every
            // nearby target in the same severed fragment and the
            // activation restores nothing).
            //
            // Cell-avoiding entries come first for shared-fate nodes,
            // *including the cell-avoiding source anchors, ahead of the
            // single-link/node fallbacks*: a shared-fate cut fails many
            // links at once and a plan computed against a narrower
            // contingency routinely crosses another link of the same cell
            // — silently. Each silently-failing entry costs one
            // activation-confirmation window before the rotation advances,
            // so fragile entries ahead of robust ones translate directly
            // into restoration latency. Note the cell-only contingency
            // (without `u`): cells are *geographic*, the links sharing
            // `v–u`'s conduit crowd one neighborhood, so avoiding the cell
            // plus `u` often disconnects `v` locally while the cell alone
            // — exactly robust for a shared-fate cut, which leaves `u`
            // itself alive — survives far more topologies.
            let mut chain: Vec<(FailureScenario, bool)> = Vec::new();
            if shares_fate {
                chain.push((conservative.clone(), false));
                chain.push((group_links.clone(), false));
                chain.push((conservative, true));
                chain.push((group_links, true));
            }
            chain.push((node_and_link.clone(), false));
            chain.push((link_only.clone(), false));
            chain.push((node_and_link, true));
            chain.push((link_only, true));

            let mut ids = Vec::new();
            for (avoid, anchored) in chain {
                let mut mask = vec![false; self.graph.node_count()];
                if anchored {
                    mask[self.tree.source().index()] = true;
                } else {
                    for t in recovery::surviving_connected(self.graph, &self.tree, &avoid) {
                        mask[t.index()] = true;
                    }
                }
                ids.push(planner.insert(DetourRequest { from: v, avoid }));
                target_masks.push(mask);
            }
            per_node.push((v, ids));
        }
        planner.refresh(self.graph, |id, n| target_masks[id][n.index()]);

        let mut out = Vec::new();
        for (v, ids) in per_node {
            let mut plans: Vec<RecoveryPlan> = Vec::new();
            for id in ids {
                if let Some(p) = planner.plan(id) {
                    let path = p.nodes().to_vec();
                    // Relaxed contingencies often rediscover the primary
                    // detour; keep the chain free of duplicates.
                    if !plans.iter().any(|rp| rp.path == path) {
                        plans.push(RecoveryPlan {
                            path,
                            wait: SimTime::ZERO,
                            path_delay: SimTime::from_ms(p.delay(self.graph)),
                        });
                    }
                }
            }
            if !plans.is_empty() {
                out.push((v, plans));
            }
        }
        out
    }

    /// Runs a failure experiment: warm up, inject `scenario` at `fail_at`,
    /// run until `until`, report restoration latencies for affected
    /// members.
    ///
    /// Recovery plans are computed with the `smrp-core` recovery engine and
    /// installed on the fragment roots (standing in for their own path
    /// computation at detection time).
    pub fn run_failure(
        &self,
        scenario: &FailureScenario,
        strategy: RecoveryStrategy,
        fail_at: SimTime,
        until: SimTime,
    ) -> RecoveryReport {
        self.run_failure_timed(
            scenario,
            strategy,
            FailureTiming::persistent(fail_at),
            until,
        )
    }

    /// [`run_failure`](Self::run_failure) with explicit failure timing:
    /// persistent scenarios behave identically; transient timing schedules
    /// repair events for every failed component at `timing.repair_at`.
    pub fn run_failure_timed(
        &self,
        scenario: &FailureScenario,
        strategy: RecoveryStrategy,
        timing: FailureTiming,
        until: SimTime,
    ) -> RecoveryReport {
        self.run_failure_spec(
            scenario,
            strategy,
            InjectionTiming::Once(timing),
            &ChannelSpec::perfect(),
            until,
        )
    }

    /// The full-control failure runner: any [`InjectionTiming`] (including
    /// flapping cycles) over any [`ChannelSpec`].
    ///
    /// When the channel's *default* lane is lossy, the router config is
    /// hardened via [`RouterConfig::hardened_for_loss`] — uniform loss is
    /// ambient noise every router experiences, so timers must tolerate it.
    /// Gray-link overrides do **not** harden: a single rotten link
    /// *should* look like a failure to the routers behind it.
    pub fn run_failure_spec(
        &self,
        scenario: &FailureScenario,
        strategy: RecoveryStrategy,
        timing: InjectionTiming,
        channel: &ChannelSpec,
        until: SimTime,
    ) -> RecoveryReport {
        let fail_at = timing.fail_at();
        let config = self.router_config.hardened_for_loss(channel.default.loss);
        let mut routers = self.routers_with(config);

        if let RecoveryStrategy::Protection = strategy {
            // Protection installs the precomputed plane on *every*
            // protected node, before (and regardless of) the scenario —
            // restoration is local activation of whatever was cached.
            for (node, plans) in self.protection_plans() {
                routers[node.index()].install_backup_plans(plans);
            }
        } else {
            let (kind, wait) = match strategy {
                RecoveryStrategy::LocalDetour => (DetourKind::Local, SimTime::ZERO),
                RecoveryStrategy::ReactiveSearch { search } => (DetourKind::Local, search),
                RecoveryStrategy::GlobalDetour { reconvergence } => {
                    (DetourKind::Global, reconvergence)
                }
                RecoveryStrategy::Protection => unreachable!(),
            };
            for rec in self.plan_recoveries(scenario, kind).recoveries {
                routers[rec.member().index()].install_recovery_plan(RecoveryPlan {
                    path: rec.restoration_path().nodes().to_vec(),
                    wait,
                    path_delay: SimTime::from_ms(rec.restoration_path().delay(self.graph)),
                });
            }
        }

        let mut sim = NetSim::new(self.graph, routers);
        sim.set_timer_backend(self.timer_backend);
        sim.set_trace(TraceLog::disabled());
        if !channel.is_perfect() {
            sim.set_channel(Some(ChannelModel::new(channel)));
        }
        for n in self.tree.on_tree_nodes() {
            sim.with_node(n, |r, ctx| r.start_timers(ctx));
        }
        for (down_at, up_at) in timing.schedule() {
            for l in scenario.failed_links() {
                sim.schedule_link_failure(down_at, l);
                if let Some(up_at) = up_at {
                    sim.schedule_link_repair(up_at, l);
                }
            }
            for n in scenario.failed_nodes() {
                sim.schedule_node_failure(down_at, n);
                if let Some(up_at) = up_at {
                    sim.schedule_node_repair(up_at, n);
                }
            }
        }
        sim.run_until(until);

        let affected = recovery::affected_members(self.graph, &self.tree, scenario);
        let affected_set: Vec<NodeId> = affected.clone();
        // A packet that was already in flight when the failure hit still
        // arrives and must not count as restored service: only packets the
        // source *sent* after the failure qualify. The source emits seq `s`
        // at `(s + 1) · data_interval`.
        let interval = self.router_config.data_interval.as_ms();
        let sent_at = |seq: u64| SimTime::from_ms(interval * (seq as f64 + 1.0));
        let restorations = affected
            .into_iter()
            .map(|m| {
                let latency = sim
                    .node(m)
                    .deliveries()
                    .iter()
                    .find(|d| sent_at(d.seq) > fail_at)
                    .map(|d| d.time - fail_at);
                (m, latency)
            })
            .collect();
        let unaffected = self
            .tree
            .members()
            .filter(|m| !affected_set.contains(m))
            .collect();
        let mut health = ControlHealth::default();
        let mut protection = crate::router::ProtectionCounters::default();
        for n in self.graph.node_ids() {
            let r = sim.node(n).reliability();
            health.retransmits += r.retransmits;
            health.dup_drops += r.dup_drops;
            health.retry_exhaustions += r.retry_exhaustions;
            health.acks += r.acks_sent;
            protection.merge(&sim.node(n).protection_counters());
        }
        if let Some(ch) = sim.channel_stats() {
            health.channel_dupes = ch.duplicated;
            health.channel_reorders = ch.reordered;
            for (&class, &n) in &ch.lost_by_class {
                *health.loss_by_class.entry(class.to_string()).or_insert(0) += n;
            }
        }
        RecoveryReport {
            fail_at,
            restorations,
            unaffected,
            messages_delivered: sim.delivered_count(),
            messages_dropped: sim.dropped_count(),
            health,
            protection,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrp_core::paper;

    #[test]
    fn figure1_protocol_recovery_local_vs_global() {
        let (graph, nodes) = paper::figure1_graph();
        let session =
            ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
        let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
        let scenario = FailureScenario::link(l_ad);

        let fail_at = SimTime::from_ms(100.0);
        let until = SimTime::from_ms(5000.0);
        let local = session.run_failure(&scenario, RecoveryStrategy::LocalDetour, fail_at, until);
        let global = session.run_failure(
            &scenario,
            RecoveryStrategy::GlobalDetour {
                reconvergence: SimTime::from_ms(1000.0),
            },
            fail_at,
            until,
        );
        assert!(local.all_restored(), "local: {:?}", local.restorations);
        assert!(global.all_restored(), "global: {:?}", global.restorations);
        let l = local.mean_latency_ms().unwrap();
        let g = global.mean_latency_ms().unwrap();
        assert!(
            l * 5.0 < g,
            "local detour ({l}ms) should be far faster than waiting for \
             reconvergence ({g}ms)"
        );
    }

    #[test]
    fn unaffected_members_keep_receiving() {
        let (graph, nodes) = paper::figure1_graph();
        let session =
            ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
        let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
        let scenario = FailureScenario::link(l_ad);
        let report = session.run_failure(
            &scenario,
            RecoveryStrategy::LocalDetour,
            SimTime::from_ms(50.0),
            SimTime::from_ms(1000.0),
        );
        assert_eq!(report.unaffected, vec![nodes.c]);
        assert_eq!(report.restorations.len(), 1);
        assert_eq!(report.restorations[0].0, nodes.d);
    }

    #[test]
    fn fragment_roots_identify_detection_points() {
        let (graph, nodes) = paper::figure1_graph();
        let session =
            ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
        let l_sa = graph.link_between(nodes.s, nodes.a).unwrap();
        let roots = session.fragment_roots(&FailureScenario::link(l_sa));
        assert_eq!(roots, vec![nodes.a]);
        let roots = session.fragment_roots(&FailureScenario::node(nodes.a));
        let mut roots = roots;
        roots.sort();
        assert_eq!(roots, vec![nodes.c, nodes.d]);
    }

    #[test]
    fn smrp_tree_protocol_builds_disjoint_paths() {
        let (graph, nodes) = paper::figure1_graph();
        let config = SmrpConfig {
            d_thresh: 0.5,
            ..SmrpConfig::default()
        };
        let session = ProtoSession::build(
            &graph,
            nodes.s,
            &[nodes.c, nodes.d],
            TreeProtocol::Smrp(config),
        )
        .unwrap();
        // As in Figure 2: D hangs off B.
        assert_eq!(
            session.tree().path_from_source(nodes.d).unwrap().nodes(),
            &[nodes.s, nodes.b, nodes.d]
        );
        // Failing L_SA now leaves D untouched, and C recovers quickly.
        let l_sa = graph.link_between(nodes.s, nodes.a).unwrap();
        let report = session.run_failure(
            &FailureScenario::link(l_sa),
            RecoveryStrategy::LocalDetour,
            SimTime::from_ms(50.0),
            SimTime::from_ms(2000.0),
        );
        assert_eq!(report.unaffected, vec![nodes.d]);
        assert!(report.all_restored());
    }

    #[test]
    fn steady_state_overhead_is_bounded() {
        let (graph, nodes) = paper::figure1_graph();
        let session =
            ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
        let report = session.run_steady(SimTime::from_ms(1000.0));
        assert!(report.data_delivered > 100, "members received data");
        assert!(report.control.hellos > 0);
        assert!(report.control.refreshes > 0);
        assert_eq!(report.control.setups, 0, "no joins/grafts at steady state");
        assert_eq!(report.control.leaves, 0);
        // Hellos dominate but stay within an order of magnitude of the
        // data volume with the default timers.
        let ratio = report.control_per_delivery();
        assert!(ratio.is_finite());
        assert!(ratio < 10.0, "control per delivery too high: {ratio}");
        assert!(report.control_rate_per_router() > 0.0);
    }

    #[test]
    fn plan_recoveries_reports_root_grafts_and_unrecoverables() {
        let (graph, nodes) = paper::figure1_graph();
        let session =
            ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
        // Single link failure: fragment root A grafts for both members.
        let l_sa = graph.link_between(nodes.s, nodes.a).unwrap();
        let plans = session.plan_recoveries(&FailureScenario::link(l_sa), DetourKind::Local);
        assert_eq!(plans.recoveries.len(), 1);
        assert_eq!(plans.recoveries[0].member(), nodes.a);
        assert!(plans.all_root_grafts());
        assert!(plans.unrecoverable.is_empty());
        // Node failure of a member: the member is unrecoverable, the other
        // fragment root still grafts.
        let plans = session.plan_recoveries(&FailureScenario::node(nodes.d), DetourKind::Local);
        assert!(plans.recoveries.is_empty(), "no usable fragment to graft");
        assert_eq!(plans.unrecoverable, vec![nodes.d]);
    }

    #[test]
    fn transient_failure_restores_service_by_repair_alone() {
        // Tree S - A - C where C's only route is through A: no detour
        // exists, so only the repair can restore service.
        let mut g = Graph::with_nodes(3);
        let ids: Vec<_> = g.node_ids().collect();
        let l_sa = g.add_link(ids[0], ids[1], 1.0).unwrap();
        g.add_link(ids[1], ids[2], 1.0).unwrap();
        let session = ProtoSession::build(&g, ids[0], &[ids[2]], TreeProtocol::Spf).unwrap();
        let scenario = FailureScenario::link(l_sa);
        let persistent = session.run_failure(
            &scenario,
            RecoveryStrategy::LocalDetour,
            SimTime::from_ms(50.0),
            SimTime::from_ms(1500.0),
        );
        assert!(!persistent.all_restored(), "no detour exists");
        let transient = session.run_failure_timed(
            &scenario,
            RecoveryStrategy::LocalDetour,
            FailureTiming::transient(SimTime::from_ms(50.0), SimTime::from_ms(300.0)),
            SimTime::from_ms(1500.0),
        );
        assert!(transient.all_restored(), "repair heals the only path");
        let latency = transient.restorations[0].1.unwrap();
        assert!(
            latency >= SimTime::from_ms(250.0),
            "service was out until the repair: {latency:?}"
        );
    }

    #[test]
    fn unrecoverable_member_reports_none() {
        // Tree S - A - C where C's only other connectivity is through A.
        let mut g = Graph::with_nodes(3);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        g.add_link(ids[1], ids[2], 1.0).unwrap();
        let session = ProtoSession::build(&g, ids[0], &[ids[2]], TreeProtocol::Spf).unwrap();
        let scenario = FailureScenario::node(ids[1]);
        let report = session.run_failure(
            &scenario,
            RecoveryStrategy::LocalDetour,
            SimTime::from_ms(50.0),
            SimTime::from_ms(1000.0),
        );
        assert_eq!(report.restorations, vec![(ids[2], None)]);
        assert!(!report.all_restored());
        assert!(report.mean_latency_ms().is_none());
    }

    #[test]
    fn slow_graft_onto_pruned_relay_reextends_the_branch() {
        // Chain S - A - B - M plus a costly side link M - A. The SPF tree
        // is S→A→B→M; cutting B-M orphans M, whose global detour attaches
        // at A via the side link. The 800 ms reconvergence wait outlives
        // the branch's soft state: B (then A) prunes itself long before
        // the graft fires, so the setup merges at an off-tree router and
        // must re-extend the branch toward S.
        let mut g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        g.add_link(ids[1], ids[2], 1.0).unwrap();
        let l_bm = g.add_link(ids[2], ids[3], 1.0).unwrap();
        g.add_link(ids[3], ids[1], 5.0).unwrap();
        let session = ProtoSession::build(&g, ids[0], &[ids[3]], TreeProtocol::Spf).unwrap();
        assert_eq!(
            session.tree().path_from_source(ids[3]).unwrap().nodes(),
            &[ids[0], ids[1], ids[2], ids[3]]
        );
        let report = session.run_failure(
            &FailureScenario::link(l_bm),
            RecoveryStrategy::GlobalDetour {
                reconvergence: SimTime::from_ms(800.0),
            },
            SimTime::from_ms(100.0),
            SimTime::from_ms(3000.0),
        );
        assert!(
            report.all_restored(),
            "graft must resurrect the pruned branch: {:?}",
            report.restorations
        );
        let latency = report.restorations[0].1.unwrap();
        assert!(
            latency >= SimTime::from_ms(800.0),
            "restoration waited out reconvergence: {latency:?}"
        );
    }

    #[test]
    fn lossy_channel_run_restores_with_bounded_health_cost() {
        let (graph, nodes) = paper::figure1_graph();
        let session =
            ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
        let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
        let channel = ChannelSpec::uniform_loss(0.1, 0xC0FFEE);
        let report = session.run_failure_spec(
            &FailureScenario::link(l_ad),
            RecoveryStrategy::LocalDetour,
            InjectionTiming::Once(FailureTiming::persistent(SimTime::from_ms(100.0))),
            &channel,
            SimTime::from_ms(3000.0),
        );
        assert!(
            report.all_restored(),
            "10% uniform loss must not defeat restoration: {:?}",
            report.restorations
        );
        // The reliable layer worked for its living: losses happened and
        // were covered; nothing ran out of budget.
        assert!(report.health.total_lost() > 0, "channel should lose some");
        assert!(report.health.retransmits > 0, "losses imply retransmits");
        assert_eq!(report.health.retry_exhaustions, 0, "budget must hold");
        assert!(report.health.acks > 0);
    }

    #[test]
    fn lossy_run_is_deterministic_for_a_fixed_spec() {
        let (graph, nodes) = paper::figure1_graph();
        let session =
            ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
        let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
        let channel = ChannelSpec::uniform_loss(0.1, 42);
        let run = || {
            session.run_failure_spec(
                &FailureScenario::link(l_ad),
                RecoveryStrategy::LocalDetour,
                InjectionTiming::Once(FailureTiming::persistent(SimTime::from_ms(100.0))),
                &channel,
                SimTime::from_ms(2000.0),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.restorations, b.restorations);
        assert_eq!(a.messages_delivered, b.messages_delivered);
        assert_eq!(a.health, b.health);
    }

    #[test]
    fn flapping_link_service_survives_every_cycle() {
        // S - A - C chain, no detour: each down-window starves the member,
        // each up-window must heal it again via soft state alone.
        let mut g = Graph::with_nodes(3);
        let ids: Vec<_> = g.node_ids().collect();
        let l_sa = g.add_link(ids[0], ids[1], 1.0).unwrap();
        g.add_link(ids[1], ids[2], 1.0).unwrap();
        let session = ProtoSession::build(&g, ids[0], &[ids[2]], TreeProtocol::Spf).unwrap();
        let timing = InjectionTiming::Flapping {
            fail_at: SimTime::from_ms(100.0),
            down: SimTime::from_ms(250.0),
            up: SimTime::from_ms(400.0),
            cycles: 3,
        };
        let report = session.run_failure_spec(
            &FailureScenario::link(l_sa),
            RecoveryStrategy::LocalDetour,
            timing,
            &ChannelSpec::perfect(),
            SimTime::from_ms(3000.0),
        );
        assert!(
            report.all_restored(),
            "service heals after the flaps: {:?}",
            report.restorations
        );
        // The last cycle ends at 100 + 3*650 - 400 = 1650ms (final repair);
        // service must also be alive *after* that point.
        let member = ids[2];
        assert_eq!(report.restorations[0].0, member);
    }

    #[test]
    fn protection_plans_cover_every_upstream_bearing_node() {
        let (graph, nodes) = paper::figure1_graph();
        let session =
            ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
        let plans = session.protection_plans();
        // Every on-tree node except the source holds at least one plan...
        let expected: Vec<NodeId> = session
            .tree()
            .on_tree_nodes()
            .filter(|&n| session.tree().parent(n).is_some())
            .collect();
        let planned: Vec<NodeId> = plans.iter().map(|(n, _)| *n).collect();
        assert_eq!(planned, expected);
        // ...every plan starts at its owner and activates with no wait,
        // and the *primary* (most conservative) plan avoids the upstream
        // node outright. Relaxed fallbacks may legitimately route through
        // it — link protection assumes the node survived.
        for (n, chain) in &plans {
            assert!(!chain.is_empty());
            let up = session.tree().parent(*n).unwrap();
            for plan in chain {
                assert_eq!(plan.path[0], *n);
                assert_eq!(plan.wait, SimTime::ZERO);
            }
            // A source child has no node-protection plan (losing the
            // source is unrecoverable), so its primary legitimately
            // re-attaches *at* the upstream; it must still never transit
            // through it.
            let transit = &chain[0].path[..chain[0].path.len() - 1];
            assert!(
                !transit[1..].contains(&up),
                "the primary detour must not transit the upstream it protects against"
            );
        }
    }

    #[test]
    fn protection_restores_faster_than_reactive_search() {
        let (graph, nodes) = paper::figure1_graph();
        let session =
            ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
        let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
        let scenario = FailureScenario::link(l_ad);
        let fail_at = SimTime::from_ms(100.0);
        let until = SimTime::from_ms(3000.0);

        let reactive = session.run_failure(
            &scenario,
            RecoveryStrategy::ReactiveSearch {
                search: SimTime::from_ms(25.0),
            },
            fail_at,
            until,
        );
        let protected =
            session.run_failure(&scenario, RecoveryStrategy::Protection, fail_at, until);
        assert!(reactive.all_restored(), "{:?}", reactive.restorations);
        assert!(protected.all_restored(), "{:?}", protected.restorations);
        let r = reactive.mean_latency_ms().unwrap();
        let p = protected.mean_latency_ms().unwrap();
        assert!(
            p < r,
            "local activation ({p}ms) must beat the on-demand search ({r}ms)"
        );
        assert!(protected.protection.plans_held > 0, "plans stay cached");
        assert!(protected.protection.activations >= 1, "the plan fired");
        assert_eq!(protected.protection.stale_discards, 0, "nothing staled");
        assert_eq!(
            reactive.protection.plans_held, 0,
            "reactive runs hold no protection state"
        );
    }

    #[test]
    fn protection_survives_node_failure_via_conservative_contingency() {
        // Node failure of the relay A: both members' plans were computed
        // against the upstream-node contingency, so local activation must
        // restore them without any scenario-specific planning.
        let (graph, nodes) = paper::figure1_graph();
        let session =
            ProtoSession::build(&graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap();
        let report = session.run_failure(
            &FailureScenario::node(nodes.a),
            RecoveryStrategy::Protection,
            SimTime::from_ms(100.0),
            SimTime::from_ms(3000.0),
        );
        assert!(report.all_restored(), "{:?}", report.restorations);
        assert!(report.protection.activations >= 1);
        assert_eq!(report.health.retry_exhaustions, 0);
    }

    #[test]
    fn srlg_aware_plan_avoids_the_whole_shared_fate_group() {
        // Square S - A - M, S - B - M plus a third detour M - C - S. Links
        // A-M and B-M share fate: a plan for M that only avoided its
        // upstream link could pick the sibling link and die with it.
        let mut g = Graph::with_nodes(5);
        let ids: Vec<_> = g.node_ids().collect();
        let (s, a, b, m, c) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        g.add_link(s, a, 1.0).unwrap();
        let l_am = g.add_link(a, m, 1.0).unwrap();
        g.add_link(s, b, 1.0).unwrap();
        let l_bm = g.add_link(b, m, 1.0).unwrap();
        g.add_link(s, c, 3.0).unwrap();
        g.add_link(c, m, 3.0).unwrap();
        let mut session = ProtoSession::build(&g, s, &[m], TreeProtocol::Spf).unwrap();
        session.set_srlgs(vec![vec![l_am, l_bm]]);
        let plans = session.protection_plans();
        let (_, chain) = plans.iter().find(|(n, _)| *n == m).unwrap();
        // The primary (most conservative) plan must detour via C, not B.
        assert_eq!(chain[0].path, vec![m, c, s]);
        // And the shared-fate failure itself is survived by activation.
        let report = session.run_failure(
            &FailureScenario::links([l_am, l_bm]),
            RecoveryStrategy::Protection,
            SimTime::from_ms(100.0),
            SimTime::from_ms(3000.0),
        );
        assert!(report.all_restored(), "{:?}", report.restorations);
        assert_eq!(report.health.retry_exhaustions, 0);
    }

    #[test]
    fn rebooted_member_resurrects_pruned_ancestors_by_refresh() {
        // Chain S - A - M. M crashes and reboots; during the outage A (a
        // relay whose only downstream state was M's) prunes itself. The
        // rebooted M has no recovery plan — only its periodic refreshes
        // can re-extend the branch through the pruned A.
        let mut g = Graph::with_nodes(3);
        let ids: Vec<_> = g.node_ids().collect();
        g.add_link(ids[0], ids[1], 1.0).unwrap();
        g.add_link(ids[1], ids[2], 1.0).unwrap();
        let session = ProtoSession::build(&g, ids[0], &[ids[2]], TreeProtocol::Spf).unwrap();
        let report = session.run_failure_timed(
            &FailureScenario::node(ids[2]),
            RecoveryStrategy::LocalDetour,
            FailureTiming::transient(SimTime::from_ms(100.0), SimTime::from_ms(500.0)),
            SimTime::from_ms(2000.0),
        );
        assert!(
            report.all_restored(),
            "refresh must re-extend the pruned branch: {:?}",
            report.restorations
        );
        let latency = report.restorations[0].1.unwrap();
        assert!(
            latency >= SimTime::from_ms(400.0),
            "service resumed only after the repair: {latency:?}"
        );
    }
}
