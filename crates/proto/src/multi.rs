//! Multi-session SMRP: many multicast groups sharing one network.
//!
//! The paper evaluates one session at a time; a production deployment
//! serves many concurrent groups whose trees share links, so a single
//! correlated failure (an SRLG, a regional outage) hits several trees at
//! once and their recovery traffic contends on the same substrate. This
//! module shards the protocol by [`GroupId`]:
//!
//! * [`MultiRouter`] — one router *process* per node holding an
//!   independent [`Router`] lane per group. Tree state, SHR bookkeeping,
//!   soft-state timers and reliable-delivery sequence lanes are all
//!   per-group (the reliable lanes are effectively keyed by
//!   `(neighbor, group)`, because each group lane owns its own
//!   endpoint); the links, failure scenario and degraded channel
//!   underneath are shared by every group.
//! * [`MultiSession`] — N [`ProtoSession`] trees loaded into one
//!   simulator: a failure scenario is injected once and every group
//!   detects and recovers concurrently, contending for the same links.
//!
//! A single-group [`MultiSession`] is the degenerate case and behaves
//! *identically* to [`ProtoSession::run_failure_spec`]: the lane dispatch
//! adds no virtual time and preserves event order, which the golden-trace
//! regression test in `tests/multi_golden.rs` pins down.

use smrp_core::recovery::{self, DetourKind};
use smrp_metrics::ControlHealth;
use smrp_net::{FailureScenario, Graph, GroupId, NodeId};
use smrp_sim::{
    ChannelModel, ChannelSpec, Ctx, NetSim, NodeBehavior, NodeCommand, SimTime, TimerBackend,
    TraceLog,
};

use crate::messages::{GroupMsg, GroupTimer};
use crate::router::{ControlCounters, RecoveryPlan, Router, RouterConfig};
use crate::runner::{InjectionTiming, ProtoSession, RecoveryStrategy};

/// Sentinel for "this group has no lane on this node".
const NO_LANE: u32 = u32::MAX;

/// Where a failure run's recovery plans come from: derived from a
/// [`RecoveryStrategy`] over the whole graph (the classic campaigns), or
/// supplied verbatim by an external planner (hierarchical recovery, whose
/// detour search is confined to the failure's owning domain).
enum PlanSource<'p> {
    Strategy(RecoveryStrategy),
    Explicit(&'p [(GroupId, NodeId, RecoveryPlan)]),
}

/// One node's multi-session router process: independent per-group
/// [`Router`] lanes over shared links.
///
/// Messages and timers arrive tagged with their [`GroupId`]; the process
/// dispatches each to the owning lane and re-tags everything the lane
/// emits. Lanes never share mutable state, so one group's protocol
/// activity cannot corrupt another's tree — the isolation property the
/// cross-session proptest in `tests/multi_isolation.rs` exercises.
///
/// Lane storage is a dense arena rather than a `BTreeMap<GroupId,
/// Router>`: `slots[group]` holds a `u32` handle into `routers`, so the
/// hot dispatch path (one lookup per delivered message or fired timer) is
/// an array index instead of a tree walk, and a node carrying lanes for a
/// few of `M` groups pays 4 bytes per absent group, not a map node.
#[derive(Debug, Clone)]
pub struct MultiRouter {
    config: RouterConfig,
    /// `slots[g]` is the index into `routers` of group `g`'s lane, or
    /// [`NO_LANE`]. Grows on first touch of a group.
    slots: Vec<u32>,
    /// Dense lane storage, in first-touch order.
    routers: Vec<Router>,
}

impl MultiRouter {
    /// Creates a router process with no lanes yet; lanes appear when
    /// state is loaded ([`MultiRouter::lane_mut`]) or when the first
    /// message or timer of a group arrives (off-tree nodes become relays
    /// lazily, exactly like a fresh single-session [`Router`]).
    pub fn new(config: RouterConfig) -> Self {
        MultiRouter {
            config,
            slots: Vec::new(),
            routers: Vec::new(),
        }
    }

    /// Read access to one group's lane, if it exists.
    pub fn lane(&self, group: GroupId) -> Option<&Router> {
        match self.slots.get(group.index()) {
            Some(&slot) if slot != NO_LANE => Some(&self.routers[slot as usize]),
            _ => None,
        }
    }

    /// Mutable access to one group's lane, creating an idle off-tree lane
    /// on first touch.
    pub fn lane_mut(&mut self, group: GroupId) -> &mut Router {
        let gi = group.index();
        if gi >= self.slots.len() {
            self.slots.resize(gi + 1, NO_LANE);
        }
        if self.slots[gi] == NO_LANE {
            self.slots[gi] = u32::try_from(self.routers.len()).expect("lane arena exhausted");
            self.routers.push(Router::new(self.config));
        }
        &mut self.routers[self.slots[gi] as usize]
    }

    /// The groups this process currently holds state for, ascending.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, &s)| s != NO_LANE)
            .map(|(g, _)| GroupId::new(g))
    }

    /// Runs `f` against one group's lane with a lane-scoped context, then
    /// re-tags every command the lane issued with the group id and
    /// replays it onto the outer context. This is the sharding seam: the
    /// inner [`Router`] is oblivious to other groups' existence.
    ///
    /// Timer commands are re-issued under the lane's original
    /// [`smrp_sim::TimerToken`], so a lane cancelling one of its timers
    /// later still reaches the engine's entry for it.
    pub fn with_lane(
        &mut self,
        ctx: &mut Ctx<'_, Self>,
        group: GroupId,
        f: impl FnOnce(&mut Router, &mut Ctx<'_, Router>),
    ) {
        let lane = self.lane_mut(group);
        let mut inner = ctx.derive::<Router>();
        f(lane, &mut inner);
        for cmd in inner.into_commands() {
            match cmd {
                NodeCommand::Send { to, msg } => ctx.send(to, GroupMsg { group, inner: msg }),
                NodeCommand::Timer {
                    delay,
                    timer,
                    token,
                } => {
                    ctx.set_timer_with_token(
                        delay,
                        GroupTimer {
                            group,
                            inner: timer,
                        },
                        token,
                    );
                }
                NodeCommand::CancelTimer { token } => ctx.cancel_timer(token),
            }
        }
    }
}

impl NodeBehavior for MultiRouter {
    type Msg = GroupMsg;
    type Timer = GroupTimer;

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: GroupMsg) {
        self.with_lane(ctx, msg.group, |r, ictx| {
            r.on_message(ictx, from, msg.inner)
        });
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: GroupTimer) {
        self.with_lane(ctx, timer.group, |r, ictx| r.on_timer(ictx, timer.inner));
    }

    fn on_reboot(&mut self, ctx: &mut Ctx<'_, Self>) {
        let groups: Vec<GroupId> = self.groups().collect();
        for g in groups {
            self.with_lane(ctx, g, |r, ictx| r.on_reboot(ictx));
        }
    }

    /// Channel loss accounting stays per *protocol* class: envelope group
    /// tags are transparent, so multi-session loss tables line up with
    /// single-session ones.
    fn classify(msg: &GroupMsg) -> &'static str {
        Router::classify(&msg.inner)
    }
}

/// One group's slice of a multi-session failure experiment.
#[derive(Debug, Clone)]
pub struct GroupRecoveryReport {
    /// The group.
    pub group: GroupId,
    /// Per affected member: restoration latency (`None` if service never
    /// resumed within the run), in member order.
    pub restorations: Vec<(NodeId, Option<SimTime>)>,
    /// Members of this group the failure never touched.
    pub unaffected: Vec<NodeId>,
    /// Reliable-layer counters of this group's lanes only. Channel-level
    /// counters (loss, duplication, reordering) are per *link*, not per
    /// group, and live in [`MultiRecoveryReport::health`].
    pub reliability: ControlHealth,
    /// Control messages this group's lanes sent, by type — the per-group
    /// overhead of sharing the substrate.
    pub control: ControlCounters,
    /// Protection-plane counters of this group's lanes (plans held,
    /// activations, stale discards). All-zero unless the run used
    /// [`RecoveryStrategy::Protection`].
    pub protection: crate::router::ProtectionCounters,
}

impl GroupRecoveryReport {
    /// Whether every affected member of this group restored service.
    pub fn all_restored(&self) -> bool {
        self.restorations.iter().all(|(_, l)| l.is_some())
    }

    /// Restoration latencies of restored members, milliseconds, in member
    /// order.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.restorations
            .iter()
            .filter_map(|(_, l)| l.map(SimTime::as_ms))
            .collect()
    }
}

/// Result of one multi-session failure experiment: one shared run, one
/// report slice per group plus the substrate-level aggregate.
#[derive(Debug, Clone)]
pub struct MultiRecoveryReport {
    /// When the failure was injected.
    pub fail_at: SimTime,
    /// Per-group slices, in group order.
    pub groups: Vec<GroupRecoveryReport>,
    /// Aggregate control-plane health: every group's reliable-layer
    /// counters plus what the shared channel did.
    pub health: ControlHealth,
    /// Total messages delivered by the simulator (all groups).
    pub messages_delivered: u64,
    /// Total messages dropped (all groups, all causes).
    pub messages_dropped: u64,
}

impl MultiRecoveryReport {
    /// Whether every affected member of every group restored service.
    pub fn all_restored(&self) -> bool {
        self.groups.iter().all(GroupRecoveryReport::all_restored)
    }
}

/// N concurrent multicast sessions over one topology, ready for shared
/// failure experiments. Group `i` is [`GroupId::new`]`(i)`.
#[derive(Debug, Clone)]
pub struct MultiSession<'g> {
    graph: &'g Graph,
    sessions: Vec<ProtoSession<'g>>,
    timer_backend: TimerBackend,
}

impl<'g> MultiSession<'g> {
    /// Hosts prebuilt sessions together. All sessions must live on the
    /// same graph and share one [`RouterConfig`] (the lanes of a router
    /// process run one timer profile).
    ///
    /// # Panics
    ///
    /// Panics if `sessions` is empty, if a session was built on a
    /// different graph, or if router configs disagree.
    pub fn from_sessions(sessions: Vec<ProtoSession<'g>>) -> Self {
        assert!(!sessions.is_empty(), "at least one session is required");
        let graph = sessions[0].graph();
        let config = sessions[0].router_config();
        for s in &sessions[1..] {
            assert!(
                std::ptr::eq(s.graph(), graph),
                "all sessions must share one graph"
            );
            assert!(
                s.router_config() == config,
                "all sessions must share one router config"
            );
        }
        let timer_backend = sessions[0].timer_backend();
        MultiSession {
            graph,
            sessions,
            timer_backend,
        }
    }

    /// Selects the engine timer backend for this experiment's runs (see
    /// [`ProtoSession::set_timer_backend`]).
    pub fn set_timer_backend(&mut self, backend: TimerBackend) {
        self.timer_backend = backend;
    }

    /// The shared topology.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Number of hosted groups.
    pub fn group_count(&self) -> usize {
        self.sessions.len()
    }

    /// The hosted group ids, ascending.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> {
        (0..self.sessions.len()).map(GroupId::new)
    }

    /// One group's session.
    ///
    /// # Panics
    ///
    /// Panics if `group` is out of range.
    pub fn session(&self, group: GroupId) -> &ProtoSession<'g> {
        &self.sessions[group.index()]
    }

    /// Router processes preloaded with every group's tree, under `config`.
    fn processes(&self, config: RouterConfig) -> Vec<MultiRouter> {
        let mut procs: Vec<MultiRouter> = (0..self.graph.node_count())
            .map(|_| MultiRouter::new(config))
            .collect();
        for (gi, sess) in self.sessions.iter().enumerate() {
            let group = GroupId::new(gi);
            let tree = sess.tree();
            for n in tree.on_tree_nodes() {
                let upstream = tree.parent(n);
                let downstream: Vec<NodeId> = tree.children(n).to_vec();
                procs[n.index()].lane_mut(group).load_state(
                    upstream,
                    &downstream,
                    tree.is_member(n),
                );
            }
            procs[sess.source().index()].lane_mut(group).set_source();
        }
        procs
    }

    /// Runs the shared failure experiment: every group's tree is loaded
    /// into one simulator, `scenario` is injected once, and each group
    /// detects and recovers independently while contending for the same
    /// links (and, when `channel` is degraded, the same loss process).
    ///
    /// Mirrors [`ProtoSession::run_failure_spec`] semantics per group —
    /// including [`RouterConfig::hardened_for_loss`] when the channel's
    /// default lane is lossy.
    pub fn run_failure_spec(
        &self,
        scenario: &FailureScenario,
        strategy: RecoveryStrategy,
        timing: InjectionTiming,
        channel: &ChannelSpec,
        until: SimTime,
    ) -> MultiRecoveryReport {
        self.run_failure_spec_traced(
            scenario,
            strategy,
            timing,
            channel,
            until,
            TraceLog::disabled(),
        )
        .0
    }

    /// [`run_failure_spec`](Self::run_failure_spec) that also returns the
    /// simulator trace recorded into `trace` — the hook for golden-trace
    /// regression tests.
    pub fn run_failure_spec_traced(
        &self,
        scenario: &FailureScenario,
        strategy: RecoveryStrategy,
        timing: InjectionTiming,
        channel: &ChannelSpec,
        until: SimTime,
        trace: TraceLog,
    ) -> (MultiRecoveryReport, TraceLog) {
        let (report, trace, _procs) =
            self.run_failure_capture_traced(scenario, strategy, timing, channel, until, trace);
        (report, trace)
    }

    /// [`run_failure_spec`](Self::run_failure_spec) that additionally
    /// returns every node's final [`MultiRouter`] state, in node-id order.
    ///
    /// This is the sim side of the conformance harness: the final states
    /// feed [`crate::snapshot::SessionState::capture`], whose digest a
    /// daemon replay of the same scenario must reproduce.
    pub fn run_failure_capture(
        &self,
        scenario: &FailureScenario,
        strategy: RecoveryStrategy,
        timing: InjectionTiming,
        channel: &ChannelSpec,
        until: SimTime,
    ) -> (MultiRecoveryReport, Vec<MultiRouter>) {
        let (report, _trace, procs) = self.run_failure_capture_traced(
            scenario,
            strategy,
            timing,
            channel,
            until,
            TraceLog::disabled(),
        );
        (report, procs)
    }

    /// Runs the shared failure experiment with externally supplied
    /// recovery plans instead of plans derived from a
    /// [`RecoveryStrategy`] over the whole graph. Each `(group, member,
    /// plan)` triple is installed verbatim into that member's lane for
    /// that group; no global planning happens at all.
    ///
    /// This is the hierarchical-recovery seam: restoration paths computed
    /// *inside* the owning recovery domain (see
    /// [`crate::hierarchy::NLevelSession::recover`]) go onto the wire
    /// without the planner ever seeing topology outside the domain.
    pub fn run_failure_planned_traced(
        &self,
        scenario: &FailureScenario,
        plans: &[(GroupId, NodeId, RecoveryPlan)],
        timing: InjectionTiming,
        channel: &ChannelSpec,
        until: SimTime,
        trace: TraceLog,
    ) -> (MultiRecoveryReport, TraceLog) {
        let (report, trace, _procs) = self.run_failure_inner(
            scenario,
            PlanSource::Explicit(plans),
            timing,
            channel,
            until,
            trace,
        );
        (report, trace)
    }

    fn run_failure_capture_traced(
        &self,
        scenario: &FailureScenario,
        strategy: RecoveryStrategy,
        timing: InjectionTiming,
        channel: &ChannelSpec,
        until: SimTime,
        trace: TraceLog,
    ) -> (MultiRecoveryReport, TraceLog, Vec<MultiRouter>) {
        self.run_failure_inner(
            scenario,
            PlanSource::Strategy(strategy),
            timing,
            channel,
            until,
            trace,
        )
    }

    fn run_failure_inner(
        &self,
        scenario: &FailureScenario,
        plans: PlanSource<'_>,
        timing: InjectionTiming,
        channel: &ChannelSpec,
        until: SimTime,
        trace: TraceLog,
    ) -> (MultiRecoveryReport, TraceLog, Vec<MultiRouter>) {
        let fail_at = timing.fail_at();
        let config = self.sessions[0]
            .router_config()
            .hardened_for_loss(channel.default.loss);
        let mut procs = self.processes(config);

        match plans {
            PlanSource::Strategy(RecoveryStrategy::Protection) => {
                // Each group's precomputed plane goes into its own lanes —
                // per-lane caches keep one group's stale-plan discards from
                // touching another group's protection state.
                for (gi, sess) in self.sessions.iter().enumerate() {
                    let group = GroupId::new(gi);
                    for (node, plans) in sess.protection_plans() {
                        procs[node.index()]
                            .lane_mut(group)
                            .install_backup_plans(plans);
                    }
                }
            }
            PlanSource::Strategy(strategy) => {
                let (kind, wait) = match strategy {
                    RecoveryStrategy::LocalDetour => (DetourKind::Local, SimTime::ZERO),
                    RecoveryStrategy::ReactiveSearch { search } => (DetourKind::Local, search),
                    RecoveryStrategy::GlobalDetour { reconvergence } => {
                        (DetourKind::Global, reconvergence)
                    }
                    RecoveryStrategy::Protection => unreachable!(),
                };
                for (gi, sess) in self.sessions.iter().enumerate() {
                    let group = GroupId::new(gi);
                    for rec in sess.plan_recoveries(scenario, kind).recoveries {
                        procs[rec.member().index()]
                            .lane_mut(group)
                            .install_recovery_plan(RecoveryPlan {
                                path: rec.restoration_path().nodes().to_vec(),
                                wait,
                                path_delay: SimTime::from_ms(
                                    rec.restoration_path().delay(self.graph),
                                ),
                            });
                    }
                }
            }
            PlanSource::Explicit(list) => {
                for (group, member, plan) in list {
                    procs[member.index()]
                        .lane_mut(*group)
                        .install_recovery_plan(plan.clone());
                }
            }
        }

        let mut sim = NetSim::new(self.graph, procs);
        sim.set_timer_backend(self.timer_backend);
        sim.set_trace(trace);
        if !channel.is_perfect() {
            sim.set_channel(Some(ChannelModel::new(channel)));
        }
        for (gi, sess) in self.sessions.iter().enumerate() {
            let group = GroupId::new(gi);
            for n in sess.tree().on_tree_nodes() {
                sim.with_node(n, |p, ctx| {
                    p.with_lane(ctx, group, |r, ictx| r.start_timers(ictx));
                });
            }
        }
        for (down_at, up_at) in timing.schedule() {
            for l in scenario.failed_links() {
                sim.schedule_link_failure(down_at, l);
                if let Some(up_at) = up_at {
                    sim.schedule_link_repair(up_at, l);
                }
            }
            for n in scenario.failed_nodes() {
                sim.schedule_node_failure(down_at, n);
                if let Some(up_at) = up_at {
                    sim.schedule_node_repair(up_at, n);
                }
            }
        }
        sim.run_until(until);

        // Packets in flight when the failure hit don't count as restored
        // service: only packets the source sent after `fail_at` qualify
        // (the source emits seq `s` at `(s + 1) · data_interval`).
        let interval = self.sessions[0].router_config().data_interval.as_ms();
        let sent_at = |seq: u64| SimTime::from_ms(interval * (seq as f64 + 1.0));

        let mut groups = Vec::with_capacity(self.sessions.len());
        for (gi, sess) in self.sessions.iter().enumerate() {
            let group = GroupId::new(gi);
            let affected = recovery::affected_members(self.graph, sess.tree(), scenario);
            let restorations: Vec<(NodeId, Option<SimTime>)> = affected
                .iter()
                .map(|&m| {
                    let latency = sim
                        .node(m)
                        .lane(group)
                        .and_then(|lane| {
                            lane.deliveries().iter().find(|d| sent_at(d.seq) > fail_at)
                        })
                        .map(|d| d.time - fail_at);
                    (m, latency)
                })
                .collect();
            let unaffected = sess
                .tree()
                .members()
                .filter(|m| !affected.contains(m))
                .collect();
            let mut reliability = ControlHealth::default();
            let mut control = ControlCounters::default();
            let mut protection = crate::router::ProtectionCounters::default();
            for n in self.graph.node_ids() {
                if let Some(lane) = sim.node(n).lane(group) {
                    let r = lane.reliability();
                    reliability.absorb_lane(
                        r.retransmits,
                        r.dup_drops,
                        r.retry_exhaustions,
                        r.acks_sent,
                    );
                    control.merge(&lane.control_sent());
                    protection.merge(&lane.protection_counters());
                }
            }
            groups.push(GroupRecoveryReport {
                group,
                restorations,
                unaffected,
                reliability,
                control,
                protection,
            });
        }

        let mut health = ControlHealth::merged(groups.iter().map(|g| &g.reliability));
        if let Some(ch) = sim.channel_stats() {
            health.channel_dupes = ch.duplicated;
            health.channel_reorders = ch.reordered;
            for (&class, &n) in &ch.lost_by_class {
                *health.loss_by_class.entry(class.to_string()).or_insert(0) += n;
            }
        }
        let report = MultiRecoveryReport {
            fail_at,
            groups,
            health,
            messages_delivered: sim.delivered_count(),
            messages_dropped: sim.dropped_count(),
        };
        let trace = sim.trace().clone();
        (report, trace, sim.into_nodes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{FailureTiming, TreeProtocol};
    use smrp_core::paper;

    fn figure1_session() -> (Graph, paper::Figure1Nodes) {
        paper::figure1_graph()
    }

    fn spf_session<'a>(graph: &'a Graph, nodes: &paper::Figure1Nodes) -> ProtoSession<'a> {
        ProtoSession::build(graph, nodes.s, &[nodes.c, nodes.d], TreeProtocol::Spf).unwrap()
    }

    #[test]
    fn single_group_matches_the_single_session_runner() {
        let (graph, nodes) = figure1_session();
        let session = spf_session(&graph, &nodes);
        let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
        let scenario = FailureScenario::link(l_ad);
        let timing = InjectionTiming::Once(FailureTiming::persistent(SimTime::from_ms(100.0)));
        let until = SimTime::from_ms(3000.0);

        let single = session.run_failure_spec(
            &scenario,
            RecoveryStrategy::LocalDetour,
            timing,
            &ChannelSpec::perfect(),
            until,
        );
        let multi = MultiSession::from_sessions(vec![session.clone()]).run_failure_spec(
            &scenario,
            RecoveryStrategy::LocalDetour,
            timing,
            &ChannelSpec::perfect(),
            until,
        );
        assert_eq!(multi.groups.len(), 1);
        assert_eq!(multi.groups[0].restorations, single.restorations);
        assert_eq!(multi.groups[0].unaffected, single.unaffected);
        assert_eq!(multi.messages_delivered, single.messages_delivered);
        assert_eq!(multi.messages_dropped, single.messages_dropped);
        assert_eq!(multi.health, single.health);
    }

    #[test]
    fn two_groups_recover_from_one_shared_cut() {
        // Two independent sessions on the Figure 1 graph — one rooted at
        // S, one rooted at B — both crossing link A–D through their trees'
        // neighborhoods. Cutting A–D must leave each group's recovery
        // intact and independent.
        let (graph, nodes) = figure1_session();
        let g0 = spf_session(&graph, &nodes);
        let g1 =
            ProtoSession::build(&graph, nodes.b, &[nodes.a, nodes.c], TreeProtocol::Spf).unwrap();
        let multi = MultiSession::from_sessions(vec![g0, g1]);
        assert_eq!(multi.group_count(), 2);

        let l_ad = graph.link_between(nodes.a, nodes.d).unwrap();
        let report = multi.run_failure_spec(
            &FailureScenario::link(l_ad),
            RecoveryStrategy::LocalDetour,
            InjectionTiming::Once(FailureTiming::persistent(SimTime::from_ms(100.0))),
            &ChannelSpec::perfect(),
            SimTime::from_ms(3000.0),
        );
        for g in &report.groups {
            assert!(
                g.all_restored(),
                "group {} must restore: {:?}",
                g.group,
                g.restorations
            );
            assert!(g.control.total() > 0, "group {} sent control", g.group);
        }
    }

    #[test]
    fn lanes_are_independent_per_group() {
        let (graph, nodes) = figure1_session();
        let g0 = spf_session(&graph, &nodes);
        let g1 = ProtoSession::build(&graph, nodes.b, &[nodes.d], TreeProtocol::Spf).unwrap();
        let multi = MultiSession::from_sessions(vec![g0, g1]);
        let procs = multi.processes(RouterConfig::default());
        // S is the source of group 0 only; B of group 1 only.
        let s = &procs[nodes.s.index()];
        assert!(s.lane(GroupId::new(0)).is_some_and(Router::is_on_tree));
        let b = &procs[nodes.b.index()];
        assert!(b.lane(GroupId::new(1)).is_some_and(Router::is_on_tree));
        // A group only has lanes where its tree runs.
        assert!(procs[nodes.c.index()]
            .lane(GroupId::new(1))
            .is_none_or(|l| !l.is_member()));
    }
}
